#!/usr/bin/env python3
"""Degrading a web-search log (the AOL incident from the paper's introduction).

Search engines keep query logs for ranking and abuse detection, but a leaked
log exposes exactly the kind of sensitive detail the 2006 AOL release did.
Here the raw query string degrades to its topic after a day, to a broad
category after a month, and disappears after a year — while the per-user
search history (needed for personalization) keeps its stable attributes.

The script also contrasts degradation with k-anonymity: the anonymized log
loses the user linkage entirely, whereas the degraded log still supports
user-centric queries at reduced accuracy.

Run with:  python examples/web_search_log.py
"""

from repro import AttributeLCP, InstantDB
from repro.baselines import KAnonymizer
from repro.core.domains import build_websearch_tree
from repro.workloads import SearchLogGenerator, searchlog_table_sql

NUM_SEARCHES = 400


def main() -> None:
    db = InstantDB()
    websearch = db.register_domain(build_websearch_tree())
    db.register_policy(AttributeLCP(
        websearch, transitions=["1 day", "1 month", "1 year"], name="websearch_lcp"))
    db.execute(searchlog_table_sql(policy_name="websearch_lcp"))
    db.execute("CREATE INDEX idx_user ON searchlog (user_id) USING hash")
    db.execute("CREATE INDEX idx_query ON searchlog (query) USING gt")
    db.execute("DECLARE PURPOSE ranking SET ACCURACY LEVEL query FOR searchlog.query")
    db.execute("DECLARE PURPOSE trends SET ACCURACY LEVEL topic FOR searchlog.query")
    db.execute("DECLARE PURPOSE reporting SET ACCURACY LEVEL category FOR searchlog.query")

    generator = SearchLogGenerator(num_users=60, seed=13)
    events = generator.events(NUM_SEARCHES, interval=30.0)
    for index, event in enumerate(events, start=1):
        db.clock.advance_to(event.timestamp)
        row = event.as_row()
        row["id"] = index
        db.insert_row("searchlog", row)
    print(f"ingested {NUM_SEARCHES} searches from {generator.num_users} users")

    # Fresh data: the ranking purpose sees raw queries.
    raw = db.execute("SELECT COUNT(*) AS n FROM searchlog", purpose="ranking")
    print(f"queries visible at full accuracy right after collection: {raw.rows[0][0]}")

    # A week later every query has degraded to its topic.
    db.advance_time(days=7)
    fresh = db.execute("SELECT COUNT(*) AS n FROM searchlog", purpose="ranking").rows[0][0]
    print(f"\nafter one week, raw query strings still visible: {fresh}")
    print("topic-level trends (purpose 'trends'):")
    trends = db.execute(
        "SELECT query, COUNT(*) AS searches FROM searchlog GROUP BY query "
        "ORDER BY query", purpose="trends")
    for topic, count in trends.rows[:8]:
        print(f"  {str(topic):20s} {count}")

    # User-centric history still works because the donor identity is stable.
    heavy_user = db.execute(
        "SELECT user_id, COUNT(*) AS searches FROM searchlog GROUP BY user_id "
        "ORDER BY searches DESC LIMIT 1", purpose="trends")
    user_id, searches = heavy_user.rows[0]
    print(f"\nmost active user: {user_id} with {searches} searches — their degraded history:")
    history = db.execute(
        f"SELECT query, clicked FROM searchlog WHERE user_id = {user_id} LIMIT 5",
        purpose="trends")
    for topic, clicked in history.rows:
        print(f"  topic={str(topic):20s} clicked={clicked}")

    # Contrast with k-anonymity: the published log drops the user linkage.
    anonymizer = KAnonymizer({"query": build_websearch_tree()},
                             identifier_columns=["user_id"])
    rows = [{"user_id": event.user_id, "query": event.query} for event in events]
    result = anonymizer.anonymize(rows, k=10)
    print(f"\nk-anonymity (k=10) comparison: generalization level used = "
          f"{result.levels['query']} "
          f"({build_websearch_tree().level_name(result.levels['query'])}), "
          f"user linkage suppressed entirely")
    print("degradation keeps the user linkage (user-oriented services keep working) "
          "while the sensitive query text fades away")

    # A year and a half later the log is empty.
    db.advance_time(days=500)
    print(f"\nafter ~1.5 years: {db.row_count('searchlog')} log entries remain")


if __name__ == "__main__":
    main()
