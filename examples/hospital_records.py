#!/usr/bin/env python3
"""Hospital admissions with per-patient policies and event-triggered degradation.

Hospitals must keep precise diagnoses while a patient is under treatment, but
long after discharge only coarse statistics (per-specialty admission counts)
are needed.  This example exercises the paper's future-work extensions:

* a *paranoid patient* registers a stricter life cycle policy for their own
  records (per-tuple policies);
* the final suppression of psychiatric diagnoses waits for an explicit
  ``review_closed`` event rather than a timer (event-triggered transitions).

Admissions are ingested through the PEP 249 driver (``repro.connect``): one
prepared INSERT bound per event, committed in day-sized batches, and the
reporting queries bind their predicates as ``?`` parameters.

Run with:  python examples/hospital_records.py
"""

import repro
from repro import AttributeLCP, InstantDB
from repro.core.domains import build_diagnosis_tree
from repro.core.schema import Column, TableSchema
from repro.workloads import AdmissionGenerator

NUM_ADMISSIONS = 150
PARANOID_PATIENT = 7


def main() -> None:
    db = InstantDB()
    diagnosis = db.register_domain(build_diagnosis_tree())
    db.register_policy(AttributeLCP(
        diagnosis, transitions=["30 days", "180 days", "2 years"],
        name="diagnosis_lcp"))

    schema = TableSchema("admission", [
        Column("id", "INT", primary_key=True),
        Column("patient_id", "INT"),
        Column("diagnosis", "TEXT", degradable=True, domain="diagnosis",
               policy="diagnosis_lcp"),
        Column("ward", "TEXT"),
        Column("duration_days", "INT"),
    ])
    db.create_table(schema, selector_column="patient_id")

    conn = repro.connect(engine=db)
    cur = conn.cursor()
    cur.execute("CREATE INDEX idx_patient ON admission (patient_id) USING hash")
    cur.execute("CREATE INDEX idx_diagnosis ON admission (diagnosis) USING gt")
    cur.execute("DECLARE PURPOSE care SET ACCURACY LEVEL diagnosis FOR admission.diagnosis")
    cur.execute("DECLARE PURPOSE quality SET ACCURACY LEVEL disease_group FOR admission.diagnosis")
    cur.execute("DECLARE PURPOSE planning SET ACCURACY LEVEL specialty FOR admission.diagnosis")
    conn.commit()

    # The paranoid patient wants their diagnoses gone much faster, and the last
    # step gated on an explicit review event.
    strict = AttributeLCP(diagnosis, transitions=[
        "7 days", "30 days", {"event": "review_closed"},
    ], name="paranoid_diagnosis_lcp")
    db.register_user_policy("admission", PARANOID_PATIENT, {"diagnosis": strict})

    generator = AdmissionGenerator(num_patients=30, seed=17)
    events = generator.events(NUM_ADMISSIONS, interval=6 * 3600.0)
    insert = ("INSERT INTO admission (id, patient_id, diagnosis, ward, "
              "duration_days) VALUES (?, ?, ?, ?, ?)")
    for index, event in enumerate(events, start=1):
        db.clock.advance_to(event.timestamp)
        row = event.as_row()
        # Route a share of admissions to the paranoid patient so the contrast shows.
        patient = PARANOID_PATIENT if index % 10 == 0 else row["patient_id"]
        cur.execute(insert, (index, patient, row["diagnosis"], row["ward"],
                             row["duration_days"]))
        if index % 4 == 0:       # commit one batch per simulated day
            conn.commit()
    conn.commit()
    print(f"ingested {NUM_ADMISSIONS} admissions "
          f"over {events[-1].timestamp / 86400:.1f} days")

    # Care teams see exact diagnoses for recent admissions.
    recent = cur.execute("SELECT COUNT(*) AS n FROM admission",
                         purpose="care").fetchone()[0]
    conn.commit()
    print(f"admissions with exact diagnosis available (purpose 'care'): {recent}")

    # Two months later: regular patients are at disease-group level, the
    # paranoid patient's records are already specialty-only or waiting on review.
    db.advance_time(days=60)
    print("\nafter 60 days:")
    for purpose in ("care", "quality", "planning"):
        count = cur.execute("SELECT COUNT(*) AS n FROM admission",
                            purpose=purpose).fetchone()[0]
        print(f"  computable admissions under purpose {purpose!r}: {count}")
    paranoid_levels = cur.execute(
        "SELECT diagnosis, COUNT(*) AS n FROM admission "
        "WHERE patient_id = ? GROUP BY diagnosis",
        (PARANOID_PATIENT,), purpose="planning").fetchall()
    conn.commit()
    print(f"  paranoid patient's records (specialty level only): {paranoid_levels}")

    # Hospital planning still gets its per-specialty statistics years later.
    db.advance_time(days=300)
    stats = cur.execute(
        "SELECT diagnosis, COUNT(*) AS admissions, AVG(duration_days) AS avg_stay "
        "FROM admission GROUP BY diagnosis ORDER BY diagnosis", purpose="planning")
    print("\nper-specialty statistics after one year (purpose 'planning'):")
    for specialty, count, avg_stay in stats:
        print(f"  {str(specialty):18s} admissions={count:3d} avg_stay={avg_stay:.1f} days")
    conn.commit()

    # Closing the review releases the paranoid patient's final suppression.
    before = db.row_count("admission")
    db.fire_event("review_closed")
    after = db.row_count("admission")
    print(f"\nfiring 'review_closed': {before - after} paranoid-patient records removed "
          f"({after} admissions remain)")

    db.advance_time(days=1200)
    print(f"after the full life cycle: {db.row_count('admission')} admissions remain")
    conn.close()


if __name__ == "__main__":
    main()
