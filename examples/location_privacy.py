#!/usr/bin/env python3
"""Location-based service with timely degradation (the paper's cell-phone scenario).

A telco collects location events of its subscribers.  User-facing services
(e.g. "where did I park?") need recent, accurate data; long-term analytics only
need country-level counts.  The script:

1. loads a synthetic location trace into InstantDB under the Fig. 2 policy;
2. runs the OLTP (service) and OLAP (statistics) query mixes while time passes;
3. compares the exposure of accurate data against a limited-retention baseline
   and reports how much an attacker snapshotting the server would capture.

Run with:  python examples/location_privacy.py
"""

from repro import AttributeLCP, InstantDB
from repro.baselines import LimitedRetentionStore
from repro.core.clock import DAY, HOUR
from repro.core.domains import build_location_tree, build_salary_ranges
from repro.privacy.attack import simulate_periodic_attack
from repro.privacy.exposure import accurate_lifetime_of_policy, engine_snapshot
from repro.workloads import LocationTraceGenerator, OLAPMix, OLTPMix, person_table_sql, \
    standard_purposes_sql

NUM_EVENTS = 300
EVENT_INTERVAL = 10 * 60.0          # one event every 10 minutes
RETENTION_LIMIT = 30 * DAY          # what a typical "limited retention" policy allows


def build_database() -> InstantDB:
    db = InstantDB()
    location = db.register_domain(build_location_tree())
    salary = db.register_domain(build_salary_ranges())
    db.register_policy(AttributeLCP(
        location, transitions=["1 hour", "1 day", "1 month", "3 months"],
        name="location_lcp"))
    db.register_policy(AttributeLCP(
        salary, transitions=["2 hours", "2 days", "2 months", "6 months"],
        name="salary_lcp"))
    db.execute(person_table_sql(policy_name="location_lcp", salary_policy="salary_lcp"))
    db.execute("CREATE INDEX idx_user ON person (user_id) USING hash")
    db.execute("CREATE INDEX idx_location ON person (location) USING gt")
    for sql in standard_purposes_sql():
        db.execute(sql)
    return db


def main() -> None:
    db = build_database()
    retention = LimitedRetentionStore(retention_limit=RETENTION_LIMIT)
    generator = LocationTraceGenerator(num_users=40, seed=11)

    # --- ingest the trace, advancing simulated time between events -------------
    events = generator.events(NUM_EVENTS, interval=EVENT_INTERVAL)
    for index, event in enumerate(events, start=1):
        db.clock.advance_to(event.timestamp)
        row = event.as_row()
        row["id"] = index
        db.insert_row("person", row)
        retention.insert(row, now=event.timestamp)
    print(f"ingested {NUM_EVENTS} location events over "
          f"{events[-1].timestamp / HOUR:.1f} hours of simulated time")

    # --- run the service (OLTP) and statistics (OLAP) mixes --------------------
    oltp = OLTPMix(generator, seed=5)
    olap = OLAPMix(generator, seed=6)
    service_answered = sum(
        1 for spec in oltp.queries(40) if len(db.execute(spec.sql, purpose=spec.purpose)) > 0
    )
    print(f"service (city-level) queries returning data:     {service_answered}/40")
    country_counts = db.execute(
        "SELECT location, COUNT(*) AS events FROM person GROUP BY location ORDER BY location",
        purpose="statistics")
    print("statistics (country-level) event counts:")
    for country, count in country_counts.rows:
        print(f"  {country:15s} {count}")
    olap_answered = sum(
        1 for spec in olap.queries(20) if len(db.execute(spec.sql, purpose=spec.purpose)) > 0
    )
    print(f"OLAP queries returning data:                      {olap_answered}/20")

    # --- exposure: degradation vs limited retention ----------------------------
    now = db.now()
    snapshot = engine_snapshot(db, "person", "location")
    accurate_lifetime = accurate_lifetime_of_policy(
        db.catalog.policy_for("person", "location"))
    retained = len(retention.accurate_rows(now=now))
    print("\n--- exposure of ACCURATE locations at this instant ---")
    print(f"InstantDB (degradation, 1h accurate window): {snapshot.exposed(0):4d} tuples")
    print(f"Limited retention ({RETENTION_LIMIT / DAY:.0f} days):               "
          f"{retained:4d} tuples")

    # --- attack simulation ------------------------------------------------------
    insert_times = [event.timestamp for event in events]
    for period_name, period in (("every 10 min", 600.0), ("hourly", HOUR), ("daily", DAY)):
        degraded = simulate_periodic_attack(insert_times, accurate_lifetime, period,
                                            horizon=now, detection_per_snapshot=0.02)
        kept = simulate_periodic_attack(insert_times, RETENTION_LIMIT, period,
                                        horizon=now, detection_per_snapshot=0.02)
        print(f"attacker snapshotting {period_name:12s}: captures "
              f"{degraded.capture_fraction:5.1%} accurate under degradation vs "
              f"{kept.capture_fraction:5.1%} under retention "
              f"(detection probability {degraded.detection_probability:.2f})")

    # --- long term: everything eventually disappears -----------------------------
    db.advance_time(days=200)
    print(f"\nafter 200 more days: {db.row_count('person')} tuples remain "
          f"({db.stats.rows_removed_by_policy} removed by the life cycle policy)")


if __name__ == "__main__":
    main()
