#!/usr/bin/env python3
"""Quickstart: the paper's PERSON example through the PEP 249 driver API.

Builds the Fig. 1 location generalization tree, attaches the Fig. 2 life cycle
policy (address -1h-> city -1d-> region -1mo-> country -3mo-> removed), batch
inserts a few tuples with ``executemany``, declares the paper's STAT purpose
and watches the data degrade as simulated time advances.

This is the living documentation of ``repro.connect()``: connections own the
transaction, cursors bind ``?`` parameters, and query purposes are scoped per
connection (``examples/web_search_log.py`` still exercises the legacy
``InstantDB.execute`` facade).

Run with:  python examples/quickstart.py
"""

import repro
from repro import AttributeLCP, InstantDB
from repro.core.domains import build_location_tree, build_salary_ranges


def print_rows(title, cursor):
    print(f"\n{title}")
    rows = cursor.fetchall()
    if not rows:
        print("  (no tuple is computable at the demanded accuracy)")
        return
    names = [entry[0] for entry in cursor.description]
    for row in rows:
        print("  " + ", ".join(f"{key}={value}" for key, value in zip(names, row)))


def main() -> None:
    # 1. Register the attribute domains (generalization trees) and policies on
    #    the engine, then open a PEP 249 connection over it.
    db = InstantDB()
    location = db.register_domain(build_location_tree())
    salary = db.register_domain(build_salary_ranges())
    db.register_policy(AttributeLCP(
        location, transitions=["1 hour", "1 day", "1 month", "3 months"],
        name="location_lcp"))
    db.register_policy(AttributeLCP(
        salary, transitions=["2 hours", "2 days", "2 months", "6 months"],
        name="salary_lcp"))

    with repro.connect(engine=db) as conn:
        cur = conn.cursor()

        # 2. Create the table: identity is stable, location and salary degrade.
        cur.execute("""
            CREATE TABLE person (
              id INT PRIMARY KEY,
              name TEXT,
              location TEXT DEGRADABLE DOMAIN location POLICY location_lcp,
              salary INT DEGRADABLE DOMAIN salary POLICY salary_lcp
            )
        """)
        print("CREATE TABLE person ->")
        print(db.describe())

        # 3. Batch insert events (always in the most accurate state): the
        #    INSERT is parsed once, bound three times, committed once.
        cur.executemany(
            "INSERT INTO person VALUES (?, ?, ?, ?)",
            [(1, "alice", "1 Main Street, Paris", 2500),
             (2, "bob", "2 Station Road, Lyon", 3100),
             (3, "carol", "3 Church Lane, Enschede", 1800)])
        conn.commit()

        # 4. Declare purposes: a user-facing service needs city accuracy, the
        #    statistics purpose of the paper needs country + salary ranges.
        cur.execute("DECLARE PURPOSE service SET ACCURACY LEVEL city "
                    "FOR person.location")
        cur.execute("DECLARE PURPOSE stat SET ACCURACY LEVEL country "
                    "FOR person.location, range1000 FOR person.salary")

        print_rows("t = 0 (accurate): SELECT * FROM person",
                   cur.execute("SELECT * FROM person"))

        # EXPLAIN shows the streaming operator pipeline: the access path the
        # planner chose (here a sequential scan — add a GT index to see
        # GTIndexScan), the residual predicate the filter still evaluates,
        # and the Limit operator that stops the scan early.  EXPLAIN ANALYZE
        # additionally runs the query and annotates every operator with the
        # rows that actually crossed it.
        print("\nEXPLAIN ANALYZE SELECT id, name FROM person "
              "WHERE salary > 1000 LIMIT 2 ->")
        for (line,) in cur.execute("EXPLAIN ANALYZE SELECT id, name FROM person "
                                   "WHERE salary > 1000 LIMIT 2"):
            print("  " + line)
        conn.commit()          # release the read locks before time advances

        # 5. Advance time: after 2 hours every address has become a city.
        db.advance_time(hours=2)
        print_rows("t = 2 hours, no purpose (level-0 demanded): SELECT * FROM person",
                   cur.execute("SELECT * FROM person"))
        print_rows("t = 2 hours, purpose 'service': SELECT id, name, location FROM person",
                   cur.execute("SELECT id, name, location FROM person",
                               purpose="service"))
        conn.commit()

        # 6. One month later the paper's example query still works at country
        #    level — with the predicate values bound as ? parameters.
        db.advance_time(days=40)
        conn.set_purpose("stat")
        print_rows("t = 40 days, purpose 'stat': the paper's example query",
                   cur.execute("SELECT * FROM person WHERE location LIKE ? "
                               "AND salary = ?", ("%France%", "2000-3000")))
        conn.commit()

        # 7. After the full life cycle every tuple has disappeared.
        db.advance_time(days=600)
        print(f"\nafter the full life cycle: {db.row_count('person')} rows remain, "
              f"{db.stats.rows_removed_by_policy} removed by policy, "
              f"{db.stats.degradation_steps_applied} degradation steps applied")


if __name__ == "__main__":
    main()
