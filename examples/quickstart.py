#!/usr/bin/env python3
"""Quickstart: the paper's PERSON example, end to end.

Builds the Fig. 1 location generalization tree, attaches the Fig. 2 life cycle
policy (address -1h-> city -1d-> region -1mo-> country -3mo-> removed), inserts
a few tuples, declares the paper's STAT purpose and watches the data degrade as
simulated time advances.

Run with:  python examples/quickstart.py
"""

from repro import AttributeLCP, InstantDB
from repro.core.domains import build_location_tree, build_salary_ranges


def print_rows(title, result):
    print(f"\n{title}")
    if not result.rows:
        print("  (no tuple is computable at the demanded accuracy)")
        return
    for row in result.to_dicts():
        print("  " + ", ".join(f"{key}={value}" for key, value in row.items()))


def main() -> None:
    db = InstantDB()

    # 1. Register the attribute domains (generalization trees) and policies.
    location = db.register_domain(build_location_tree())
    salary = db.register_domain(build_salary_ranges())
    db.register_policy(AttributeLCP(
        location, transitions=["1 hour", "1 day", "1 month", "3 months"],
        name="location_lcp"))
    db.register_policy(AttributeLCP(
        salary, transitions=["2 hours", "2 days", "2 months", "6 months"],
        name="salary_lcp"))

    # 2. Create the table: identity is stable, location and salary degrade.
    db.execute("""
        CREATE TABLE person (
          id INT PRIMARY KEY,
          name TEXT,
          location TEXT DEGRADABLE DOMAIN location POLICY location_lcp,
          salary INT DEGRADABLE DOMAIN salary POLICY salary_lcp
        )
    """)
    print(db.describe())

    # 3. Insert events (always in the most accurate state).
    db.execute("INSERT INTO person VALUES (1, 'alice', '1 Main Street, Paris', 2500)")
    db.execute("INSERT INTO person VALUES (2, 'bob', '2 Station Road, Lyon', 3100)")
    db.execute("INSERT INTO person VALUES (3, 'carol', '3 Church Lane, Enschede', 1800)")

    # 4. Declare purposes: a user-facing service needs city accuracy, the
    #    statistics purpose of the paper needs country + salary ranges.
    db.execute("DECLARE PURPOSE service SET ACCURACY LEVEL city FOR person.location")
    db.execute("DECLARE PURPOSE stat SET ACCURACY LEVEL country FOR person.location, "
               "range1000 FOR person.salary")

    print_rows("t = 0 (accurate): SELECT * FROM person", db.execute("SELECT * FROM person"))

    # 5. Advance time: after 2 hours every address has become a city.
    db.advance_time(hours=2)
    print_rows("t = 2 hours, no purpose (level-0 demanded): SELECT * FROM person",
               db.execute("SELECT * FROM person"))
    print_rows("t = 2 hours, purpose 'service': SELECT id, name, location FROM person",
               db.execute("SELECT id, name, location FROM person", purpose="service"))

    # 6. One month later the paper's example query still works at country level.
    db.advance_time(days=40)
    print_rows("t = 40 days, purpose 'stat': the paper's example query",
               db.execute("SELECT * FROM person WHERE location LIKE '%France%' "
                          "AND salary = '2000-3000'", purpose="stat"))

    # 7. After the full life cycle every tuple has disappeared.
    db.advance_time(days=600)
    print(f"\nafter the full life cycle: {db.row_count('person')} rows remain, "
          f"{db.stats.rows_removed_by_policy} removed by policy, "
          f"{db.stats.degradation_steps_applied} degradation steps applied")


if __name__ == "__main__":
    main()
