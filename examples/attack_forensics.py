#!/usr/bin/env python3
"""Attack and forensic analysis of a degrading database.

Demonstrates the paper's security argument (§I, benefits 1 and 2):

1. a *snapshot attacker* compromising the server once captures only the tuples
   still in their accurate state — a small window under degradation, the whole
   database under traditional retention;
2. a *continuous attacker* must repeat the compromise faster than the shortest
   degradation step, which drives its detection probability towards one;
3. a *forensic attacker* inspecting raw pages, index keys and the WAL after the
   fact finds no trace of the degraded accurate values (for both the physical
   rewrite and the cryptographic erasure strategies).

Run with:  python examples/attack_forensics.py
"""

from repro import AttributeLCP, InstantDB
from repro.core.clock import DAY, HOUR, MINUTE
from repro.core.domains import build_location_tree, build_salary_ranges
from repro.privacy.attack import sweep_attack_periods
from repro.privacy.exposure import accurate_lifetime_of_policy
from repro.privacy.forensic import scan_engine
from repro.workloads import LocationTraceGenerator, person_table_sql

NUM_EVENTS = 200


def build(strategy: str) -> tuple[InstantDB, list[float], list[str]]:
    db = InstantDB(strategy=strategy)
    location = db.register_domain(build_location_tree())
    salary = db.register_domain(build_salary_ranges())
    db.register_policy(AttributeLCP(
        location, transitions=["1 hour", "1 day", "1 month", "3 months"],
        name="location_lcp"))
    db.register_policy(AttributeLCP(
        salary, transitions=["2 hours", "2 days", "2 months", "6 months"],
        name="salary_lcp"))
    db.execute(person_table_sql(policy_name="location_lcp", salary_policy="salary_lcp"))
    db.execute("CREATE INDEX idx_location ON person (location) USING gt")
    generator = LocationTraceGenerator(num_users=30, seed=19)
    insert_times, addresses = [], []
    for index, event in enumerate(generator.events(NUM_EVENTS, interval=5 * MINUTE),
                                  start=1):
        db.clock.advance_to(event.timestamp)
        row = event.as_row()
        row["id"] = index
        db.insert_row("person", row)
        insert_times.append(event.timestamp)
        addresses.append(event.address)
    return db, insert_times, addresses


def main() -> None:
    db, insert_times, addresses = build("rewrite")
    policy = db.catalog.policy_for("person", "location")
    accurate_lifetime = accurate_lifetime_of_policy(policy)
    horizon = db.now() + accurate_lifetime

    print("=== continuous attacker: capture vs detection (degradation) ===")
    print(f"shortest degradation step: {accurate_lifetime / MINUTE:.0f} minutes")
    points = sweep_attack_periods(insert_times, accurate_lifetime,
                                  periods=[10 * MINUTE, 30 * MINUTE, HOUR,
                                           6 * HOUR, DAY],
                                  horizon=horizon, detection_per_snapshot=0.02)
    print(f"{'attack period':>15s} {'captured':>10s} {'snapshots':>10s} {'P(detect)':>10s}")
    for point in points:
        print(f"{point.period / MINUTE:13.0f}m {point.capture_fraction:10.1%} "
              f"{point.snapshots:10d} {point.detection_probability:10.2f}")
    print("-> capturing most of the accurate data requires attacking faster than the "
          "shortest step, which makes the attack easy to detect.")

    print("\n=== forensic attacker: residual accurate values after degradation ===")
    for strategy in ("rewrite", "crypto"):
        db, _times, addresses = build(strategy)
        db.advance_time(hours=2)     # every address degraded to a city
        report = scan_engine(db, addresses[:50], table="person")
        print(f"strategy={strategy:8s}: scanned heap pages, WAL and index keys for "
              f"{report.values_searched} level-0 addresses -> {report.summary()}")

    print("\n=== what a naive engine would have leaked ===")
    from repro.storage.page import SlottedPage
    from repro.storage.wal import LogRecordType, WriteAheadLog
    page = SlottedPage(secure=False)
    slot = page.insert(addresses[0].encode())
    page.delete(slot)
    wal = WriteAheadLog()
    wal.append(LogRecordType.INSERT, 1, table="person", row_key=1,
               after=addresses[0].encode())
    leaks = []
    if addresses[0].encode() in page.raw():
        leaks.append("free space of the data page")
    if addresses[0].encode() in wal.raw_image():
        leaks.append("write-ahead log")
    print(f"without secure reclamation and log scrubbing the address would survive in: "
          f"{', '.join(leaks)}")


if __name__ == "__main__":
    main()
