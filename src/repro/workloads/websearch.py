"""Web-search log workload (the AOL incident motivating the paper's introduction).

Generates query-log entries ``(user_id, query, clicked, timestamp)`` where the
query string is degradable along the web-search generalization tree
(query → topic → category → suppressed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.domains import build_websearch_tree
from ..core.generalization import GeneralizationTree
from .distributions import Distributions


@dataclass
class SearchEvent:
    """One generated web search."""

    user_id: int
    query: str
    topic: str
    category: str
    clicked: bool
    timestamp: float

    def as_row(self) -> Dict[str, object]:
        return {
            "id": None,
            "user_id": self.user_id,
            "query": self.query,
            "clicked": self.clicked,
        }


class SearchLogGenerator:
    """Deterministic generator of web-search log entries."""

    def __init__(self, num_users: int = 200, seed: int = 11,
                 tree: Optional[GeneralizationTree] = None,
                 zipf_skew: float = 1.1) -> None:
        self.tree = tree or build_websearch_tree()
        self.dist = Distributions(seed)
        self.num_users = num_users
        self.zipf_skew = zipf_skew
        self._queries = self.tree.values_at_level(0)

    def event_at(self, timestamp: float) -> SearchEvent:
        query = self.dist.zipf_choice(self._queries, self.zipf_skew)
        topic = self.tree.generalize(query, 1)
        category = self.tree.generalize(query, 2)
        return SearchEvent(
            user_id=self.dist.zipf_index(self.num_users, 0.6) + 1,
            query=query,
            topic=topic,
            category=category,
            clicked=self.dist.uniform(0, 1) < 0.45,
            timestamp=timestamp,
        )

    def events(self, count: int, interval: float = 5.0,
               start: float = 0.0) -> List[SearchEvent]:
        return [self.event_at(start + index * interval) for index in range(count)]

    def sample_query(self) -> str:
        return self.dist.zipf_choice(self._queries, self.zipf_skew)

    def sample_category(self) -> str:
        return self.dist.uniform_choice(self.tree.values_at_level(2))


def searchlog_table_sql(policy_name: str = "websearch_lcp") -> str:
    """DDL of the search-log table used by the web-search example."""
    return (
        "CREATE TABLE searchlog ("
        "  id INT PRIMARY KEY,"
        "  user_id INT,"
        f"  query TEXT DEGRADABLE DOMAIN websearch POLICY {policy_name},"
        "  clicked BOOL"
        ")"
    )


__all__ = ["SearchEvent", "SearchLogGenerator", "searchlog_table_sql"]
