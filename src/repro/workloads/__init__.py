"""Synthetic workload generators for the paper's motivating domains."""

from .distributions import Distributions
from .location import LocationEvent, LocationTraceGenerator, person_table_sql
from .medical import AdmissionEvent, AdmissionGenerator, admissions_table_sql
from .mixes import OLAPMix, OLTPMix, QuerySpec, standard_purposes_sql
from .websearch import SearchEvent, SearchLogGenerator, searchlog_table_sql

__all__ = [
    "Distributions",
    "LocationEvent", "LocationTraceGenerator", "person_table_sql",
    "AdmissionEvent", "AdmissionGenerator", "admissions_table_sql",
    "SearchEvent", "SearchLogGenerator", "searchlog_table_sql",
    "OLAPMix", "OLTPMix", "QuerySpec", "standard_purposes_sql",
]
