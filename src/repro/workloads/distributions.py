"""Seeded random distributions shared by the workload generators.

All generators take an explicit seed so that tests and benchmarks are
deterministic; nothing here depends on global random state.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, TypeVar

from ..core.errors import ConfigurationError

T = TypeVar("T")


class Distributions:
    """A bundle of seeded sampling helpers."""

    def __init__(self, seed: int = 7) -> None:
        self.random = random.Random(seed)

    # -- discrete choices --------------------------------------------------------

    def uniform_choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ConfigurationError("cannot sample from an empty sequence")
        return items[self.random.randrange(len(items))]

    def zipf_weights(self, n: int, skew: float = 1.0) -> List[float]:
        """Normalized Zipf weights for ranks 1..n."""
        if n < 1:
            raise ConfigurationError("n must be at least 1")
        raw = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
        total = sum(raw)
        return [weight / total for weight in raw]

    def zipf_choice(self, items: Sequence[T], skew: float = 1.0) -> T:
        """Sample one item with Zipf-distributed popularity (rank = list order)."""
        weights = self.zipf_weights(len(items), skew)
        return self.random.choices(list(items), weights=weights, k=1)[0]

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        weights = self.zipf_weights(n, skew)
        return self.random.choices(range(n), weights=weights, k=1)[0]

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Sample one item with explicit (not necessarily normalized) weights."""
        if not items or len(items) != len(weights):
            raise ConfigurationError(
                "weighted_choice needs one weight per item (and at least one item)"
            )
        return self.random.choices(list(items), weights=list(weights), k=1)[0]

    # -- numbers ------------------------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        return self.random.uniform(low, high)

    def uniform_int(self, low: int, high: int) -> int:
        return self.random.randint(low, high)

    def gaussian_int(self, mean: float, stddev: float,
                     minimum: int = 0, maximum: int = 10**9) -> int:
        value = int(round(self.random.gauss(mean, stddev)))
        return max(minimum, min(maximum, value))

    def exponential(self, rate: float) -> float:
        """Exponential inter-arrival time for a Poisson process of ``rate`` per second."""
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        return self.random.expovariate(rate)

    # -- arrival processes -----------------------------------------------------------

    def poisson_arrivals(self, rate: float, horizon: float,
                         start: float = 0.0) -> List[float]:
        """Arrival timestamps of a Poisson process over ``[start, start + horizon]``."""
        arrivals = []
        when = start
        while True:
            when += self.exponential(rate)
            if when > start + horizon:
                break
            arrivals.append(when)
        return arrivals

    def regular_arrivals(self, count: int, interval: float,
                         start: float = 0.0) -> List[float]:
        """Evenly spaced arrival timestamps."""
        return [start + index * interval for index in range(count)]

    def shuffled(self, items: Sequence[T]) -> List[T]:
        shuffled = list(items)
        self.random.shuffle(shuffled)
        return shuffled


__all__ = ["Distributions"]
