"""Hospital-records workload.

The paper's introduction lists hospitals among the collectors of personal
data.  This generator produces admission events whose diagnosis is degradable
along the diagnosis generalization tree (diagnosis → disease group →
specialty → suppressed) while the patient identity stays stable, illustrating
the paper's argument that degradation — unlike anonymization — keeps
user-oriented services possible (the patient's record remains linkable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.domains import build_diagnosis_tree
from ..core.generalization import GeneralizationTree
from .distributions import Distributions

_WARDS = ("A1", "A2", "B1", "B2", "C1", "ICU", "ER")


@dataclass
class AdmissionEvent:
    """One generated hospital admission."""

    patient_id: int
    diagnosis: str
    disease_group: str
    specialty: str
    ward: str
    duration_days: int
    timestamp: float

    def as_row(self) -> Dict[str, object]:
        return {
            "id": None,
            "patient_id": self.patient_id,
            "diagnosis": self.diagnosis,
            "ward": self.ward,
            "duration_days": self.duration_days,
        }


class AdmissionGenerator:
    """Deterministic generator of hospital admission events."""

    def __init__(self, num_patients: int = 120, seed: int = 23,
                 tree: Optional[GeneralizationTree] = None) -> None:
        self.tree = tree or build_diagnosis_tree()
        self.dist = Distributions(seed)
        self.num_patients = num_patients
        self._diagnoses = self.tree.values_at_level(0)

    def event_at(self, timestamp: float) -> AdmissionEvent:
        diagnosis = self.dist.zipf_choice(self._diagnoses, 0.7)
        return AdmissionEvent(
            patient_id=self.dist.uniform_int(1, self.num_patients),
            diagnosis=diagnosis,
            disease_group=self.tree.generalize(diagnosis, 1),
            specialty=self.tree.generalize(diagnosis, 2),
            ward=self.dist.uniform_choice(_WARDS),
            duration_days=self.dist.gaussian_int(4, 3, minimum=1, maximum=60),
            timestamp=timestamp,
        )

    def events(self, count: int, interval: float = 3600.0,
               start: float = 0.0) -> List[AdmissionEvent]:
        return [self.event_at(start + index * interval) for index in range(count)]

    def sample_specialty(self) -> str:
        return self.dist.uniform_choice(self.tree.values_at_level(2))

    def sample_diagnosis(self) -> str:
        return self.dist.uniform_choice(self._diagnoses)


def admissions_table_sql(policy_name: str = "diagnosis_lcp") -> str:
    """DDL of the admissions table used by the hospital example."""
    return (
        "CREATE TABLE admission ("
        "  id INT PRIMARY KEY,"
        "  patient_id INT,"
        f"  diagnosis TEXT DEGRADABLE DOMAIN diagnosis POLICY {policy_name},"
        "  ward TEXT,"
        "  duration_days INT"
        ")"
    )


__all__ = ["AdmissionEvent", "AdmissionGenerator", "admissions_table_sql"]
