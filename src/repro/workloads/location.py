"""Location-trace workload (the paper's cell-phone motivation).

Generates events of the form "user X was at address A at time T, doing D":
exactly the shape of data the paper's running PERSON example degrades
(location and salary degradable, identity stable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..core.domains import addresses_for_city, build_location_tree, build_salary_ranges
from ..core.generalization import GeneralizationTree
from .distributions import Distributions

_FIRST_NAMES = (
    "alice", "bob", "carol", "david", "emma", "farid", "greta", "hugo",
    "ines", "jonas", "karin", "louis", "maria", "nina", "omar", "paula",
    "quentin", "rosa", "sven", "tara",
)

_ACTIVITIES = (
    "commute", "shopping", "work", "leisure", "travel", "appointment",
    "sport", "dining",
)


@dataclass
class LocationEvent:
    """One generated location observation."""

    user_id: int
    name: str
    address: str
    city: str
    region: str
    country: str
    salary: int
    activity: str
    timestamp: float

    def as_row(self) -> Dict[str, object]:
        """Row for the canonical PERSON-events table."""
        return {
            "id": None,            # filled by the caller when a surrogate key is needed
            "user_id": self.user_id,
            "name": self.name,
            "location": self.address,
            "salary": self.salary,
            "activity": self.activity,
        }


class LocationTraceGenerator:
    """Generates deterministic location traces over the standard location GT."""

    def __init__(self, num_users: int = 50, seed: int = 7,
                 tree: Optional[GeneralizationTree] = None,
                 zipf_skew: float = 0.8) -> None:
        self.tree = tree or build_location_tree()
        self.dist = Distributions(seed)
        self.num_users = num_users
        self.zipf_skew = zipf_skew
        self._cities = self.tree.values_at_level(1)
        self._users = [
            {
                "user_id": user_id,
                "name": f"{_FIRST_NAMES[user_id % len(_FIRST_NAMES)]}_{user_id}",
                "home_city": self.dist.zipf_choice(self._cities, zipf_skew),
                "salary": self.dist.gaussian_int(2600, 900, minimum=1000, maximum=12000),
            }
            for user_id in range(1, num_users + 1)
        ]

    # -- event generation -----------------------------------------------------------

    def event_at(self, timestamp: float) -> LocationEvent:
        user = self.dist.uniform_choice(self._users)
        # Users are mostly observed near home, sometimes elsewhere.
        if self.dist.uniform(0, 1) < 0.75:
            city = user["home_city"]
        else:
            city = self.dist.zipf_choice(self._cities, self.zipf_skew)
        address = self.dist.uniform_choice(addresses_for_city(city))
        region = self.tree.generalize(city, 2, from_level=1)
        country = self.tree.generalize(city, 3, from_level=1)
        return LocationEvent(
            user_id=user["user_id"],
            name=user["name"],
            address=address,
            city=city,
            region=region,
            country=country,
            salary=user["salary"],
            activity=self.dist.uniform_choice(_ACTIVITIES),
            timestamp=timestamp,
        )

    def events(self, count: int, interval: float = 60.0,
               start: float = 0.0) -> List[LocationEvent]:
        """``count`` events arriving every ``interval`` seconds."""
        return [
            self.event_at(start + index * interval) for index in range(count)
        ]

    def poisson_events(self, rate: float, horizon: float,
                       start: float = 0.0) -> List[LocationEvent]:
        """Events arriving as a Poisson process with ``rate`` events/second."""
        return [
            self.event_at(when)
            for when in self.dist.poisson_arrivals(rate, horizon, start=start)
        ]

    # -- query parameters --------------------------------------------------------------

    def sample_city(self) -> str:
        return self.dist.zipf_choice(self._cities, self.zipf_skew)

    def sample_country(self) -> str:
        return self.tree.generalize(self.sample_city(), 3, from_level=1)

    def sample_user_id(self) -> int:
        return self.dist.uniform_int(1, self.num_users)

    def sample_salary_range(self, width: int = 1000) -> str:
        low = self.dist.uniform_int(1, 9) * width
        return f"{low}-{low + width}"


def person_table_sql(policy_name: str = "location_lcp",
                     salary_policy: Optional[str] = None) -> str:
    """DDL of the canonical PERSON events table used by examples and benchmarks."""
    salary_clause = "salary INT"
    if salary_policy is not None:
        salary_clause = f"salary INT DEGRADABLE DOMAIN salary POLICY {salary_policy}"
    return (
        "CREATE TABLE person ("
        "  id INT PRIMARY KEY,"
        "  user_id INT,"
        "  name TEXT,"
        f"  location TEXT DEGRADABLE DOMAIN location POLICY {policy_name},"
        f"  {salary_clause},"
        "  activity TEXT"
        ")"
    )


__all__ = ["LocationEvent", "LocationTraceGenerator", "person_table_sql"]
