"""OLTP and OLAP query mixes over the PERSON events table.

The paper's third technical challenge distinguishes the two workload families:
OLTP point/range queries become *less selective* on degraded attributes; OLAP
aggregates must absorb the update load degradation creates.  These mixes feed
the C1/C3 benchmarks with representative statements of both kinds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from .distributions import Distributions
from .location import LocationTraceGenerator


@dataclass
class QuerySpec:
    """One generated query: SQL text plus the purpose it should run under."""

    sql: str
    purpose: Optional[str]
    kind: str

    def __iter__(self):
        return iter((self.sql, self.purpose))


class OLTPMix:
    """Point lookups, short scans and user-centric queries (accurate or mildly degraded)."""

    def __init__(self, generator: LocationTraceGenerator, seed: int = 31) -> None:
        self.generator = generator
        self.dist = Distributions(seed)

    def next_query(self) -> QuerySpec:
        roll = self.dist.uniform(0, 1)
        if roll < 0.4:
            user_id = self.generator.sample_user_id()
            return QuerySpec(
                sql=f"SELECT id, name, location FROM person WHERE user_id = {user_id}",
                purpose="service",
                kind="point_user",
            )
        if roll < 0.7:
            city = self.generator.sample_city()
            return QuerySpec(
                sql=f"SELECT id, user_id FROM person WHERE location = '{city}'",
                purpose="service",
                kind="point_city",
            )
        if roll < 0.9:
            low = self.dist.uniform_int(1500, 4000)
            return QuerySpec(
                sql=(f"SELECT id, user_id, salary FROM person "
                     f"WHERE salary >= {low} AND salary <= {low + 500}"),
                purpose="service",
                kind="salary_range",
            )
        user_id = self.generator.sample_user_id()
        return QuerySpec(
            sql=(f"SELECT COUNT(*) AS visits FROM person WHERE user_id = {user_id} "
                 "AND activity = 'shopping'"),
            purpose="service",
            kind="user_activity",
        )

    def queries(self, count: int) -> List[QuerySpec]:
        return [self.next_query() for _ in range(count)]


class OLAPMix:
    """Regional / national statistics over degraded data."""

    def __init__(self, generator: LocationTraceGenerator, seed: int = 37) -> None:
        self.generator = generator
        self.dist = Distributions(seed)

    def next_query(self) -> QuerySpec:
        roll = self.dist.uniform(0, 1)
        if roll < 0.4:
            return QuerySpec(
                sql=("SELECT location, COUNT(*) AS events FROM person "
                     "GROUP BY location ORDER BY location"),
                purpose="statistics",
                kind="events_by_country",
            )
        if roll < 0.7:
            country = self.generator.sample_country()
            return QuerySpec(
                sql=(f"SELECT COUNT(*) AS events FROM person "
                     f"WHERE location LIKE '%{country}%'"),
                purpose="statistics",
                kind="country_count",
            )
        if roll < 0.9:
            return QuerySpec(
                sql=("SELECT location, AVG(salary) AS avg_salary FROM person "
                     "GROUP BY location"),
                purpose="statistics",
                kind="salary_by_country",
            )
        return QuerySpec(
            sql=("SELECT activity, COUNT(*) AS events FROM person "
                 "GROUP BY activity ORDER BY activity"),
            purpose="statistics",
            kind="events_by_activity",
        )

    def queries(self, count: int) -> List[QuerySpec]:
        return [self.next_query() for _ in range(count)]


def standard_purposes_sql() -> List[str]:
    """The two purposes the mixes run under.

    ``service`` reads locations at city level (user-facing services), while
    ``statistics`` reads them at country level and salaries as 1000-wide
    ranges, echoing the paper's example query.
    """
    return [
        "DECLARE PURPOSE service SET ACCURACY LEVEL city FOR person.location",
        ("DECLARE PURPOSE statistics SET ACCURACY LEVEL country FOR person.location, "
         "range1000 FOR person.salary"),
    ]


__all__ = ["QuerySpec", "OLTPMix", "OLAPMix", "standard_purposes_sql"]
