"""Slotted pages.

A page is a fixed size byte buffer organised as a classic slotted page:

* a header with the slot count and the offset of the free space frontier;
* a slot directory growing from the front, one ``(offset, length)`` pair per
  slot (``offset == 0`` marks a deleted slot);
* record payloads growing from the back.

The degradation-specific twist is *secure reclamation*: when a record is
deleted or shrunk, the freed bytes are physically overwritten with zeros so
that no accurate value survives in the free space of a page — one of the
"unintended retention" channels identified by the paper (citing Stahlberg et
al., SIGMOD'07).
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from ..core.errors import PageFullError, RecordNotFoundError, StorageError

DEFAULT_PAGE_SIZE = 4096

_HEADER = struct.Struct("<HH")          # slot_count, free_space_offset (from end)
_SLOT = struct.Struct("<HH")            # record_offset, record_length


class SlottedPage:
    """A fixed-size slotted page holding variable length records."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE,
                 data: Optional[bytes] = None, secure: bool = True) -> None:
        if page_size < 64:
            raise StorageError("page size must be at least 64 bytes")
        self.page_size = page_size
        self.secure = secure
        if data is None:
            self._buffer = bytearray(page_size)
            self._set_header(0, page_size)
        else:
            if len(data) != page_size:
                raise StorageError(
                    f"page image has {len(data)} bytes, expected {page_size}"
                )
            self._buffer = bytearray(data)

    # -- header helpers ------------------------------------------------------

    def _get_header(self) -> Tuple[int, int]:
        return _HEADER.unpack_from(self._buffer, 0)

    def _set_header(self, slot_count: int, free_offset: int) -> None:
        _HEADER.pack_into(self._buffer, 0, slot_count, free_offset)

    @property
    def slot_count(self) -> int:
        return self._get_header()[0]

    @property
    def _free_offset(self) -> int:
        return self._get_header()[1]

    def _slot_directory_end(self, slot_count: Optional[int] = None) -> int:
        if slot_count is None:
            slot_count = self.slot_count
        return _HEADER.size + slot_count * _SLOT.size

    def _get_slot(self, slot: int) -> Tuple[int, int]:
        if not 0 <= slot < self.slot_count:
            raise RecordNotFoundError(f"slot {slot} out of range")
        return _SLOT.unpack_from(self._buffer, _HEADER.size + slot * _SLOT.size)

    def _set_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self._buffer, _HEADER.size + slot * _SLOT.size, offset, length)

    # -- capacity --------------------------------------------------------------

    def free_space(self) -> int:
        """Bytes available for a new record including its new slot entry."""
        contiguous = self._free_offset - self._slot_directory_end()
        return max(0, contiguous - _SLOT.size)

    def can_fit(self, payload_length: int) -> bool:
        return payload_length <= self.free_space()

    # -- record operations -------------------------------------------------------

    def insert(self, payload: bytes) -> int:
        """Insert ``payload`` and return its slot number."""
        if not payload:
            raise StorageError("cannot store an empty record")
        length = len(payload)
        if not self.can_fit(length):
            raise PageFullError(
                f"record of {length} bytes does not fit (free={self.free_space()})"
            )
        slot_count, free_offset = self._get_header()
        new_offset = free_offset - length
        self._buffer[new_offset:free_offset] = payload
        self._set_header(slot_count + 1, new_offset)
        self._set_slot(slot_count, new_offset, length)
        return slot_count

    def read(self, slot: int) -> bytes:
        offset, length = self._get_slot(slot)
        if offset == 0:
            raise RecordNotFoundError(f"slot {slot} is deleted")
        return bytes(self._buffer[offset:offset + length])

    def is_live(self, slot: int) -> bool:
        try:
            offset, _length = self._get_slot(slot)
        except RecordNotFoundError:
            return False
        return offset != 0

    def delete(self, slot: int) -> None:
        """Delete the record in ``slot``; secure pages zero the payload bytes."""
        offset, length = self._get_slot(slot)
        if offset == 0:
            raise RecordNotFoundError(f"slot {slot} is already deleted")
        if self.secure:
            self._buffer[offset:offset + length] = b"\x00" * length
        self._set_slot(slot, 0, 0)

    def update(self, slot: int, payload: bytes) -> bool:
        """Update the record in ``slot`` in place.

        Returns ``True`` on success.  When the new payload is larger than the
        old one and no contiguous free space exists, the caller must fall back
        to delete + re-insert elsewhere (the method returns ``False`` after
        securely deleting nothing).
        """
        offset, length = self._get_slot(slot)
        if offset == 0:
            raise RecordNotFoundError(f"slot {slot} is deleted")
        new_length = len(payload)
        if new_length <= length:
            self._buffer[offset:offset + new_length] = payload
            if self.secure and new_length < length:
                self._buffer[offset + new_length:offset + length] = b"\x00" * (length - new_length)
            self._set_slot(slot, offset, new_length)
            return True
        # Try to place the larger payload in fresh free space on the same page.
        slot_count, free_offset = self._get_header()
        contiguous = free_offset - self._slot_directory_end(slot_count)
        if new_length <= contiguous:
            new_offset = free_offset - new_length
            self._buffer[new_offset:free_offset] = payload
            self._set_header(slot_count, new_offset)
            if self.secure:
                self._buffer[offset:offset + length] = b"\x00" * length
            self._set_slot(slot, new_offset, new_length)
            return True
        return False

    def live_slots(self) -> List[int]:
        return [slot for slot in range(self.slot_count) if self.is_live(slot)]

    def records(self) -> List[Tuple[int, bytes]]:
        return [(slot, self.read(slot)) for slot in self.live_slots()]

    # -- maintenance ----------------------------------------------------------

    def compact(self) -> int:
        """Compact live records to the end of the page, zeroing reclaimed space.

        Returns the number of free bytes after compaction.  Slot numbers are
        preserved (record ids stay valid).
        """
        live = [(slot, self.read(slot)) for slot in self.live_slots()]
        free_offset = self.page_size
        payload_area_start = self._slot_directory_end()
        self._buffer[payload_area_start:self.page_size] = (
            b"\x00" * (self.page_size - payload_area_start)
        )
        for slot, payload in live:
            free_offset -= len(payload)
            self._buffer[free_offset:free_offset + len(payload)] = payload
            self._set_slot(slot, free_offset, len(payload))
        self._set_header(self.slot_count, free_offset)
        return self.free_space()

    def to_bytes(self) -> bytes:
        return bytes(self._buffer)

    def raw(self) -> bytes:
        """Raw page image including free space (used by the forensic scanner)."""
        return bytes(self._buffer)

    @classmethod
    def from_bytes(cls, data: bytes, secure: bool = True) -> "SlottedPage":
        return cls(page_size=len(data), data=data, secure=secure)


__all__ = ["SlottedPage", "DEFAULT_PAGE_SIZE"]
