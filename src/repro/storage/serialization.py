"""Record serialization.

Records are tuples of Python values (ints, floats, booleans, strings and the
degradation sentinels) encoded to a compact, self describing byte string.  The
codec is deliberately simple — a one byte type tag followed by a fixed or
length prefixed payload — so that tests can reason about exact byte layouts
and the forensic scanner (:mod:`repro.privacy.forensic`) can grep raw pages
for residual plaintext.
"""

from __future__ import annotations

import struct
from typing import Any, List, Sequence, Tuple

from ..core.errors import StorageError
from ..core.values import NULL, REMOVED, SUPPRESSED

_TAG_NULL = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_TEXT = 3
_TAG_BOOL_TRUE = 4
_TAG_BOOL_FALSE = 5
_TAG_SUPPRESSED = 6
_TAG_REMOVED = 7
_TAG_BYTES = 8

_INT_STRUCT = struct.Struct("<q")
_FLOAT_STRUCT = struct.Struct("<d")
_LEN_STRUCT = struct.Struct("<I")
_COUNT_STRUCT = struct.Struct("<H")


def encode_value(value: Any) -> bytes:
    """Encode one value to bytes."""
    if value is NULL or value is None:
        return bytes([_TAG_NULL])
    if value is SUPPRESSED:
        return bytes([_TAG_SUPPRESSED])
    if value is REMOVED:
        return bytes([_TAG_REMOVED])
    if isinstance(value, bool):
        return bytes([_TAG_BOOL_TRUE if value else _TAG_BOOL_FALSE])
    if isinstance(value, int):
        return bytes([_TAG_INT]) + _INT_STRUCT.pack(value)
    if isinstance(value, float):
        return bytes([_TAG_FLOAT]) + _FLOAT_STRUCT.pack(value)
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return bytes([_TAG_TEXT]) + _LEN_STRUCT.pack(len(payload)) + payload
    if isinstance(value, (bytes, bytearray)):
        payload = bytes(value)
        return bytes([_TAG_BYTES]) + _LEN_STRUCT.pack(len(payload)) + payload
    raise StorageError(f"cannot serialize value of type {type(value).__name__}: {value!r}")


def decode_value(data: bytes, offset: int = 0) -> Tuple[Any, int]:
    """Decode one value starting at ``offset``; return ``(value, next_offset)``."""
    if offset >= len(data):
        raise StorageError("truncated record: no type tag")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NULL:
        return NULL, offset
    if tag == _TAG_SUPPRESSED:
        return SUPPRESSED, offset
    if tag == _TAG_REMOVED:
        return REMOVED, offset
    if tag == _TAG_BOOL_TRUE:
        return True, offset
    if tag == _TAG_BOOL_FALSE:
        return False, offset
    if tag == _TAG_INT:
        end = offset + _INT_STRUCT.size
        if end > len(data):
            raise StorageError("truncated record: short INT payload")
        return _INT_STRUCT.unpack_from(data, offset)[0], end
    if tag == _TAG_FLOAT:
        end = offset + _FLOAT_STRUCT.size
        if end > len(data):
            raise StorageError("truncated record: short FLOAT payload")
        return _FLOAT_STRUCT.unpack_from(data, offset)[0], end
    if tag in (_TAG_TEXT, _TAG_BYTES):
        length_end = offset + _LEN_STRUCT.size
        if length_end > len(data):
            raise StorageError("truncated record: short length prefix")
        (length,) = _LEN_STRUCT.unpack_from(data, offset)
        end = length_end + length
        if end > len(data):
            raise StorageError("truncated record: short string payload")
        payload = data[length_end:end]
        if tag == _TAG_TEXT:
            return payload.decode("utf-8"), end
        return payload, end
    raise StorageError(f"unknown type tag {tag} at offset {offset - 1}")


def skip_values(data: bytes, offset: int, count: int) -> int:
    """Advance past ``count`` encoded values without materializing them.

    The column-pruned read path uses this to hop over a *run* of fields a
    query does not touch in one call: fixed-width payloads are skipped by
    size, strings/bytes by their length prefix, so no Python object (and no
    UTF-8 decode) is ever built for an unreferenced column.
    """
    size = len(data)
    unpack_length = _LEN_STRUCT.unpack_from
    for _ in range(count):
        if offset >= size:
            raise StorageError("truncated record: no type tag")
        tag = data[offset]
        offset += 1
        if tag == _TAG_TEXT or tag == _TAG_BYTES:
            length_end = offset + 4
            if length_end > size:
                raise StorageError("truncated record: short length prefix")
            offset = length_end + unpack_length(data, offset)[0]
        elif tag == _TAG_INT or tag == _TAG_FLOAT:
            offset += 8
        elif tag not in (_TAG_NULL, _TAG_SUPPRESSED, _TAG_REMOVED,
                         _TAG_BOOL_TRUE, _TAG_BOOL_FALSE):
            raise StorageError(f"unknown type tag {tag} at offset {offset - 1}")
    if offset > size:
        raise StorageError("truncated record: short payload")
    return offset


def skip_value(data: bytes, offset: int = 0) -> int:
    """Advance past one encoded value without materializing it."""
    return skip_values(data, offset, 1)


def record_field_count(data: bytes) -> Tuple[int, int]:
    """Field count of an encoded record plus the offset of its first field."""
    if len(data) < _COUNT_STRUCT.size:
        raise StorageError("truncated record: missing field count")
    (count,) = _COUNT_STRUCT.unpack_from(data, 0)
    return count, _COUNT_STRUCT.size


def encode_record(values: Sequence[Any]) -> bytes:
    """Encode a record (tuple of values) with a leading field count."""
    if len(values) > 0xFFFF:
        raise StorageError("records with more than 65535 fields are not supported")
    parts: List[bytes] = [_COUNT_STRUCT.pack(len(values))]
    for value in values:
        parts.append(encode_value(value))
    return b"".join(parts)


def decode_record(data: bytes) -> Tuple[Any, ...]:
    """Decode a record previously produced by :func:`encode_record`."""
    if len(data) < _COUNT_STRUCT.size:
        raise StorageError("truncated record: missing field count")
    (count,) = _COUNT_STRUCT.unpack_from(data, 0)
    offset = _COUNT_STRUCT.size
    values = []
    for _ in range(count):
        value, offset = decode_value(data, offset)
        values.append(value)
    if offset != len(data):
        raise StorageError("trailing bytes after record payload")
    return tuple(values)


__all__ = ["encode_value", "decode_value", "encode_record", "decode_record",
           "skip_value", "skip_values", "record_field_count"]
