"""LRU buffer pool.

The buffer pool caches :class:`~repro.storage.page.SlottedPage` objects above
a :class:`~repro.storage.pager.Pager` and tracks dirty pages.  It exists for
two reasons: to give the storage engine realistic read/write amplification
behaviour for the C2/C3 benchmarks, and to provide a single flush point that
the degradation engine can force after a degradation step (a step is only
*non-recoverable* once the overwritten page has reached the backing store).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from ..core.errors import StorageError
from .page import SlottedPage
from .pager import Pager


@dataclass
class BufferStats:
    """Hit/miss/eviction counters exposed to the benchmarks."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferPool:
    """A simple LRU buffer pool with explicit dirty tracking.

    Pages are returned by reference: callers mutate the returned
    :class:`SlottedPage` and then call :meth:`mark_dirty`.  Pinning is not
    reference counted (single threaded engine); eviction simply flushes dirty
    victims.
    """

    def __init__(self, pager: Pager, capacity: int = 128) -> None:
        if capacity < 1:
            raise StorageError("buffer pool capacity must be at least 1")
        self.pager = pager
        self.capacity = capacity
        self._frames: "OrderedDict[int, SlottedPage]" = OrderedDict()
        self._dirty: Dict[int, bool] = {}
        self.stats = BufferStats()

    # -- page access -----------------------------------------------------------

    def get_page(self, page_id: int) -> SlottedPage:
        """Fetch a page, reading it from the pager on a miss."""
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
            self.stats.hits += 1
            return self._frames[page_id]
        self.stats.misses += 1
        page = self.pager.read_page(page_id)
        self._admit(page_id, page, dirty=False)
        return page

    def new_page(self) -> int:
        """Allocate a page through the pager and admit it clean."""
        page_id = self.pager.allocate()
        page = self.pager.read_page(page_id)
        self._admit(page_id, page, dirty=False)
        return page_id

    def mark_dirty(self, page_id: int) -> None:
        if page_id not in self._frames:
            raise StorageError(f"page {page_id} is not resident")
        self._dirty[page_id] = True
        self._frames.move_to_end(page_id)

    def _admit(self, page_id: int, page: SlottedPage, dirty: bool) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page_id] = page
        self._dirty[page_id] = dirty

    def _evict_one(self) -> None:
        victim_id, victim = self._frames.popitem(last=False)
        if self._dirty.pop(victim_id, False):
            self.pager.write_page(victim_id, victim)
            self.stats.flushes += 1
        self.stats.evictions += 1

    # -- flushing ----------------------------------------------------------------

    def flush_page(self, page_id: int, sync: bool = False) -> None:
        """Write one page through to the pager if dirty.

        With ``sync=True`` the pager is synced afterwards — the degradation
        path uses this to make the overwritten page durable *before* the WAL
        images are scrubbed (the irreversibility ordering); a write-through
        alone only reaches the pager's buffers.
        """
        if page_id in self._frames and self._dirty.get(page_id, False):
            self.pager.write_page(page_id, self._frames[page_id])
            self._dirty[page_id] = False
            self.stats.flushes += 1
        if sync:
            self.pager.sync()

    def sync(self) -> None:
        """Force previously flushed pages to stable storage (one fsync)."""
        self.pager.sync()

    def flush_all(self) -> None:
        for page_id in list(self._frames):
            self.flush_page(page_id)
        self.pager.sync()

    def drop_cache(self) -> None:
        """Flush then forget every frame (simulates a restart)."""
        self.flush_all()
        self._frames.clear()
        self._dirty.clear()

    # -- introspection ------------------------------------------------------------

    def resident_pages(self) -> Iterator[int]:
        return iter(self._frames.keys())

    def is_dirty(self, page_id: int) -> bool:
        return self._dirty.get(page_id, False)

    def __len__(self) -> int:
        return len(self._frames)


__all__ = ["BufferPool", "BufferStats"]
