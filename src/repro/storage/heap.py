"""Heap files: unordered record storage on top of the buffer pool.

Records are addressed by :class:`RecordId` — ``(page_id, slot)``.  The heap
keeps record ids stable across in-place updates; when an update outgrows its
page the heap transparently *relocates* the record and reports the new id so
callers (indexes, the degradation scheduler) can fix their references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from ..core.errors import PageFullError, RecordNotFoundError, StorageError
from .buffer import BufferPool
from .page import SlottedPage


@dataclass(frozen=True, order=True)
class RecordId:
    """Physical address of a record."""

    page_id: int
    slot: int

    def __str__(self) -> str:
        return f"({self.page_id},{self.slot})"


class HeapFile:
    """An unordered collection of records belonging to one table."""

    def __init__(self, buffer_pool: BufferPool, name: str = "heap",
                 on_allocate: Optional[Callable[[int], None]] = None) -> None:
        self.buffer_pool = buffer_pool
        self.name = name
        #: Called with the page id whenever the heap allocates a fresh page;
        #: the table store uses this to log page ownership durably.
        self.on_allocate = on_allocate
        self._page_ids: List[int] = []
        self._record_count = 0

    # -- insert ------------------------------------------------------------------

    def insert(self, payload: bytes) -> RecordId:
        """Insert ``payload`` into the first page with room, allocating if needed."""
        max_payload = self.buffer_pool.pager.page_size - 64
        if len(payload) > max_payload:
            raise StorageError(
                f"record of {len(payload)} bytes exceeds page capacity ({max_payload})"
            )
        for page_id in reversed(self._page_ids):
            page = self.buffer_pool.get_page(page_id)
            if page.can_fit(len(payload)):
                slot = page.insert(payload)
                self.buffer_pool.mark_dirty(page_id)
                self._record_count += 1
                return RecordId(page_id, slot)
        page_id = self.buffer_pool.new_page()
        self._page_ids.append(page_id)
        if self.on_allocate is not None:
            self.on_allocate(page_id)
        page = self.buffer_pool.get_page(page_id)
        slot = page.insert(payload)
        self.buffer_pool.mark_dirty(page_id)
        self._record_count += 1
        return RecordId(page_id, slot)

    # -- read --------------------------------------------------------------------

    def read(self, record_id: RecordId) -> bytes:
        page = self.buffer_pool.get_page(record_id.page_id)
        return page.read(record_id.slot)

    def exists(self, record_id: RecordId) -> bool:
        try:
            page = self.buffer_pool.get_page(record_id.page_id)
        except StorageError:
            return False
        return page.is_live(record_id.slot)

    # -- update / delete -----------------------------------------------------------

    def update(self, record_id: RecordId, payload: bytes) -> RecordId:
        """Update a record in place when possible, relocating it otherwise.

        Returns the (possibly new) record id.  The old location is securely
        scrubbed on relocation.
        """
        page = self.buffer_pool.get_page(record_id.page_id)
        if page.update(record_id.slot, payload):
            self.buffer_pool.mark_dirty(record_id.page_id)
            return record_id
        # Relocation: delete (which zeroes the old payload) then insert afresh.
        page.delete(record_id.slot)
        self.buffer_pool.mark_dirty(record_id.page_id)
        self._record_count -= 1
        return self.insert(payload)

    def delete(self, record_id: RecordId) -> None:
        page = self.buffer_pool.get_page(record_id.page_id)
        page.delete(record_id.slot)
        self.buffer_pool.mark_dirty(record_id.page_id)
        self._record_count -= 1

    # -- scans ----------------------------------------------------------------------

    def scan(self) -> Iterator[Tuple[RecordId, bytes]]:
        """Yield ``(record_id, payload)`` for every live record."""
        for page_id in self._page_ids:
            page = self.buffer_pool.get_page(page_id)
            for slot, payload in page.records():
                yield RecordId(page_id, slot), payload

    def record_ids(self) -> Iterator[RecordId]:
        for record_id, _payload in self.scan():
            yield record_id

    # -- maintenance ------------------------------------------------------------------

    def adopt_pages(self, page_ids: List[int]) -> int:
        """Re-attach previously allocated pages after a reopen (recovery).

        A fresh :class:`HeapFile` owns no pages; recovery feeds it the page
        ids the WAL proves were allocated to this table (checkpoint directory
        plus PAGE_ALLOC tail).  Ids unknown to the pager are skipped — their
        allocation never became durable, so no data can live there.  The live
        record count is rebuilt from the adopted pages.  Returns the number of
        pages adopted.
        """
        known = set(self._page_ids)
        adopted = 0
        for page_id in page_ids:
            if page_id in known:
                continue
            try:
                page = self.buffer_pool.get_page(page_id)
            except StorageError:
                continue
            self._page_ids.append(page_id)
            known.add(page_id)
            adopted += 1
            # Count the adopted page's records in the same read that
            # validated it; already-known pages are already counted.
            self._record_count += len(page.live_slots())
        return adopted

    def compact(self) -> None:
        """Compact every page (secure pages zero the reclaimed space)."""
        for page_id in self._page_ids:
            page = self.buffer_pool.get_page(page_id)
            page.compact()
            self.buffer_pool.mark_dirty(page_id)

    def flush(self) -> None:
        self.buffer_pool.flush_all()

    @property
    def record_count(self) -> int:
        return self._record_count

    @property
    def page_count(self) -> int:
        return len(self._page_ids)

    def page_ids(self) -> List[int]:
        return list(self._page_ids)

    def raw_image(self) -> bytes:
        """Concatenated raw images of the heap's pages (forensics)."""
        parts = []
        for page_id in self._page_ids:
            parts.append(self.buffer_pool.get_page(page_id).raw())
        return b"".join(parts)


__all__ = ["HeapFile", "RecordId"]
