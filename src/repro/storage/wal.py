"""Write-ahead log with degradation-aware retention.

Traditional WALs are one of the "unintended retention" channels the paper
singles out: even after a value has been degraded in the data store, its
accurate before-image survives in the log and can be recovered forensically.
This WAL therefore supports, besides the classic append/flush/replay protocol:

* ``DEGRADE`` log records that carry **no accurate before-image** — degradation
  is deterministic and irreversible, so recovery never needs to undo it;
* :meth:`WriteAheadLog.scrub_record` / :meth:`WriteAheadLog.scrub_records` —
  physically rewrite the log so that no image of the given records survives
  (used when tuples reach their final state or are deleted); the bulk form is
  the one the batch degradation pipeline uses, paying one rewrite for a whole
  expiry wave;
* :meth:`WriteAheadLog.truncate_until` — drop the prefix made obsolete by a
  checkpoint.

The log also persists the **degradation schedule** (the ``SCHED_*`` record
types): registrations, applied steps, deferrals, event firings and — on clean
shutdown — a full snapshot of the due-queue.  These records carry row keys,
state indices and due times but never attribute values, so they survive
scrubbing untouched; :class:`~repro.txn.recovery.RecoveryManager` replays them
into a reconstructed :class:`~repro.core.scheduler.DegradationScheduler` (see
``docs/durability.md``).

The log is held in memory and optionally mirrored to a file so that crash
recovery tests can reopen it.  The durability path is append-only: ``flush``
writes only the records past ``flushed_lsn`` and fsyncs once, so a run of n
commits costs O(n) bytes of log I/O; only scrubbing and truncation pay a full
rewrite (that is their point — removing bytes from the middle of the file).
"""

from __future__ import annotations

import errno
import os
import struct
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.errors import DurabilityError, WALError
from ..faults import FaultPlan
from .serialization import decode_record, encode_record

_LEN_STRUCT = struct.Struct("<I")


class LogRecordType(Enum):
    BEGIN = "BEGIN"
    COMMIT = "COMMIT"
    ABORT = "ABORT"
    INSERT = "INSERT"
    UPDATE = "UPDATE"
    DELETE = "DELETE"
    DEGRADE = "DEGRADE"
    # One degradation-wave chunk applied through the columnar segment layer:
    # every listed row of one segment had ``attribute`` advanced to the same
    # accuracy level.  ``row_key`` holds the *segment id* (not a heap row key)
    # and the payload carries only the target level plus the affected row
    # keys — never attribute values — so the record replaces N per-row
    # DEGRADE records with one, and is scrub-exempt by construction.
    SEGMENT_DEGRADE = "SEGMENT_DEGRADE"
    REMOVE = "REMOVE"          # final removal at end of life cycle
    CHECKPOINT = "CHECKPOINT"
    SCRUB = "SCRUB"            # audit trace of a log scrubbing action
    # Degradation-schedule records: the durable image of the scheduler's
    # due-queue.  They carry row keys, attribute names, state indices and due
    # times — never attribute values — so they are exempt from scrubbing by
    # construction (nothing in them can leak a degraded value).
    SCHED_REGISTER = "SCHED_REGISTER"      # record entered the schedule
    SCHED_STEP = "SCHED_STEP"              # step(s) applied (batch payload)
    SCHED_DEFER = "SCHED_DEFER"            # step(s) re-queued after a conflict
    SCHED_EVENT = "SCHED_EVENT"            # named event fired
    SCHED_CHECKPOINT = "SCHED_CHECKPOINT"  # full queue snapshot (clean shutdown)
    # DDL marker: the table was dropped.  Recovery skips records of tables
    # that are absent from the reopened catalog *and* carry this marker;
    # an absent table without one is still a hard configuration error.
    TABLE_DROP = "TABLE_DROP"
    # Catalog snapshot: the full DDL state (domains, policies, tables,
    # purposes, indexes, columnar mirrors) serialized into the ``after``
    # payload, appended on DDL commit and folded into every checkpoint so
    # ``recover()`` reopens without re-running DDL.  Like the SCHED_* records
    # it carries names, structure and selector keys — never degradable
    # attribute values — so it is scrub-exempt by construction.
    CATALOG = "CATALOG"
    # Heap page allocated to a table (``row_key`` holds the page id).  The
    # row→page map is rebuilt by scanning the heap at recovery, but *which*
    # pager pages belong to which table must itself be durable: degraded rows
    # exist only on their flushed pages (their accurate log images are
    # scrubbed), so losing page ownership would lose the rows.  CHECKPOINT
    # records fold the full directory into their payload; PAGE_ALLOC covers
    # the tail behind the last checkpoint.
    PAGE_ALLOC = "PAGE_ALLOC"


#: Record types whose before/after images hold row payloads: when a row
#: degrades past an accuracy level, these are the records whose images
#: :meth:`WriteAheadLog.scrub_records` rewrites to ``None`` so the accurate
#: value cannot be resurrected from the log (the paper's bounded-retention
#: guarantee).  Every :class:`LogRecordType` must appear in exactly one of
#: ``_SCRUB_TARGETS`` / ``_SCRUB_EXEMPT`` — enforced by the *wal-exhaustive*
#: reprolint rule; see the new-record-type checklist in docs/invariants.md.
_SCRUB_TARGETS = frozenset({
    LogRecordType.INSERT,
    LogRecordType.UPDATE,
    LogRecordType.DELETE,
    LogRecordType.DEGRADE,
    LogRecordType.REMOVE,
})

#: Record types whose payloads carry no attribute values and must survive
#: scrubbing: transaction control and checkpoint markers, the SCRUB audit
#: trail itself, the degradation schedule, and storage-structure records.
_SCRUB_EXEMPT = frozenset({
    LogRecordType.BEGIN,
    LogRecordType.COMMIT,
    LogRecordType.ABORT,
    LogRecordType.CHECKPOINT,
    LogRecordType.SCRUB,
    LogRecordType.SCHED_REGISTER,
    LogRecordType.SCHED_STEP,
    LogRecordType.SCHED_DEFER,
    LogRecordType.SCHED_EVENT,
    LogRecordType.SCHED_CHECKPOINT,
    LogRecordType.TABLE_DROP,
    LogRecordType.CATALOG,
    LogRecordType.PAGE_ALLOC,
    # Carries a target level + row keys only (its ``row_key`` field is a
    # segment id, so the (table, row_key) scrub match must never touch it).
    LogRecordType.SEGMENT_DEGRADE,
})


@dataclass(frozen=True)
class LogRecord:
    """One log entry.

    ``before`` and ``after`` are opaque byte images (encoded records).  For
    ``DEGRADE`` records ``before`` is always ``None`` by construction.
    """

    lsn: int
    txn_id: int
    record_type: LogRecordType
    table: str = ""
    row_key: int = -1
    attribute: str = ""
    before: Optional[bytes] = None
    after: Optional[bytes] = None
    timestamp: float = 0.0
    #: Memoized wire encoding.  Records are immutable, so the payload is
    #: computed at most once; ``dataclasses.replace`` (scrubbing) builds a new
    #: record and therefore a fresh encoding.
    _encoded: Optional[bytes] = field(default=None, init=False, repr=False,
                                      compare=False)

    def encode(self) -> bytes:
        cached = self._encoded
        if cached is None:
            cached = encode_record([
                self.lsn,
                self.txn_id,
                self.record_type.value,
                self.table,
                self.row_key,
                self.attribute,
                self.before if self.before is not None else False,
                self.after if self.after is not None else False,
                float(self.timestamp),
            ])
            object.__setattr__(self, "_encoded", cached)
        return cached

    @property
    def encoding_cached(self) -> bool:
        return self._encoded is not None

    @classmethod
    def decode(cls, payload: bytes) -> "LogRecord":
        values = decode_record(payload)
        if len(values) != 9:
            raise WALError(f"malformed log record with {len(values)} fields")
        before = values[6] if isinstance(values[6], (bytes, bytearray)) else None
        after = values[7] if isinstance(values[7], (bytes, bytearray)) else None
        return cls(
            lsn=int(values[0]),
            txn_id=int(values[1]),
            record_type=LogRecordType(values[2]),
            table=str(values[3]),
            row_key=int(values[4]),
            attribute=str(values[5]),
            before=bytes(before) if before is not None else None,
            after=bytes(after) if after is not None else None,
            timestamp=float(values[8]),
        )


# -- schedule record payloads -------------------------------------------------
#
# SCHED_STEP and SCHED_DEFER records cover a whole degradation batch with one
# log record: their ``after`` payload is a flat encoded list with a leading
# entry count.  The table name lives in the record header; row keys identify
# the tuples within it.

def encode_schedule_steps(entries: List[Tuple[int, str, int, float]]) -> bytes:
    """Encode ``(row_key, attribute, to_state, due)`` step entries."""
    flat: List[Any] = [len(entries)]
    for row_key, attribute, to_state, due in entries:
        flat.extend([int(row_key), attribute, int(to_state), float(due)])
    return encode_record(flat)


def decode_schedule_steps(payload: bytes) -> List[Tuple[int, str, int, float]]:
    """Inverse of :func:`encode_schedule_steps`."""
    flat = decode_record(payload)
    count = int(flat[0])
    if len(flat) != 1 + 4 * count:
        raise WALError(f"malformed SCHED_STEP payload with {len(flat)} fields")
    entries = []
    for index in range(count):
        offset = 1 + 4 * index
        entries.append((int(flat[offset]), str(flat[offset + 1]),
                        int(flat[offset + 2]), float(flat[offset + 3])))
    return entries


def encode_schedule_defers(entries: List[Tuple[int, str, int, float, float]]) -> bytes:
    """Encode ``(row_key, attribute, from_state, due, until)`` defer entries."""
    flat: List[Any] = [len(entries)]
    for row_key, attribute, from_state, due, until in entries:
        flat.extend([int(row_key), attribute, int(from_state),
                     float(due), float(until)])
    return encode_record(flat)


def decode_schedule_defers(payload: bytes) -> List[Tuple[int, str, int, float, float]]:
    """Inverse of :func:`encode_schedule_defers`."""
    flat = decode_record(payload)
    count = int(flat[0])
    if len(flat) != 1 + 5 * count:
        raise WALError(f"malformed SCHED_DEFER payload with {len(flat)} fields")
    entries = []
    for index in range(count):
        offset = 1 + 5 * index
        entries.append((int(flat[offset]), str(flat[offset + 1]),
                        int(flat[offset + 2]), float(flat[offset + 3]),
                        float(flat[offset + 4])))
    return entries


def encode_segment_degrade(to_level: int, row_keys: List[int]) -> bytes:
    """Encode a SEGMENT_DEGRADE payload: target level + affected row keys."""
    flat: List[Any] = [int(to_level), len(row_keys)]
    flat.extend(int(row_key) for row_key in row_keys)
    return encode_record(flat)


def decode_segment_degrade(payload: bytes) -> Tuple[int, List[int]]:
    """Inverse of :func:`encode_segment_degrade`."""
    flat = decode_record(payload)
    count = int(flat[1])
    if len(flat) != 2 + count:
        raise WALError(
            f"malformed SEGMENT_DEGRADE payload with {len(flat)} fields")
    return int(flat[0]), [int(row_key) for row_key in flat[2:]]


def encode_policy_names(policies: Dict[str, str]) -> bytes:
    """Encode the attribute → policy-name map a SCHED_REGISTER record carries.

    Policy *names* are not sensitive (unlike the selector value that picked
    them, which must never enter the log): they let recovery re-resolve
    per-tuple overrides even after the selector value degraded.
    """
    flat: List[Any] = [len(policies)]
    for attribute in sorted(policies):
        flat.extend([attribute, policies[attribute]])
    return encode_record(flat)


def decode_policy_names(payload: bytes) -> Dict[str, str]:
    """Inverse of :func:`encode_policy_names`."""
    flat = decode_record(payload)
    count = int(flat[0])
    if len(flat) != 1 + 2 * count:
        raise WALError(f"malformed policy-name payload with {len(flat)} fields")
    return {str(flat[1 + 2 * i]): str(flat[2 + 2 * i]) for i in range(count)}


def encode_page_directory(directory: Dict[str, List[int]]) -> bytes:
    """Encode the table → heap-page-ids directory (CHECKPOINT payload)."""
    flat: List[Any] = [len(directory)]
    for table in sorted(directory):
        pages = directory[table]
        flat.append(table)
        flat.append(len(pages))
        flat.extend(int(page_id) for page_id in pages)
    return encode_record(flat)


def decode_page_directory(payload: bytes) -> Dict[str, List[int]]:
    """Inverse of :func:`encode_page_directory`."""
    flat = decode_record(payload)
    cursor = 0
    count = int(flat[cursor]); cursor += 1
    directory: Dict[str, List[int]] = {}
    for _ in range(count):
        table = str(flat[cursor]); cursor += 1
        n_pages = int(flat[cursor]); cursor += 1
        directory[table] = [int(p) for p in flat[cursor:cursor + n_pages]]
        cursor += n_pages
    if cursor != len(flat):
        raise WALError("malformed page-directory payload")
    return directory


@dataclass
class WALStats:
    appended: int = 0
    flushed: int = 0
    scrubbed_records: int = 0
    scrub_rewrites: int = 0
    truncations: int = 0
    #: Bytes physically written to the log file (appends and rewrites alike);
    #: the benchmark guard that the durability path stays O(n), not O(n^2).
    bytes_written: int = 0
    #: Payload encodings actually computed (vs. served from the per-record
    #: cache); the guard that scrub/truncate rewrites do not re-encode every
    #: surviving record.
    payload_encodes: int = 0
    payload_cache_hits: int = 0


class WriteAheadLog:
    """Append-only log with degradation-aware scrubbing."""

    def __init__(self, path: Optional[str] = None,
                 faults: Optional[FaultPlan] = None) -> None:
        self.path = path
        self.faults = faults
        self._records: List[LogRecord] = []
        self._next_lsn = 1
        self._flushed_lsn = 0
        #: Byte length of the known-good on-disk prefix.  A failed or torn
        #: flush leaves garbage past this point; the next flush truncates back
        #: to it before appending, so the file never accumulates torn tails.
        self._disk_bytes = 0
        #: Set when a scrub/truncate rewrite failed mid-way: the in-memory log
        #: and the file have diverged beyond the append protocol's reach, so
        #: the next flush must retry the full rewrite instead of appending.
        self._rewrite_pending = False
        self.stats = WALStats()
        if path is not None and os.path.exists(path):
            self._load(path)

    # -- basic protocol -----------------------------------------------------

    def append(self, record_type: LogRecordType, txn_id: int, *, table: str = "",
               row_key: int = -1, attribute: str = "",
               before: Optional[bytes] = None, after: Optional[bytes] = None,
               timestamp: float = 0.0) -> LogRecord:
        if before is not None and (
                record_type is LogRecordType.DEGRADE
                or record_type is LogRecordType.SEGMENT_DEGRADE):
            raise WALError(
                "DEGRADE log records must not carry an accurate before-image"
            )
        record = LogRecord(
            lsn=self._next_lsn,
            txn_id=txn_id,
            record_type=record_type,
            table=table,
            row_key=row_key,
            attribute=attribute,
            before=before,
            after=after,
            timestamp=timestamp,
        )
        self._next_lsn += 1
        self._records.append(record)
        self.stats.appended += 1
        return record

    def flush(self) -> None:
        """Persist every appended record (durability point).

        Append-only: only records with ``lsn > flushed_lsn`` are written (they
        form a suffix of the in-memory list), followed by one fsync.  Full
        rewrites happen only in :meth:`scrub_records` and
        :meth:`truncate_until`, which must remove bytes already on disk.

        Failure semantics: any I/O error — real or injected via the fault
        plan — surfaces as :class:`DurabilityError` *without* advancing
        ``flushed_lsn`` or the known-good byte mark, so a retry (or the next
        flush after recovery) first truncates any torn tail back to the last
        good byte and rewrites the whole pending suffix.  The on-disk prefix
        up to the last successful flush is never touched.
        """
        if self.path is not None:
            if self._rewrite_pending:
                # A scrub/truncate rewrite failed earlier; appending would
                # persist images the in-memory log already dropped.
                self._rewrite_file()
                self.stats.flushed += 1
                return
            start = len(self._records)
            while start > 0 and self._records[start - 1].lsn > self._flushed_lsn:
                start -= 1
            pending = self._records[start:]
            if pending:
                buffer = bytearray()
                for record in pending:
                    payload = self._payload(record)
                    buffer += _LEN_STRUCT.pack(len(payload))
                    buffer += payload
                event = self.faults.fire("wal.flush") if self.faults else None
                try:
                    if event is not None and event.kind == "enospc":
                        raise OSError(errno.ENOSPC,
                                      "injected: no space left on device")
                    mode = "r+b" if os.path.exists(self.path) else "w+b"
                    with open(self.path, mode) as handle:
                        handle.truncate(self._disk_bytes)
                        handle.seek(self._disk_bytes)
                        if event is not None and event.kind == "torn_write":
                            handle.write(bytes(buffer[:max(1, len(buffer) // 2)]))
                            handle.flush()
                            raise OSError(errno.EIO, "injected: torn write")
                        handle.write(bytes(buffer))
                        handle.flush()
                        if event is not None and event.kind == "fsync":
                            raise OSError(errno.EIO, "injected: fsync failed")
                        os.fsync(handle.fileno())
                except OSError as exc:
                    # Best-effort immediate repair: chop whatever the failed
                    # attempt managed to write back to the known-good prefix.
                    # A torn half-buffer can end exactly on a record boundary,
                    # and a crash before the next flush would then make _load
                    # accept records whose durability was *denied* to the
                    # caller.  If this repair fails too, the next flush (or
                    # _load's framing check) still truncates first.
                    try:
                        with open(self.path, "r+b") as handle:
                            handle.truncate(self._disk_bytes)
                            handle.flush()
                            os.fsync(handle.fileno())
                    except OSError:  # reprolint: disable=no-swallowed-io-error -- best-effort torn-tail repair while propagating the original failure
                        pass
                    raise DurabilityError(f"WAL flush failed: {exc}") from exc
                self.stats.bytes_written += len(buffer)
                self._disk_bytes += len(buffer)
        self._flushed_lsn = self._records[-1].lsn if self._records else self._flushed_lsn
        self.stats.flushed += 1

    def _payload(self, record: LogRecord) -> bytes:
        """Wire encoding of ``record``, tracking cache effectiveness."""
        if record.encoding_cached:
            self.stats.payload_cache_hits += 1
        else:
            self.stats.payload_encodes += 1
        return record.encode()

    @property
    def last_lsn(self) -> int:
        return self._records[-1].lsn if self._records else 0

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    def records(self) -> List[LogRecord]:
        return list(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def records_for(self, table: str, row_key: int) -> List[LogRecord]:
        return [
            record for record in self._records
            if record.table == table and record.row_key == row_key
        ]

    # -- degradation-aware maintenance -----------------------------------------

    def scrub_record(self, table: str, row_key: int, now: float = 0.0) -> int:
        """Remove every image of ``(table, row_key)`` from the log.

        The payloads of matching INSERT/UPDATE/DELETE records are dropped (the
        structural entry remains so LSNs stay dense and recovery still knows a
        record existed); the log file is rewritten so no byte of the images
        survives on disk.  Returns the number of records scrubbed.
        """
        return self.scrub_records([(table, row_key)], now=now)

    def scrub_records(self, keys: Iterable[Tuple[str, int]], now: float = 0.0) -> int:
        """Bulk :meth:`scrub_record`: one log pass and one rewrite for all ``keys``.

        This is what makes scrubbing affordable on the degradation hot path:
        a batch of n expiring rows pays a single O(log) scan and a single file
        rewrite instead of n of each.  One *aggregate* SCRUB audit record is
        appended per batch (its ``attribute`` names the touched-key count and
        its ``after`` payload carries the count), so a mass-removal wave grows
        the log by O(1) audit bytes instead of O(n).  A single-key scrub keeps
        the per-row audit shape (table + row key).  Returns the total number
        of records scrubbed.
        """
        targets = set(keys)
        if not targets:
            return 0
        scrubbed = 0
        touched = set()
        for index, record in enumerate(self._records):
            if record.record_type in _SCRUB_EXEMPT:
                # Schedule/structure records never hold attribute values —
                # their payloads (policy names, state indices, page ids) must
                # survive scrubbing for recovery to work.
                continue
            key = (record.table, record.row_key)
            if key not in targets:
                continue
            if record.before is None and record.after is None:
                continue
            self._records[index] = replace(record, before=None, after=None)
            scrubbed += 1
            touched.add(key)
        if scrubbed:
            self.stats.scrubbed_records += scrubbed
            self.stats.scrub_rewrites += 1
            tables = sorted({table for table, _row_key in touched})
            if len(touched) == 1:
                table, row_key = next(iter(touched))
                self.append(LogRecordType.SCRUB, txn_id=0, table=table,
                            row_key=row_key, timestamp=now)
            else:
                self.append(
                    LogRecordType.SCRUB, txn_id=0,
                    table=tables[0] if len(tables) == 1 else "",
                    row_key=-1, attribute=f"batch:{len(touched)}",
                    after=encode_record([len(touched), scrubbed]),
                    timestamp=now,
                )
            if self.path is not None:
                self._rewrite_file()
        return scrubbed

    def truncate_until(self, lsn: int) -> int:
        """Drop every record with ``record.lsn <= lsn`` (post-checkpoint cleanup)."""
        before = len(self._records)
        self._records = [record for record in self._records if record.lsn > lsn]
        dropped = before - len(self._records)
        if dropped:
            self.stats.truncations += 1
            if self.path is not None:
                self._rewrite_file()
        return dropped

    # -- persistence -------------------------------------------------------------

    def _rewrite_file(self) -> None:
        assert self.path is not None
        # Armed until the atomic replace lands: a failure here (the in-memory
        # log has already dropped images the file still holds) forces the next
        # flush to retry the full rewrite instead of appending.
        self._rewrite_pending = True
        event = self.faults.fire("wal.rewrite") if self.faults else None
        tmp_path = self.path + ".tmp"
        total = 0
        try:
            if event is not None and event.kind == "enospc":
                raise OSError(errno.ENOSPC,
                              "injected: no space left on device")
            with open(tmp_path, "wb") as handle:
                for record in self._records:
                    payload = self._payload(record)
                    handle.write(_LEN_STRUCT.pack(len(payload)))
                    handle.write(payload)
                    total += _LEN_STRUCT.size + len(payload)
                handle.flush()
                if event is not None and event.kind == "fsync":
                    raise OSError(errno.EIO, "injected: fsync failed")
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except OSError as exc:
            try:
                os.unlink(tmp_path)
            except OSError:  # reprolint: disable=no-swallowed-io-error -- best-effort tmp cleanup while propagating the original failure
                pass
            raise DurabilityError(f"WAL rewrite failed: {exc}") from exc
        self.stats.bytes_written += total
        self._disk_bytes = total
        # A rewrite persists everything currently in memory, so later flushes
        # must not re-append those records.
        self._flushed_lsn = self._records[-1].lsn if self._records else 0
        self._rewrite_pending = False

    def _load(self, path: str) -> None:
        with open(path, "rb") as handle:
            data = handle.read()
        offset = 0
        valid_until = 0
        while offset < len(data):
            if offset + _LEN_STRUCT.size > len(data):
                # Torn tail write: ignore the incomplete record.
                break
            (length,) = _LEN_STRUCT.unpack_from(data, offset)
            offset += _LEN_STRUCT.size
            if offset + length > len(data):
                break
            payload = data[offset:offset + length]
            record = LogRecord.decode(payload)
            # The bytes just read *are* the encoding; seed the cache so a
            # later rewrite does not re-encode recovered records.
            object.__setattr__(record, "_encoded", payload)
            self._records.append(record)
            offset += length
            valid_until = offset
        if valid_until < len(data):
            # Chop the torn tail now: the append-only flush writes after the
            # end of the file, and bytes appended behind garbage would be
            # unreachable on the next load.
            with open(path, "r+b") as handle:
                handle.truncate(valid_until)
                handle.flush()
                os.fsync(handle.fileno())
        self._disk_bytes = valid_until
        if self._records:
            self._next_lsn = self._records[-1].lsn + 1
            self._flushed_lsn = self._records[-1].lsn

    def raw_image(self) -> bytes:
        """Every byte currently held by the log (forensic scanning)."""
        return b"".join(self._payload(record) for record in self._records)

    def forensic_image(self) -> bytes:
        """Scanner input: every payload byte except CATALOG ``after`` documents.

        CATALOG records persist the DDL state, and a generalization *domain*
        is part of it — including its level-0 vocabulary, i.e. every accurate
        value the domain admits.  That vocabulary is schema, not data: it is
        fixed at DDL time and identical whether zero or a million tuples were
        inserted, so a value's presence in it proves nothing about any tuple's
        retention.  :meth:`raw_image` stays complete (the bytes *are* on
        disk); this view is what the non-recoverability scanner greps so the
        ontology is not flagged as a retained tuple value.
        """
        parts = []
        for record in self._records:
            if record.record_type is LogRecordType.CATALOG and record.after:
                parts.append(replace(record, after=None).encode())
            else:
                parts.append(self._payload(record))
        return b"".join(parts)

    def close(self) -> None:
        if self.path is not None:
            self.flush()


__all__ = ["WriteAheadLog", "LogRecord", "LogRecordType", "WALStats",
           "encode_schedule_steps", "decode_schedule_steps",
           "encode_schedule_defers", "decode_schedule_defers",
           "encode_segment_degrade", "decode_segment_degrade",
           "encode_policy_names", "decode_policy_names",
           "encode_page_directory", "decode_page_directory"]
