"""Pagers: allocation and persistence of fixed size pages.

Two backends share the :class:`Pager` interface:

* :class:`MemoryPager` — pages held in a dict, used by tests, examples and the
  benchmarks (laptop-scale, deterministic).
* :class:`FilePager` — pages persisted to a single file, used by the
  durability / recovery tests and by anyone who wants an on-disk database.

Both expose :meth:`Pager.raw_image` so the forensic scanner can look for
residual plaintext in *all* bytes under management, not only live records.
"""

from __future__ import annotations

import errno
import os
from typing import Dict, Iterator, Optional

from ..core.errors import DurabilityError, StorageError
from ..faults import FaultPlan
from .page import DEFAULT_PAGE_SIZE, SlottedPage


class Pager:
    """Interface of a page store."""

    page_size: int = DEFAULT_PAGE_SIZE

    def allocate(self) -> int:
        """Allocate a fresh page and return its page id."""
        raise NotImplementedError

    def read_page(self, page_id: int) -> SlottedPage:
        raise NotImplementedError

    def write_page(self, page_id: int, page: SlottedPage) -> None:
        raise NotImplementedError

    def num_pages(self) -> int:
        raise NotImplementedError

    def page_ids(self) -> Iterator[int]:
        return iter(range(self.num_pages()))

    def sync(self) -> None:
        """Flush to stable storage (no-op for memory pagers)."""

    def close(self) -> None:
        """Release resources."""

    def raw_image(self) -> bytes:
        """Concatenation of every page image (forensic scanning)."""
        return b"".join(self.read_page(pid).raw() for pid in self.page_ids())


class MemoryPager(Pager):
    """Pager keeping page images in memory."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE, secure: bool = True) -> None:
        self.page_size = page_size
        self.secure = secure
        self._pages: Dict[int, bytes] = {}
        self._next_id = 0

    def allocate(self) -> int:
        page_id = self._next_id
        self._next_id += 1
        self._pages[page_id] = SlottedPage(self.page_size, secure=self.secure).to_bytes()
        return page_id

    def read_page(self, page_id: int) -> SlottedPage:
        try:
            data = self._pages[page_id]
        except KeyError:
            raise StorageError(f"unknown page id {page_id}") from None
        return SlottedPage.from_bytes(data, secure=self.secure)

    def write_page(self, page_id: int, page: SlottedPage) -> None:
        if page_id not in self._pages:
            raise StorageError(f"unknown page id {page_id}")
        self._pages[page_id] = page.to_bytes()

    def num_pages(self) -> int:
        return self._next_id


class FilePager(Pager):
    """Pager persisting pages to a single binary file."""

    def __init__(self, path: str, page_size: int = DEFAULT_PAGE_SIZE,
                 secure: bool = True,
                 faults: Optional[FaultPlan] = None) -> None:
        self.page_size = page_size
        self.secure = secure
        self.path = path
        self.faults = faults
        exists = os.path.exists(path)
        self._file = open(path, "r+b" if exists else "w+b")
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size != 0:
            raise StorageError(
                f"file {path!r} has {size} bytes, not a multiple of page size {page_size}"
            )
        self._page_count = size // page_size

    def allocate(self) -> int:
        page_id = self._page_count
        self._page_count += 1
        empty = SlottedPage(self.page_size, secure=self.secure).to_bytes()
        self._file.seek(page_id * self.page_size)
        self._file.write(empty)
        return page_id

    def read_page(self, page_id: int) -> SlottedPage:
        if not 0 <= page_id < self._page_count:
            raise StorageError(f"unknown page id {page_id}")
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise StorageError(f"short read on page {page_id}")
        return SlottedPage.from_bytes(data, secure=self.secure)

    def write_page(self, page_id: int, page: SlottedPage) -> None:
        if not 0 <= page_id < self._page_count:
            raise StorageError(f"unknown page id {page_id}")
        self._file.seek(page_id * self.page_size)
        self._file.write(page.to_bytes())

    def num_pages(self) -> int:
        return self._page_count

    def sync(self) -> None:
        """Make every written page durable.

        I/O errors — real or injected — surface as :class:`DurabilityError`.
        A failed sync is safe for the heap: pages are only an optimization
        over the WAL (recovery redoes committed work from the log), so the
        engine flips read-only and the reopened database rebuilds any page
        whose bytes never made it down.
        """
        event = self.faults.fire("pager.sync") if self.faults else None
        try:
            if event is not None and event.kind == "enospc":
                raise OSError(errno.ENOSPC,
                              "injected: no space left on device")
            self._file.flush()
            if event is not None and event.kind == "fsync":
                raise OSError(errno.EIO, "injected: fsync failed")
            os.fsync(self._file.fileno())
        except OSError as exc:
            raise DurabilityError(f"pager sync failed: {exc}") from exc

    def close(self) -> None:
        try:
            self._file.flush()
        finally:
            self._file.close()


def open_pager(path: Optional[str] = None, page_size: int = DEFAULT_PAGE_SIZE,
               secure: bool = True, faults: Optional[FaultPlan] = None) -> Pager:
    """Open a :class:`FilePager` when ``path`` is given, else a :class:`MemoryPager`."""
    if path is None or path == ":memory:":
        return MemoryPager(page_size=page_size, secure=secure)
    return FilePager(path, page_size=page_size, secure=secure, faults=faults)


__all__ = ["Pager", "MemoryPager", "FilePager", "open_pager"]
