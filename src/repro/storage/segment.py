"""Columnar segments: an SoA mirror of a table's heap for vectorized execution.

The heap (``degradable_store.TableStore``) stays the single authoritative,
durable copy of every row — irreversibility is still enforced by rewriting
heap pages and scrubbing the log.  A :class:`SegmentSet` is an *acceleration
structure* layered on top: the same rows held column-wise (structure of
arrays) in fixed-size segments of :data:`SEGMENT_ROWS` rows, with

* one **value vector** per column (already-decoded Python values, so scans
  pay zero record decode),
* one **accuracy-level vector** per degradable column, kept *separate* from
  the payload vector — a degradation wave touches the level vector and the
  affected value vector of a chunk, nothing else, and
* per-segment **zone maps** (min/max under the engine's total value order
  plus a missing-value count) that let scans skip whole segments.

Sentinels (``SUPPRESSED`` / ``REMOVED`` / ``NULL``) are stored in the vectors
by identity — they round-trip through a segment untouched, and zone maps
count them as missing instead of folding them into min/max (a comparison
predicate can never match a missing value, so a segment whose column is all
missing is provably empty for that predicate).

Maintenance is O(1) per mutation: the store calls the ``on_*`` hooks from
every code path that changes a row (insert, stable update, degradation,
removal, recovery restore).  Deleted rows leave a dead slot (``live`` flag
cleared) until the set is rebuilt; zone maps widen monotonically and are
re-tightened only on rebuild.  After a crash the engine rebuilds every
segment set from the recovered heap, so segments never need their own
durability — the WAL's ``SEGMENT_DEGRADE`` records exist to redo the *heap*
effects of a columnar wave chunk, not to persist segments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.schema import TableSchema
from ..core.values import is_missing, sort_key

#: Rows per segment — the batch size vectorized operators work in.
SEGMENT_ROWS = 1024


class ZoneMap:
    """Min/max/missing-count summary of one column within one segment.

    ``low``/``high`` are :func:`sort_key` surrogates (the engine's total
    order), kept alongside the raw values for EXPLAIN/debugging.  Bounds only
    ever widen; removals and in-place narrowing updates leave them
    conservatively wide, which can cost a false "may contain" but never a
    wrong prune.
    """

    __slots__ = ("low", "high", "low_value", "high_value", "missing")

    def __init__(self) -> None:
        self.low: Optional[tuple] = None
        self.high: Optional[tuple] = None
        self.low_value: Any = None
        self.high_value: Any = None
        self.missing = 0

    def observe(self, value: Any) -> None:
        if is_missing(value):
            self.missing += 1
            return
        key = sort_key(value)
        if self.low is None or key < self.low:
            self.low = key
            self.low_value = value
        if self.high is None or key > self.high:
            self.high = key
            self.high_value = value

    def forget_missing(self) -> None:
        if self.missing > 0:
            self.missing -= 1

    # -- pruning ---------------------------------------------------------------

    def may_match_eq(self, key: tuple) -> bool:
        return self.low is not None and self.low <= key <= self.high

    def may_match_range(self, low: Optional[tuple], high: Optional[tuple],
                        include_low: bool, include_high: bool) -> bool:
        """Can any non-missing value fall inside ``[low, high]``?"""
        if self.low is None:
            return False
        if low is not None:
            if self.high < low or (self.high == low and not include_low):
                return False
        if high is not None:
            if self.low > high or (self.low == high and not include_high):
                return False
        return True


@dataclass
class SegmentSetStats:
    """Counters proving the columnar paths actually ran (bench assertions)."""

    inserts: int = 0
    removes: int = 0
    value_changes: int = 0
    #: (segment, column, level) chunks rewritten by columnar waves.
    degrade_chunks: int = 0
    #: Whole segments skipped by zone-map pruning during scans.
    segments_pruned: int = 0
    rebuilds: int = 0


class Segment:
    """One fixed-capacity chunk of rows in column-major layout."""

    __slots__ = ("segment_id", "row_keys", "inserted_at", "live", "live_count",
                 "values", "levels", "zones")

    def __init__(self, segment_id: int, columns: Iterable[str],
                 degradable: Iterable[str]) -> None:
        self.segment_id = segment_id
        self.row_keys: List[int] = []
        self.inserted_at: List[float] = []
        self.live: List[bool] = []
        self.live_count = 0
        self.values: Dict[str, List[Any]] = {name: [] for name in columns}
        self.levels: Dict[str, List[int]] = {name: [] for name in degradable}
        self.zones: Dict[str, ZoneMap] = {name: ZoneMap() for name in self.values}

    def __len__(self) -> int:
        return len(self.row_keys)

    @property
    def full(self) -> bool:
        return len(self.row_keys) >= SEGMENT_ROWS

    def append(self, row_key: int, inserted_at: float,
               values: Dict[str, Any], levels: Dict[str, int]) -> int:
        position = len(self.row_keys)
        self.row_keys.append(row_key)
        self.inserted_at.append(inserted_at)
        self.live.append(True)
        self.live_count += 1
        for name, vector in self.values.items():
            value = values.get(name)
            vector.append(value)
            self.zones[name].observe(value)
        for name, vector in self.levels.items():
            vector.append(levels.get(name, 0))
        return position

    def live_positions(self) -> List[int]:
        if self.live_count == len(self.live):
            return list(range(len(self.live)))
        return [i for i, alive in enumerate(self.live) if alive]


class SegmentSet:
    """All segments of one table plus the row-key → slot directory."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.column_names: Tuple[str, ...] = tuple(schema.column_names())
        self.degradable_names: Tuple[str, ...] = tuple(
            column.name for column in schema.degradable_columns())
        self.segments: List[Segment] = []
        self.stats = SegmentSetStats()
        self._directory: Dict[int, Tuple[Segment, int]] = {}

    def __len__(self) -> int:
        return len(self._directory)

    def __contains__(self, row_key: int) -> bool:
        return row_key in self._directory

    def locate(self, row_key: int) -> Optional[Tuple[Segment, int]]:
        return self._directory.get(row_key)

    # -- maintenance hooks (called by TableStore on every mutation) ------------

    def on_insert(self, row_key: int, inserted_at: float,
                  values: Dict[str, Any], levels: Dict[str, int]) -> None:
        if row_key in self._directory:
            self.on_remove(row_key)
        if not self.segments or self.segments[-1].full:
            self.segments.append(Segment(len(self.segments),
                                         self.column_names,
                                         self.degradable_names))
        segment = self.segments[-1]
        position = segment.append(row_key, inserted_at, values, levels)
        self._directory[row_key] = (segment, position)
        self.stats.inserts += 1

    def on_value_change(self, row_key: int, column: str, value: Any,
                        level: Optional[int] = None) -> None:
        slot = self._directory.get(row_key)
        if slot is None:
            return
        segment, position = slot
        old = segment.values[column][position]
        segment.values[column][position] = value
        zone = segment.zones[column]
        if is_missing(old) and not is_missing(value):
            zone.forget_missing()
        zone.observe(value)
        if level is not None and column in segment.levels:
            segment.levels[column][position] = level
        self.stats.value_changes += 1

    def on_remove(self, row_key: int) -> None:
        slot = self._directory.pop(row_key, None)
        if slot is None:
            return
        segment, position = slot
        if segment.live[position]:
            segment.live[position] = False
            segment.live_count -= 1
        self.stats.removes += 1

    # -- wave support ----------------------------------------------------------

    def group_rows(self, row_keys: Iterable[int]) -> Dict[Segment, List[int]]:
        """Map wave-affected row keys to per-segment position lists, ordered
        by segment — the unit the columnar degradation path rewrites."""
        chunks: Dict[Segment, List[int]] = {}
        for row_key in row_keys:
            slot = self._directory.get(row_key)
            if slot is None:
                continue
            segment, position = slot
            chunks.setdefault(segment, []).append(position)
        return chunks

    # -- rebuild ---------------------------------------------------------------

    def clear(self) -> None:
        self.segments = []
        self._directory = {}

    def rebuild(self, rows: Iterable[Any]) -> None:
        """Repopulate from stored rows (``StoredRow``-shaped objects) — the
        recovery path: segments are derived state, the heap is the truth."""
        self.clear()
        for row in rows:
            self.on_insert(row.row_key, row.inserted_at, row.values, row.levels)
        self.stats.rebuilds += 1


__all__ = ["SEGMENT_ROWS", "Segment", "SegmentSet", "SegmentSetStats", "ZoneMap"]
