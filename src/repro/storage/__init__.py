"""Storage substrate: pages, heaps, buffer pool, WAL, crypto-erasure, table stores."""

from .buffer import BufferPool, BufferStats
from .crypto import KeyStore, KeyStoreStats
from .degradable_store import STRATEGIES, StoredRow, TableStore, TableStoreStats
from .heap import HeapFile, RecordId
from .page import DEFAULT_PAGE_SIZE, SlottedPage
from .pager import FilePager, MemoryPager, Pager, open_pager
from .serialization import decode_record, decode_value, encode_record, encode_value
from .wal import LogRecord, LogRecordType, WALStats, WriteAheadLog

__all__ = [
    "BufferPool", "BufferStats",
    "KeyStore", "KeyStoreStats",
    "TableStore", "StoredRow", "TableStoreStats", "STRATEGIES",
    "HeapFile", "RecordId",
    "SlottedPage", "DEFAULT_PAGE_SIZE",
    "Pager", "MemoryPager", "FilePager", "open_pager",
    "encode_value", "decode_value", "encode_record", "decode_record",
    "WriteAheadLog", "LogRecord", "LogRecordType", "WALStats",
]
