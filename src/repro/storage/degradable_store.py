"""Degradation-aware table storage.

:class:`TableStore` combines the heap file, the write-ahead log and (optionally)
the cryptographic key store into the storage manager of one table.  It is the
layer that makes a degradation step *effective*: after
:meth:`TableStore.degrade` returns, the accurate value is gone from the data
page (physically overwritten or crypto-erased), the log holds no accurate
image of it, and readers observe only the degraded value.

Each degradable attribute of a stored row carries its current **accuracy
level** (0 = collection accuracy, ``scheme.max_level`` = suppressed); the
degradation engine drives levels forward according to the life cycle policy,
while the query layer compares stored levels against the accuracy demanded by
the query's purpose.

Two non-recoverability strategies are supported and benchmarked against each
other (experiment C2):

* ``"rewrite"`` — the record is rewritten in place with the degraded value and
  the page's secure reclamation zeroes the stale bytes;
* ``"crypto"`` — degradable values are stored encrypted under a per
  ``(row, column, level)`` key; a degradation step re-encrypts the degraded
  value under a fresh key and destroys the old one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.errors import (
    KeyDestroyedError,
    PolicyError,
    RecordNotFoundError,
    StorageError,
)
from ..core.generalization import GeneralizationScheme
from ..core.schema import TableSchema
from ..core.values import NULL, REMOVED, SUPPRESSED
from .buffer import BufferPool
from .crypto import KeyStore
from .heap import HeapFile, RecordId
from .segment import SegmentSet
from .serialization import (
    decode_value,
    encode_record,
    encode_value,
    record_field_count,
    skip_values,
)
from .wal import LogRecordType, WriteAheadLog, encode_segment_degrade

#: Strategies for making degradation non-recoverable.
STRATEGIES = ("rewrite", "crypto")


@dataclass
class StoredRow:
    """A materialized row as seen by the execution layer (plaintext values)."""

    row_key: int
    values: Dict[str, Any]
    levels: Dict[str, int]
    inserted_at: float

    def value(self, column: str) -> Any:
        return self.values[column.lower()]

    def level(self, column: str) -> int:
        return self.levels[column.lower()]


@dataclass
class DegradeOutcome:
    """What one bulk degradation step did (input to index maintenance)."""

    row_key: int
    column: str
    from_level: int
    to_level: int
    old_value: Any
    new_value: Any
    #: False when the step was a pure state advance (level already reached).
    changed: bool = True


@dataclass
class TableStoreStats:
    inserts: int = 0
    reads: int = 0
    degrade_steps: int = 0
    removals: int = 0
    deletes: int = 0
    stable_updates: int = 0
    relocations: int = 0


class TableStore:
    """Storage manager of one table with degradable attributes."""

    def __init__(self, schema: TableSchema, buffer_pool: BufferPool,
                 wal: WriteAheadLog, keystore: Optional[KeyStore] = None,
                 strategy: str = "rewrite") -> None:
        if strategy not in STRATEGIES:
            raise StorageError(f"unknown non-recoverability strategy {strategy!r}")
        if strategy == "crypto" and keystore is None:
            keystore = KeyStore()
        self.schema = schema
        self.strategy = strategy
        self.buffer_pool = buffer_pool
        self.wal = wal
        self.keystore = keystore
        self.heap = HeapFile(buffer_pool, name=schema.name,
                             on_allocate=self._log_page_allocation)
        self.stats = TableStoreStats()
        self._degradable = [column.name for column in schema.degradable_columns()]
        self._locations: Dict[int, RecordId] = {}
        self._next_row_key = 1
        #: Memoized per column-subset: which fields to decode vs. byte-skip.
        self._decode_plans: Dict[Optional[frozenset], Tuple] = {}
        #: Optional columnar mirror (see :meth:`columnarize`).  ``None`` keeps
        #: the table purely row-oriented; when attached, every mutation below
        #: maintains the segment vectors in O(1).
        self.segments: Optional[SegmentSet] = None

    def columnarize(self) -> SegmentSet:
        """Attach (or rebuild) the columnar segment mirror of this table.

        The heap remains the authoritative durable copy; the returned
        :class:`~repro.storage.segment.SegmentSet` holds the same rows in
        column-major vectors for vectorized scans and chunked degradation
        waves, and is kept in sync by the mutation hooks from here on.
        """
        segments = SegmentSet(self.schema)
        segments.rebuild(self.scan())
        self.segments = segments
        return segments

    # -- encoding helpers -----------------------------------------------------

    def _encode_row(self, row_key: int, inserted_at: float,
                    levels: Dict[str, int], values: Dict[str, Any]) -> bytes:
        flat: List[Any] = [row_key, float(inserted_at)]
        for column in self._degradable:
            flat.append(int(levels[column]))
        for column in self.schema.columns:
            value = values[column.name]
            if column.degradable and self.strategy == "crypto" and not self._is_sentinel(value):
                level = levels[column.name]
                key_id = (self.schema.name, row_key, column.name, level)
                value = self.keystore.encrypt(key_id, encode_value(value))
            flat.append(value)
        return encode_record(flat)

    def _decode_row(self, payload: bytes,
                    columns: Optional[frozenset] = None) -> StoredRow:
        """Decode a record, optionally materializing only ``columns``.

        The header (row key, timestamp, accuracy levels) is always decoded —
        levels drive the visibility exclusion check regardless of which
        values a query projects.  With a column subset, unreferenced value
        fields are *skipped* byte-wise (no object construction, no UTF-8
        decode, no decryption), so a 2-column query over a 20-column table
        pays for 2 values; the returned :class:`StoredRow` then carries only
        the requested columns in ``values``.
        """
        count, offset = record_field_count(payload)
        expected = 2 + len(self._degradable) + len(self.schema.columns)
        if count != expected:
            raise StorageError(
                f"table {self.schema.name!r}: malformed record with {count} fields "
                f"(expected {expected})"
            )
        raw_key, offset = decode_value(payload, offset)
        row_key = int(raw_key)
        raw_inserted, offset = decode_value(payload, offset)
        inserted_at = float(raw_inserted)
        levels: Dict[str, int] = {}
        for column in self._degradable:
            level, offset = decode_value(payload, offset)
            levels[column] = int(level)
        values: Dict[str, Any] = {}
        entries, verify_tail = self._decode_plan(columns)
        for name, crypto in entries:
            if name is None:
                # A run of skipped fields: hop over the payload bytes in one
                # call without building values (crypto is the run length).
                offset = skip_values(payload, offset, crypto)
                continue
            value, offset = decode_value(payload, offset)
            if crypto and isinstance(value, (bytes, bytearray)):
                key_id = (self.schema.name, row_key, name, levels[name])
                try:
                    plain = self.keystore.decrypt(key_id, bytes(value))
                except KeyDestroyedError:
                    # Fail safe: a destroyed key means the value is, by design,
                    # unrecoverable — readers see it as suppressed.
                    values[name] = SUPPRESSED
                    continue
                decoded, _ = decode_value(plain, 0)
                values[name] = decoded
            else:
                values[name] = value
        if verify_tail and offset != len(payload):
            raise StorageError("trailing bytes after record payload")
        return StoredRow(row_key=row_key, values=values, levels=levels,
                         inserted_at=inserted_at)

    def _decode_plan(self, columns: Optional[frozenset]) -> Tuple[Tuple, bool]:
        """Per column-subset decode/skip schedule: ``(entries, verify_tail)``.

        Entries are ``(column name, crypto?)`` for fields to decode, and
        ``(None, run length)`` for a run of consecutive skipped fields —
        runs are collapsed so a 2-of-20 projection pays one
        :func:`~repro.storage.serialization.skip_values` call per gap, not
        one per column, and the run *after the last decoded column* is
        dropped entirely (nothing downstream needs the offset).  Full
        decodes keep the trailing-bytes integrity check; pruned decodes
        stop early, so ``verify_tail`` is False for them.
        """
        plan = self._decode_plans.get(columns)
        if plan is None:
            crypto = self.strategy == "crypto"
            entries: List[Tuple[Optional[str], Any]] = []
            for column in self.schema.columns:
                if columns is None or column.name in columns:
                    entries.append((column.name, crypto and column.degradable))
                elif entries and entries[-1][0] is None:
                    entries[-1] = (None, entries[-1][1] + 1)
                else:
                    entries.append((None, 1))
            verify_tail = columns is None
            if not verify_tail:
                while entries and entries[-1][0] is None:
                    entries.pop()
            plan = (tuple(entries), verify_tail)
            self._decode_plans[columns] = plan
        return plan

    @staticmethod
    def _is_sentinel(value: Any) -> bool:
        return value is SUPPRESSED or value is REMOVED or value is NULL or value is None

    def _log_page_allocation(self, page_id: int) -> None:
        """Make heap page ownership durable (see ``LogRecordType.PAGE_ALLOC``).

        Degraded rows survive a crash only on their flushed pages — their
        accurate WAL images are scrubbed by design — so the table must be able
        to find its pages again after a reopen.  The record carries the page
        id in the row-key field and no payload, which keeps it exempt from
        scrubbing.
        """
        self.wal.append(LogRecordType.PAGE_ALLOC, 0, table=self.schema.name,
                        row_key=page_id)

    # -- basic operations ----------------------------------------------------

    def insert(self, row: Any, now: float, txn_id: int = 0) -> int:
        """Insert a row (most accurate state) and return its logical row key."""
        values_tuple = self.schema.coerce_row(row)
        values = self.schema.row_dict(values_tuple)
        levels = {column: 0 for column in self._degradable}
        row_key = self._next_row_key
        self._next_row_key += 1
        payload = self._encode_row(row_key, now, levels, values)
        record_id = self.heap.insert(payload)
        self._locations[row_key] = record_id
        self.wal.append(
            LogRecordType.INSERT, txn_id, table=self.schema.name, row_key=row_key,
            after=payload, timestamp=now,
        )
        if self.segments is not None:
            self.segments.on_insert(row_key, now, values, levels)
        self.stats.inserts += 1
        return row_key

    def exists(self, row_key: int) -> bool:
        return row_key in self._locations

    def read(self, row_key: int,
             columns: Optional[frozenset] = None) -> StoredRow:
        record_id = self._location(row_key)
        payload = self.heap.read(record_id)
        self.stats.reads += 1
        return self._decode_row(payload, columns)

    def scan(self, columns: Optional[frozenset] = None) -> Iterator[StoredRow]:
        for row_key in list(self._locations):
            try:
                yield self.read(row_key, columns)
            except RecordNotFoundError:  # pragma: no cover - defensive
                continue

    #: fetch() chunks grow geometrically from this size up to the cap: small
    #: first chunks keep LIMIT-k consumers at O(k) heap reads, large later
    #: chunks amortize the page-locality sort over big fetches.
    _FETCH_CHUNK_START = 8
    _FETCH_CHUNK_MAX = 512

    def fetch(self, row_keys: Iterator[int],
              columns: Optional[frozenset] = None) -> Iterator[StoredRow]:
        """Materialize the rows with the given keys, skipping vanished ones.

        Keys are read in chunks sorted by heap page (the row→page map), so a
        large index fetch sweeps each page's records together instead of
        ping-ponging across the buffer pool; the chunk size starts small and
        doubles, keeping early-exit consumers (``LIMIT k``) at O(k) reads.
        """
        chunk: List[Tuple[RecordId, int]] = []
        limit = self._FETCH_CHUNK_START
        for row_key in row_keys:
            record_id = self._locations.get(row_key)
            if record_id is None:
                continue
            chunk.append((record_id, row_key))
            if len(chunk) >= limit:
                yield from self._read_chunk(chunk, columns)
                chunk = []
                limit = min(limit * 2, self._FETCH_CHUNK_MAX)
        if chunk:
            yield from self._read_chunk(chunk, columns)

    def _read_chunk(self, chunk: List[Tuple[RecordId, int]],
                    columns: Optional[frozenset]) -> Iterator[StoredRow]:
        chunk.sort()
        for _record_id, row_key in chunk:
            # Re-resolve: the row may have vanished or relocated since it was
            # queued (lazy consumers interleave with other work).
            record_id = self._locations.get(row_key)
            if record_id is None:
                continue
            payload = self.heap.read(record_id)
            self.stats.reads += 1
            yield self._decode_row(payload, columns)

    def row_keys(self) -> List[int]:
        return list(self._locations)

    @property
    def row_count(self) -> int:
        return len(self._locations)

    def page_of(self, row_key: int) -> Optional[int]:
        """Heap page currently holding ``row_key`` (the row→page map).

        The batch degradation pipeline uses this to sub-group a table's due
        steps by page so every dirty page is rewritten and flushed once.
        """
        record_id = self._locations.get(row_key)
        return record_id.page_id if record_id is not None else None

    def _location(self, row_key: int) -> RecordId:
        try:
            return self._locations[row_key]
        except KeyError:
            raise RecordNotFoundError(
                f"table {self.schema.name!r}: no row with key {row_key}"
            ) from None

    def _rewrite(self, row_key: int, payload: bytes) -> None:
        record_id = self._location(row_key)
        new_id = self.heap.update(record_id, payload)
        if new_id != record_id:
            self._locations[row_key] = new_id
            self.stats.relocations += 1

    # -- degradation ------------------------------------------------------------

    def degrade(self, row_key: int, column: str, scheme: GeneralizationScheme,
                to_level: int, now: float, txn_id: int = 0) -> StoredRow:
        """Apply one degradation step to ``column`` of ``row_key``.

        The degraded row (as now visible to readers) is returned.  The WAL
        record carries only the degraded after-image, never the accurate
        before-image.
        """
        column = column.lower()
        if column not in self._degradable:
            raise PolicyError(
                f"table {self.schema.name!r}: column {column!r} is not degradable"
            )
        row = self.read(row_key)
        from_level = row.levels[column]
        if to_level < from_level:
            raise PolicyError("degradation is irreversible: cannot decrease the level")
        if to_level == from_level:
            return row
        old_value = row.values[column]
        if self._is_sentinel(old_value):
            # Missing or already-suppressed values carry no information to
            # degrade; only the stored accuracy level advances.
            new_value = old_value
        else:
            new_value = scheme.generalize(old_value, to_level, from_level=from_level)
        new_levels = dict(row.levels)
        new_levels[column] = to_level
        new_values = dict(row.values)
        new_values[column] = new_value
        payload = self._encode_row(row_key, row.inserted_at, new_levels, new_values)
        self._rewrite(row_key, payload)
        if self.strategy == "crypto":
            # Destroy every key of more accurate levels for this column: the
            # accurate and intermediate ciphertexts become unreadable everywhere.
            for level in range(from_level, to_level):
                self.keystore.destroy_key((self.schema.name, row_key, column, level))
        self.wal.append(
            LogRecordType.DEGRADE, txn_id, table=self.schema.name, row_key=row_key,
            attribute=column,
            after=encode_record([to_level]),
            timestamp=now,
        )
        if self.segments is not None:
            self.segments.on_value_change(row_key, column, new_value, to_level)
        # A degradation step is only irreversible once it reached stable storage.
        self.buffer_pool.flush_page(self._locations[row_key].page_id, sync=True)
        if self.strategy == "rewrite":
            # The accurate value also survives in the row images logged by the
            # INSERT (and stable UPDATEs); physically scrub them now that the
            # degraded page is durable.  The crypto strategy does not need this:
            # logged images only ever contain ciphertext whose key is destroyed.
            self.wal.scrub_record(self.schema.name, row_key, now=now)
        self.stats.degrade_steps += 1
        return self._decode_row(payload)

    def degrade_many(self, items: List[Tuple[int, str, GeneralizationScheme, int]],
                     now: float, txn_id: int = 0) -> List[DegradeOutcome]:
        """Apply a batch of degradation steps with coalesced physical I/O.

        ``items`` is a list of ``(row_key, column, scheme, to_level)``; steps
        of the same row are applied against one read/encode/rewrite cycle,
        every dirty page is flushed exactly once, and (for the rewrite
        strategy) the WAL images of all touched rows are scrubbed in a single
        :meth:`WriteAheadLog.scrub_records` pass — one log rewrite for the
        whole batch instead of one per step.  The WAL DEGRADE records of the
        batch are appended here and reach the disk with the caller's single
        durable flush (the enclosing system transaction's commit).

        Returns one :class:`DegradeOutcome` per item, in item order grouped by
        row, carrying the value transition the index layer needs.

        With a columnar mirror attached the wave runs through the segment
        layer instead (:meth:`_degrade_many_columnar`): same outcomes, same
        page-flush/scrub ordering, but the row images come from the segment
        vectors (no heap read, no record decode) and the WAL carries one
        ``SEGMENT_DEGRADE`` record per (segment, column, level) chunk instead
        of one ``DEGRADE`` record per row.
        """
        if self.segments is not None:
            return self._degrade_many_columnar(items, now, txn_id)
        by_row: Dict[int, List[Tuple[int, str, GeneralizationScheme, int]]] = {}
        row_order: List[int] = []
        for item in items:
            row_key = item[0]
            if row_key not in by_row:
                by_row[row_key] = []
                row_order.append(row_key)
            by_row[row_key].append(item)
        outcomes: List[DegradeOutcome] = []
        dirty_pages: List[int] = []
        seen_pages: set = set()
        scrub_rows: List[int] = []
        for row_key in row_order:
            row = self.read(row_key)
            levels = dict(row.levels)
            values = dict(row.values)
            applied: List[DegradeOutcome] = []
            for _row_key, column, scheme, to_level in by_row[row_key]:
                column = column.lower()
                if column not in self._degradable:
                    raise PolicyError(
                        f"table {self.schema.name!r}: column {column!r} is not degradable"
                    )
                from_level = levels[column]
                if to_level < from_level:
                    raise PolicyError(
                        "degradation is irreversible: cannot decrease the level"
                    )
                old_value = values[column]
                if to_level == from_level:
                    outcomes.append(DegradeOutcome(
                        row_key=row_key, column=column, from_level=from_level,
                        to_level=to_level, old_value=old_value,
                        new_value=old_value, changed=False,
                    ))
                    continue
                if self._is_sentinel(old_value):
                    new_value = old_value
                else:
                    new_value = scheme.generalize(old_value, to_level,
                                                  from_level=from_level)
                levels[column] = to_level
                values[column] = new_value
                outcome = DegradeOutcome(
                    row_key=row_key, column=column, from_level=from_level,
                    to_level=to_level, old_value=old_value, new_value=new_value,
                )
                applied.append(outcome)
                outcomes.append(outcome)
            if not applied:
                continue
            payload = self._encode_row(row_key, row.inserted_at, levels, values)
            self._rewrite(row_key, payload)
            for outcome in applied:
                if self.strategy == "crypto":
                    for level in range(outcome.from_level, outcome.to_level):
                        self.keystore.destroy_key(
                            (self.schema.name, row_key, outcome.column, level))
                self.wal.append(
                    LogRecordType.DEGRADE, txn_id, table=self.schema.name,
                    row_key=row_key, attribute=outcome.column,
                    after=encode_record([outcome.to_level]), timestamp=now,
                )
                self.stats.degrade_steps += 1
            page_id = self._locations[row_key].page_id
            if page_id not in seen_pages:
                seen_pages.add(page_id)
                dirty_pages.append(page_id)
            if self.strategy == "rewrite":
                scrub_rows.append(row_key)
        # Irreversibility ordering, as in degrade(): the degraded pages reach
        # stable storage (one sync for the whole batch) before the accurate
        # log images are scrubbed.
        for page_id in dirty_pages:
            self.buffer_pool.flush_page(page_id)
        if dirty_pages:
            self.buffer_pool.sync()
        if scrub_rows:
            self.wal.scrub_records(
                [(self.schema.name, row_key) for row_key in scrub_rows], now=now)
        return outcomes

    def _degrade_many_columnar(
            self, items: List[Tuple[int, str, GeneralizationScheme, int]],
            now: float, txn_id: int = 0) -> List[DegradeOutcome]:
        """Columnar wave path: rewrite level/value vector chunks in one pass.

        Row images are taken from the segment vectors (already-decoded
        plaintext), so the heap is only *written*: per affected row one
        re-encode + in-place rewrite, with the same coalesced page flush, one
        pager sync, and one log-scrub pass as the row path.  The WAL records
        the wave as one ``SEGMENT_DEGRADE`` record per (segment, column,
        target level) chunk — recovery redoes lagging rows from the listed
        row keys exactly like per-row ``DEGRADE`` records.
        """
        segments = self.segments
        assert segments is not None
        by_row: Dict[int, List[Tuple[int, str, GeneralizationScheme, int]]] = {}
        row_order: List[int] = []
        for item in items:
            row_key = item[0]
            if row_key not in by_row:
                by_row[row_key] = []
                row_order.append(row_key)
            by_row[row_key].append(item)
        outcomes: List[DegradeOutcome] = []
        dirty_pages: List[int] = []
        seen_pages: set = set()
        scrub_rows: List[int] = []
        #: (segment id, column, to_level) → affected row keys: the chunks.
        chunks: Dict[Tuple[int, str, int], List[int]] = {}
        for row_key in row_order:
            slot = segments.locate(row_key)
            if slot is None:
                # Not mirrored (defensive): take the row-at-a-time heap path.
                row = self.read(row_key)
                segment, position = None, -1
                levels = dict(row.levels)
                values = dict(row.values)
                inserted_at = row.inserted_at
            else:
                segment, position = slot
                levels = {name: vector[position]
                          for name, vector in segment.levels.items()}
                values = {name: vector[position]
                          for name, vector in segment.values.items()}
                inserted_at = segment.inserted_at[position]
            applied: List[DegradeOutcome] = []
            for _row_key, column, scheme, to_level in by_row[row_key]:
                column = column.lower()
                if column not in self._degradable:
                    raise PolicyError(
                        f"table {self.schema.name!r}: column {column!r} is not degradable"
                    )
                from_level = levels[column]
                if to_level < from_level:
                    raise PolicyError(
                        "degradation is irreversible: cannot decrease the level"
                    )
                old_value = values[column]
                if to_level == from_level:
                    outcomes.append(DegradeOutcome(
                        row_key=row_key, column=column, from_level=from_level,
                        to_level=to_level, old_value=old_value,
                        new_value=old_value, changed=False,
                    ))
                    continue
                if self._is_sentinel(old_value):
                    new_value = old_value
                else:
                    new_value = scheme.generalize(old_value, to_level,
                                                  from_level=from_level)
                levels[column] = to_level
                values[column] = new_value
                outcome = DegradeOutcome(
                    row_key=row_key, column=column, from_level=from_level,
                    to_level=to_level, old_value=old_value, new_value=new_value,
                )
                applied.append(outcome)
                outcomes.append(outcome)
            if not applied:
                continue
            payload = self._encode_row(row_key, inserted_at, levels, values)
            self._rewrite(row_key, payload)
            for outcome in applied:
                segments.on_value_change(row_key, outcome.column,
                                         outcome.new_value, outcome.to_level)
                if self.strategy == "crypto":
                    for level in range(outcome.from_level, outcome.to_level):
                        self.keystore.destroy_key(
                            (self.schema.name, row_key, outcome.column, level))
                if segment is not None:
                    chunks.setdefault(
                        (segment.segment_id, outcome.column, outcome.to_level),
                        []).append(row_key)
                else:
                    self.wal.append(
                        LogRecordType.DEGRADE, txn_id, table=self.schema.name,
                        row_key=row_key, attribute=outcome.column,
                        after=encode_record([outcome.to_level]), timestamp=now,
                    )
                self.stats.degrade_steps += 1
            page_id = self._locations[row_key].page_id
            if page_id not in seen_pages:
                seen_pages.add(page_id)
                dirty_pages.append(page_id)
            if self.strategy == "rewrite":
                scrub_rows.append(row_key)
        for (segment_id, column, to_level), row_keys in chunks.items():
            self.wal.append(
                LogRecordType.SEGMENT_DEGRADE, txn_id, table=self.schema.name,
                row_key=segment_id, attribute=column,
                after=encode_segment_degrade(to_level, row_keys), timestamp=now,
            )
            segments.stats.degrade_chunks += 1
        # Same irreversibility ordering as the row path: degraded pages reach
        # stable storage before the accurate log images are scrubbed.
        for page_id in dirty_pages:
            self.buffer_pool.flush_page(page_id)
        if dirty_pages:
            self.buffer_pool.sync()
        if scrub_rows:
            self.wal.scrub_records(
                [(self.schema.name, row_key) for row_key in scrub_rows], now=now)
        return outcomes

    def remove(self, row_key: int, now: float, txn_id: int = 0,
               scrub_log: bool = True) -> None:
        """Final removal at the end of the life cycle (or explicit delete).

        Physically deletes the record (secure page reclamation), destroys every
        crypto key of the row and scrubs its images from the WAL.
        """
        record_id = self._location(row_key)
        self.heap.delete(record_id)
        del self._locations[row_key]
        if self.keystore is not None:
            self.keystore.destroy_matching((self.schema.name, row_key))
        self.wal.append(
            LogRecordType.REMOVE, txn_id, table=self.schema.name, row_key=row_key,
            timestamp=now,
        )
        if self.segments is not None:
            self.segments.on_remove(row_key)
        if scrub_log:
            self.wal.scrub_record(self.schema.name, row_key, now=now)
        self.buffer_pool.flush_page(record_id.page_id, sync=True)
        self.stats.removals += 1

    def remove_many(self, row_keys: List[int], now: float, txn_id: int = 0) -> int:
        """Bulk :meth:`remove`: one scrub pass and one flush per touched page.

        Used by the engine when a degradation batch drives many tuples into
        their final state at once; rows that vanished meanwhile are skipped.
        Returns the number of rows removed.
        """
        removed: List[int] = []
        dirty_pages: List[int] = []
        seen_pages: set = set()
        for row_key in row_keys:
            record_id = self._locations.get(row_key)
            if record_id is None:
                continue
            self.heap.delete(record_id)
            del self._locations[row_key]
            if self.keystore is not None:
                self.keystore.destroy_matching((self.schema.name, row_key))
            self.wal.append(
                LogRecordType.REMOVE, txn_id, table=self.schema.name,
                row_key=row_key, timestamp=now,
            )
            if self.segments is not None:
                self.segments.on_remove(row_key)
            if record_id.page_id not in seen_pages:
                seen_pages.add(record_id.page_id)
                dirty_pages.append(record_id.page_id)
            removed.append(row_key)
            self.stats.removals += 1
        if removed:
            self.wal.scrub_records(
                [(self.schema.name, row_key) for row_key in removed], now=now)
        for page_id in dirty_pages:
            self.buffer_pool.flush_page(page_id)
        if dirty_pages:
            self.buffer_pool.sync()
        return len(removed)

    def replay_remove(self, row_key: int, now: float,
                      scrub_log: bool = False) -> None:
        """Physically remove a row during recovery replay.

        Unlike :meth:`remove` this appends no REMOVE record (the log record
        being replayed already proves the removal) and defers page flushing
        to recovery's final :meth:`flush` — a redo pass over a mass-removal
        wave must not pay one fsync and one log append per row.
        ``scrub_log=True`` still scrubs the row's log images (needed when
        undoing a loser insert).
        """
        record_id = self._location(row_key)
        self.heap.delete(record_id)
        del self._locations[row_key]
        if self.keystore is not None:
            self.keystore.destroy_matching((self.schema.name, row_key))
        if self.segments is not None:
            self.segments.on_remove(row_key)
        if scrub_log:
            self.wal.scrub_record(self.schema.name, row_key, now=now)
        self.stats.removals += 1

    def delete(self, row_key: int, now: float, txn_id: int = 0) -> None:
        """Explicit user delete — same non-recoverability guarantees as removal."""
        self.remove(row_key, now, txn_id=txn_id, scrub_log=True)
        self.stats.deletes += 1
        self.stats.removals -= 1

    def update_stable(self, row_key: int, column: str, value: Any,
                      now: float, txn_id: int = 0) -> StoredRow:
        """Update a stable attribute (degradable attributes are immutable)."""
        column = column.lower()
        column_def = self.schema.column(column)
        if column_def.degradable:
            raise PolicyError(
                f"table {self.schema.name!r}: degradable column {column!r} cannot be "
                "updated after the tuple creation has been committed"
            )
        row = self.read(row_key)
        before_payload = self._encode_row(row.row_key, row.inserted_at, row.levels, row.values)
        new_values = dict(row.values)
        new_values[column] = column_def.coerce(value)
        payload = self._encode_row(row_key, row.inserted_at, row.levels, new_values)
        self._rewrite(row_key, payload)
        self.wal.append(
            LogRecordType.UPDATE, txn_id, table=self.schema.name, row_key=row_key,
            attribute=column, before=before_payload, after=payload, timestamp=now,
        )
        if self.segments is not None:
            self.segments.on_value_change(row_key, column, new_values[column])
        self.stats.stable_updates += 1
        return self._decode_row(payload)

    # -- maintenance / recovery / forensics -----------------------------------------

    def flush(self) -> None:
        self.heap.flush()
        self.wal.flush()

    def compact(self) -> None:
        self.heap.compact()

    def raw_image(self) -> bytes:
        """Raw bytes of the heap pages and the log (forensic scanning input)."""
        return self.heap.raw_image() + self.wal.raw_image()

    def forensic_image(self) -> bytes:
        """Like :meth:`raw_image` with the WAL's catalog documents redacted —
        they hold domain vocabulary (schema), not tuple data; see
        :meth:`WriteAheadLog.forensic_image`."""
        return self.heap.raw_image() + self.wal.forensic_image()

    def restore_row(self, payload: bytes) -> int:
        """Write a logged row image back into the store (recovery redo/undo).

        The payload must have been produced by :meth:`_encode_row` (it is the
        before/after image carried by INSERT/UPDATE log records).  Returns the
        row key.  Existing rows are overwritten in place; missing rows are
        re-inserted at a fresh physical location.
        """
        row = self._decode_row(payload)
        if row.row_key in self._locations:
            self._rewrite(row.row_key, payload)
        else:
            record_id = self.heap.insert(payload)
            self._locations[row.row_key] = record_id
        if self.segments is not None:
            # on_insert replaces any existing slot, so both branches above
            # land the restored image in the segment vectors.
            self.segments.on_insert(row.row_key, row.inserted_at,
                                    row.values, row.levels)
        self._next_row_key = max(self._next_row_key, row.row_key + 1)
        return row.row_key

    def reserve_row_keys_after(self, row_key: int) -> None:
        """Never hand out a key at or below ``row_key``.

        Recovery calls this with the highest key the WAL mentions for this
        table: :meth:`rebuild_locations` only sees *live* rows, so a key
        freed by a removal would otherwise be reused by the next insert —
        and the old incarnation's surviving REMOVE records would delete the
        new row on a later recovery (the row-key analogue of
        ``TransactionManager.resume_after``).
        """
        self._next_row_key = max(self._next_row_key, int(row_key) + 1)

    def rebuild_locations(self) -> None:
        """Rebuild the row-key → record-id map by scanning the heap (recovery).

        An attached columnar mirror is rebuilt in the same decode pass —
        segments are derived state and must come back from the recovered
        heap, never from their own (non-durable) vectors.
        """
        self._locations.clear()
        segments = self.segments
        if segments is not None:
            segments.clear()
        max_key = 0
        for record_id, payload in self.heap.scan():
            row = self._decode_row(payload)
            self._locations[row.row_key] = record_id
            if segments is not None:
                segments.on_insert(row.row_key, row.inserted_at,
                                   row.values, row.levels)
            max_key = max(max_key, row.row_key)
        if segments is not None:
            segments.stats.rebuilds += 1
        self._next_row_key = max_key + 1


__all__ = ["TableStore", "StoredRow", "DegradeOutcome", "TableStoreStats",
           "STRATEGIES"]
