"""Cryptographic erasure for degradable values.

The paper requires that, once a degradation step has run, "the accurate state
cannot be recovered by anyone after this period, not even by the server".
Physically overwriting every copy (data store, indexes, log) is one way; the
classic alternative is *cryptographic erasure*: store the accurate value
encrypted under a key dedicated to its (record, attribute, state), and destroy
the key when the step fires — every remaining ciphertext copy instantly
becomes unreadable.

The :class:`KeyStore` implements that scheme with a stdlib-only stream cipher
(SHA-256 in counter mode).  This is a stand-in for AES-CTR: the point of the
reproduction is the *key lifecycle*, not cryptographic strength, and the
substitution is documented in DESIGN.md.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..core.errors import CryptoError, KeyDestroyedError

#: Key identifiers are opaque tuples, typically ``(table, row_key, column, state)``.
KeyId = Tuple


@dataclass
class KeyStoreStats:
    keys_created: int = 0
    keys_destroyed: int = 0
    encryptions: int = 0
    decryptions: int = 0


class KeyStore:
    """Per-degradation-step key management with irreversible destruction."""

    def __init__(self, key_size: int = 32, deterministic_seed: Optional[bytes] = None) -> None:
        self.key_size = key_size
        self._keys: Dict[KeyId, bytes] = {}
        self._destroyed: Set[KeyId] = set()
        self._seed = deterministic_seed
        self._counter = 0
        self.stats = KeyStoreStats()

    # -- key lifecycle -------------------------------------------------------

    def create_key(self, key_id: KeyId) -> bytes:
        """Create (or return the existing) key for ``key_id``."""
        if key_id in self._destroyed:
            raise KeyDestroyedError(f"key {key_id!r} was destroyed and cannot be recreated")
        existing = self._keys.get(key_id)
        if existing is not None:
            return existing
        if self._seed is not None:
            self._counter += 1
            material = hmac.new(
                self._seed, repr(key_id).encode("utf-8") + struct.pack("<Q", self._counter),
                hashlib.sha256,
            ).digest()
            key = material[: self.key_size]
        else:
            key = os.urandom(self.key_size)
        self._keys[key_id] = key
        self.stats.keys_created += 1
        return key

    def has_key(self, key_id: KeyId) -> bool:
        return key_id in self._keys

    def is_destroyed(self, key_id: KeyId) -> bool:
        return key_id in self._destroyed

    def destroy_key(self, key_id: KeyId) -> bool:
        """Destroy the key irrecoverably.  Returns True if a key existed."""
        key = self._keys.pop(key_id, None)
        self._destroyed.add(key_id)
        if key is None:
            return False
        self.stats.keys_destroyed += 1
        return True

    def destroy_matching(self, prefix: Tuple) -> int:
        """Destroy every key whose id starts with ``prefix`` (e.g. all keys of a row)."""
        victims = [key_id for key_id in self._keys if key_id[: len(prefix)] == prefix]
        for key_id in victims:
            self.destroy_key(key_id)
        return len(victims)

    @property
    def live_key_count(self) -> int:
        return len(self._keys)

    # -- encryption ----------------------------------------------------------

    def _keystream(self, key: bytes, nonce: bytes, length: int) -> bytes:
        blocks = []
        counter = 0
        while sum(len(b) for b in blocks) < length:
            blocks.append(hashlib.sha256(key + nonce + struct.pack("<Q", counter)).digest())
            counter += 1
        return b"".join(blocks)[:length]

    def encrypt(self, key_id: KeyId, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext`` under the key for ``key_id`` (created on demand)."""
        key = self.create_key(key_id)
        nonce = os.urandom(12) if self._seed is None else hashlib.sha256(
            key + struct.pack("<Q", self.stats.encryptions)
        ).digest()[:12]
        stream = self._keystream(key, nonce, len(plaintext))
        ciphertext = bytes(a ^ b for a, b in zip(plaintext, stream))
        self.stats.encryptions += 1
        return nonce + ciphertext

    def decrypt(self, key_id: KeyId, blob: bytes) -> bytes:
        """Decrypt ``blob``; raises :class:`KeyDestroyedError` after erasure."""
        if key_id in self._destroyed:
            raise KeyDestroyedError(
                f"key {key_id!r} was destroyed: the accurate value is unrecoverable"
            )
        key = self._keys.get(key_id)
        if key is None:
            raise CryptoError(f"no key for {key_id!r}")
        if len(blob) < 12:
            raise CryptoError("ciphertext too short")
        nonce, ciphertext = blob[:12], blob[12:]
        stream = self._keystream(key, nonce, len(ciphertext))
        self.stats.decryptions += 1
        return bytes(a ^ b for a, b in zip(ciphertext, stream))


__all__ = ["KeyStore", "KeyStoreStats", "KeyId"]
