"""``repro.api`` — the PEP 249 (DB-API 2.0) driver surface.

>>> import repro
>>> conn = repro.connect()
>>> cur = conn.cursor()
>>> cur.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")   # doctest: +ELLIPSIS
<repro.api.connection.Cursor object at ...>
>>> cur.executemany("INSERT INTO t VALUES (?, ?)", [(1, 'a'), (2, 'b')]).rowcount
2
>>> conn.commit()
>>> cur.execute("SELECT name FROM t WHERE id = ?", (2,)).fetchone()
('b',)
>>> conn.close()

The module exposes the standard globals (``apilevel``, ``threadsafety``,
``paramstyle``) and the PEP 249 exception hierarchy, which is woven into the
library's own :class:`~repro.core.errors.InstantDBError` subsystem hierarchy.
"""

from ..core.errors import (
    DatabaseError,
    DataError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    Warning,
)
from .connection import (
    Connection,
    Cursor,
    apilevel,
    connect,
    paramstyle,
    threadsafety,
)

__all__ = [
    "connect", "Connection", "Cursor",
    "apilevel", "threadsafety", "paramstyle",
    "Warning", "Error", "InterfaceError", "DatabaseError", "DataError",
    "OperationalError", "IntegrityError", "InternalError",
    "ProgrammingError", "NotSupportedError",
]
