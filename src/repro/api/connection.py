"""PEP 249 (DB-API 2.0) Connection and Cursor over the InstantDB engine.

The driver layers the standard connect/cursor/transaction protocol on top of
:class:`~repro.engine.database.InstantDB`:

* a :class:`Connection` owns (at most) one open engine transaction at a time,
  begun lazily by the first statement and ended by :meth:`Connection.commit`
  or :meth:`Connection.rollback` — the PEP 249 implicit-transaction model;
* a connection is *purpose-scoped*: the paper's query purposes (which decide
  the accuracy level degradable columns are observed at) default from the
  connection and can be overridden per statement;
* a :class:`Cursor` executes statements with qmark (``?``) parameter binding
  through the engine's prepared-statement cache, so ``executemany`` parses
  and plans once, binds N times, and commits once.
"""

from __future__ import annotations

import weakref
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.errors import InterfaceError, NotSupportedError, ProgrammingError
from ..core.policy import Purpose
from ..engine.database import InstantDB
from ..query import ast_nodes as ast
from ..query.executor import QueryResult
from ..query.operators import StreamingResult
from ..txn.transaction import Transaction, TransactionState

#: PEP 249 module globals (re-exported by :mod:`repro.api` and :mod:`repro`).
apilevel = "2.0"
threadsafety = 1          # threads may share the module, but not connections
paramstyle = "qmark"

PurposeSpec = Union[None, str, Purpose]


def connect(data_dir: Optional[str] = None, *,
            engine: Optional[InstantDB] = None,
            purpose: PurposeSpec = None,
            **engine_kwargs: Any) -> "Connection":
    """Open a PEP 249 connection to an InstantDB engine.

    ``connect()`` creates a fresh in-memory engine; ``connect("/path")``
    persists pages and WAL under that directory.  Pass ``engine=`` to wrap an
    already-configured :class:`InstantDB` (domains and policies registered
    through its Python API) — the connection then does *not* close the engine
    when it is closed.  ``purpose`` sets the connection's default query
    purpose; any :class:`InstantDB` constructor keyword is forwarded.
    """
    if engine is not None and (data_dir is not None or engine_kwargs):
        raise InterfaceError("pass either engine= or engine constructor "
                             "arguments, not both")
    owns_engine = engine is None
    if engine is None:
        engine = InstantDB(data_dir=data_dir, **engine_kwargs)
    return Connection(engine, purpose=purpose, owns_engine=owns_engine)


class Connection:
    """A PEP 249 connection owning one implicit engine transaction."""

    def __init__(self, engine: InstantDB, purpose: PurposeSpec = None,
                 owns_engine: bool = True) -> None:
        self._engine = engine
        self._purpose = purpose
        self._owns_engine = owns_engine
        self._txn: Optional[Transaction] = None
        self._closed = False
        self._cursors: "weakref.WeakSet[Cursor]" = weakref.WeakSet()

    # -- engine access -------------------------------------------------------

    @property
    def engine(self) -> InstantDB:
        """The underlying engine, for non-SQL surface (domains, clock, ...)."""
        return self._engine

    @property
    def purpose(self) -> PurposeSpec:
        return self._purpose

    def set_purpose(self, purpose: PurposeSpec) -> None:
        """Change the connection's default query purpose."""
        self._purpose = purpose

    # -- transaction protocol ------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def _transaction(self) -> Transaction:
        """The connection's open transaction, begun lazily."""
        self._check_open()
        self._prune_dead_txn()
        if self._txn is None:
            self._txn = self._engine.begin()
        return self._txn

    def _prune_dead_txn(self) -> None:
        # The engine aborts the active transaction itself on lock conflicts
        # and deadlocks; drop our reference so the next statement starts fresh.
        if self._txn is not None and self._txn.state is not TransactionState.ACTIVE:
            self._txn = None

    @property
    def in_transaction(self) -> bool:
        self._prune_dead_txn()
        return self._txn is not None

    def _settle_streams(self) -> None:
        """Materialize every cursor's pending stream before locks are released.

        A streamed result set is computed under the transaction's read locks;
        once commit/rollback releases them, other transactions may write the
        scanned tables, so draining lazily afterwards could observe their
        uncommitted state.  Settling here gives partially-fetched cursors the
        same snapshot the old materialize-at-execute cursor had.
        """
        for cursor in list(self._cursors):
            cursor._materialize_stream()

    def commit(self) -> None:
        """Commit the open transaction (no-op when nothing is pending)."""
        self._check_open()
        self._prune_dead_txn()
        if self._txn is not None:
            self._settle_streams()
            self._engine.commit(self._txn)
            self._txn = None

    def rollback(self) -> None:
        """Roll back the open transaction (no-op when nothing is pending)."""
        self._check_open()
        self._prune_dead_txn()
        if self._txn is not None:
            self._settle_streams()
            self._engine.rollback(self._txn)
            self._txn = None

    def close(self) -> None:
        """Roll back any pending transaction and close the connection.

        When the connection created its engine (plain ``connect(...)``), the
        engine is checkpointed and closed too; a connection wrapping a caller
        supplied ``engine=`` leaves it running.
        """
        if self._closed:
            return
        try:
            self.rollback()
        finally:
            self._closed = True
            if self._owns_engine:
                self._engine.close()

    def __enter__(self) -> "Connection":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None:
                self.commit()
            else:
                self.rollback()
        finally:
            self.close()

    # -- cursors -------------------------------------------------------------

    def cursor(self) -> "Cursor":
        self._check_open()
        cursor = Cursor(self)
        self._cursors.add(cursor)
        return cursor

    def execute(self, sql: str, params: Sequence[Any] = (), *,
                purpose: PurposeSpec = None) -> "Cursor":
        """Shortcut: create a cursor and execute one statement on it."""
        cursor = self.cursor()
        return cursor.execute(sql, params, purpose=purpose)

    def executemany(self, sql: str,
                    seq_of_params: Iterable[Sequence[Any]]) -> "Cursor":
        """Shortcut: create a cursor and run a batched execution on it."""
        cursor = self.cursor()
        return cursor.executemany(sql, seq_of_params)


class Cursor:
    """A PEP 249 cursor: statement execution plus result-set traversal."""

    def __init__(self, connection: Connection) -> None:
        self.connection = connection
        self.arraysize = 1
        self._closed = False
        self._reset()

    def _reset(self) -> None:
        self.description: Optional[List[Tuple]] = None
        self.rowcount: int = -1
        self.lastrowid: Optional[int] = None
        self._rows: List[Tuple[Any, ...]] = []
        self._position = 0
        self._has_result_set = False
        self._stream: Optional[Iterator[Tuple[Any, ...]]] = None

    def _check(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self.connection._check_open()

    # -- execution -----------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = (), *,
                purpose: PurposeSpec = None) -> "Cursor":
        """Execute one statement, binding qmark (``?``) parameters.

        Runs inside the connection's implicit transaction; remember to
        :meth:`Connection.commit`.  Returns the cursor itself so calls chain
        (``for row in cur.execute(...)``).  SELECTs stream: rows flow out of
        the engine's operator pipeline as they are fetched, so
        ``fetchone`` after a ``LIMIT``-free query over a large table pays
        only for the rows actually pulled.
        """
        self._check()
        engine = self.connection._engine
        result = engine.execute(
            sql, purpose=self._resolve_purpose(purpose),
            txn=self.connection._transaction(), params=params, stream=True,
        )
        self._ingest(result)
        return self

    def executemany(self, sql: str,
                    seq_of_params: Iterable[Sequence[Any]]) -> "Cursor":
        """Execute ``sql`` once per parameter sequence (DML only).

        The statement is prepared once and bound N times, all inside the
        connection's single open transaction — the batch fast path.
        """
        self._check()
        engine = self.connection._engine
        prepared = engine.prepare(sql)
        if isinstance(prepared.statement, (ast.Select, ast.Explain)):
            raise NotSupportedError("executemany() cannot produce result sets; "
                                    "use execute() for queries")
        total = engine.executemany(sql, seq_of_params,
                                   txn=self.connection._transaction())
        self._reset()
        self.rowcount = total
        return self

    def _resolve_purpose(self, purpose: PurposeSpec) -> PurposeSpec:
        return purpose if purpose is not None else self.connection._purpose

    def _ingest(self, result: Any) -> None:
        self._reset()
        if isinstance(result, StreamingResult):
            self.description = [
                (name, None, None, None, None, None, None)
                for name in result.columns
            ]
            self._stream = iter(result)
            self._has_result_set = True
        elif isinstance(result, QueryResult):
            self.description = [
                (name, None, None, None, None, None, None)
                for name in result.columns
            ]
            self._rows = list(result.rows)
            self._has_result_set = True
        elif isinstance(result, int):
            self.rowcount = result

    # -- result-set traversal --------------------------------------------------

    def _materialize_stream(self) -> None:
        """Drain a pending stream into the row buffer (end-of-transaction)."""
        if self._stream is None:
            return
        self._rows = list(self._stream)
        self._position = 0
        self._stream = None

    def _require_result_set(self) -> None:
        if not self._has_result_set:
            raise ProgrammingError("no result set: the previous statement was "
                                   "not a query (or nothing was executed)")

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        self._check()
        self._require_result_set()
        if self._stream is not None:
            return next(self._stream, None)
        if self._position >= len(self._rows):
            return None
        row = self._rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple[Any, ...]]:
        self._check()
        self._require_result_set()
        if size is None:
            size = self.arraysize
        if self._stream is not None:
            rows: List[Tuple[Any, ...]] = []
            for _ in range(size):
                row = next(self._stream, None)
                if row is None:
                    break
                rows.append(row)
            return rows
        rows = self._rows[self._position:self._position + size]
        self._position += len(rows)
        return rows

    def fetchall(self) -> List[Tuple[Any, ...]]:
        self._check()
        self._require_result_set()
        if self._stream is not None:
            rows = list(self._stream)
            return rows
        rows = self._rows[self._position:]
        self._position = len(self._rows)
        return rows

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return self

    def __next__(self) -> Tuple[Any, ...]:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    # -- PEP 249 no-ops --------------------------------------------------------

    def setinputsizes(self, sizes: Sequence[Any]) -> None:
        """PEP 249 mandated no-op."""

    def setoutputsize(self, size: int, column: Optional[int] = None) -> None:
        """PEP 249 mandated no-op."""

    def close(self) -> None:
        self._closed = True
        self._rows = []
        self._stream = None

    def __enter__(self) -> "Cursor":
        self._check()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


__all__ = ["connect", "Connection", "Cursor", "apilevel", "threadsafety",
           "paramstyle"]
