"""DDL handling: translating parsed definitions into schemas, policies, indexes."""

from __future__ import annotations

from typing import Dict, Optional

from ..core.errors import CatalogError, SchemaError
from ..core.generalization import GeneralizationScheme
from ..core.policy import PolicyRegistry, TablePolicy
from ..core.schema import Column, TableSchema
from ..index.base import Index
from ..index.bitmap import BitmapIndex
from ..index.btree import BPlusTreeIndex
from ..index.gt_index import GTIndex
from ..index.hashindex import HashIndex
from ..query import ast_nodes as ast

#: Index methods accepted by ``CREATE INDEX ... USING <method>``.
INDEX_METHODS = ("btree", "hash", "bitmap", "gt")


def build_schema(statement: ast.CreateTable, registry: PolicyRegistry) -> TableSchema:
    """Build a :class:`TableSchema` from a parsed ``CREATE TABLE``."""
    columns = []
    for definition in statement.columns:
        domain = definition.domain
        if definition.degradable:
            if domain is None:
                # Default: a domain named after the column.
                domain = definition.name
            if not registry.has_domain(domain):
                raise CatalogError(
                    f"column {definition.name!r}: unknown generalization domain {domain!r} "
                    "(register it before creating the table)"
                )
        columns.append(Column(
            name=definition.name,
            value_type=definition.type_name,
            degradable=definition.degradable,
            domain=domain,
            policy=definition.policy,
            nullable=not definition.not_null and not definition.primary_key,
            primary_key=definition.primary_key,
        ))
    return TableSchema(statement.table, columns)


def build_table_policy(schema: TableSchema, registry: PolicyRegistry,
                       remove_on_final: bool = True) -> Optional[TablePolicy]:
    """Build the :class:`TablePolicy` of a schema from registered LCPs.

    Every degradable column must name a registered policy (or have one
    registered under ``<domain>_lcp``).
    """
    degradable = schema.degradable_columns()
    if not degradable:
        return None
    table_policy = TablePolicy(table=schema.name, remove_on_final=remove_on_final)
    for column in degradable:
        policy_name = column.policy or f"{column.domain}_lcp"
        if not registry.has_policy(policy_name):
            raise CatalogError(
                f"column {schema.name}.{column.name}: unknown life cycle policy "
                f"{policy_name!r} (register it before creating the table)"
            )
        policy = registry.policy(policy_name)
        scheme = registry.domain(column.domain)
        if policy.scheme is not scheme and policy.scheme.name != scheme.name:
            raise SchemaError(
                f"column {schema.name}.{column.name}: policy {policy_name!r} is defined "
                f"over domain {policy.scheme.name!r}, not {column.domain!r}"
            )
        table_policy.add_column(column.name, policy)
    return table_policy


def build_index(statement: ast.CreateIndex, schema: TableSchema,
                registry: PolicyRegistry) -> Index:
    """Instantiate the index structure requested by ``CREATE INDEX``."""
    method = statement.method.lower()
    if method not in INDEX_METHODS:
        raise CatalogError(
            f"unknown index method {statement.method!r}; expected one of {INDEX_METHODS}"
        )
    column = schema.column(statement.column)
    if method == "gt":
        if not column.degradable or column.domain is None:
            raise CatalogError(
                f"GT indexes require a degradable column; {schema.name}.{column.name} "
                "is stable"
            )
        scheme: GeneralizationScheme = registry.domain(column.domain)
        return GTIndex(statement.name, scheme)
    if method == "hash":
        return HashIndex(statement.name)
    if method == "bitmap":
        return BitmapIndex(statement.name)
    return BPlusTreeIndex(statement.name)


__all__ = ["build_schema", "build_table_policy", "build_index", "INDEX_METHODS"]
