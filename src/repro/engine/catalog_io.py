"""Catalog persistence: snapshot / restore the DDL state through the WAL.

``InstantDB`` logs a ``CATALOG`` record (a JSON document produced by
:func:`snapshot_catalog`) whenever a transaction that changed DDL state
commits, and again at the head of every checkpoint so WAL truncation never
loses it.  :meth:`InstantDB.recover` feeds the latest such document to
:func:`restore_catalog` *before* replaying data records, which makes reopening
a database a true one-call operation — no caller-side re-running of DDL.

Everything here is structural: generalization schemes are serialized as the
paths / widths / buckets they were built from, policies as their state lists
and transition specs, tables as column definitions plus policy bindings.  The
document carries schema state only — which includes the **domain ontology**
(a generalization tree's leaf paths enumerate every accurate value the domain
*admits*) and per-tuple override selector values (row keys, the same
sensitivity class as the keys in ``SCHED`` records), but never any inserted
tuple's data.  The ontology exists independently of the rows, so catalog
records are exempt from scrubbing and the forensic scanner greps the WAL
through :meth:`~repro.storage.wal.WriteAheadLog.forensic_image`, which
redacts catalog documents rather than flag the vocabulary as a retained
value.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..core.errors import CatalogError
from ..core.generalization import (
    GeneralizationScheme,
    GeneralizationTree,
    NumericRangeGeneralization,
    TimestampGeneralization,
)
from ..core.lcp import AttributeLCP, Transition
from ..core.policy import AccuracyRequirement, Purpose, TablePolicy
from ..core.schema import Column, TableSchema

#: Bumped when the snapshot layout changes incompatibly.
CATALOG_FORMAT = 1


# -- schemes -----------------------------------------------------------------

def scheme_to_spec(scheme: GeneralizationScheme) -> Dict[str, Any]:
    """Serialize a generalization scheme to a JSON-safe structural spec."""
    if isinstance(scheme, GeneralizationTree):
        depth = scheme.max_level
        paths: List[List[Any]] = []
        for leaf in scheme.values_at_level(0):
            node = scheme._nodes_by_level[0][leaf]
            path = []
            while node is not None and node.level < depth:
                path.append(node.value)
                node = node.parent
            paths.append(path)
        return {"type": "tree", "name": scheme.name,
                "level_names": list(scheme._level_names), "paths": paths}
    if isinstance(scheme, NumericRangeGeneralization):
        return {"type": "range", "name": scheme.name,
                "widths": list(scheme.widths),
                "level_names": list(scheme._level_names),
                "origin": scheme.origin, "integral": scheme.integral}
    if isinstance(scheme, TimestampGeneralization):
        return {"type": "timestamp", "name": scheme.name,
                "buckets": [[label, width] for label, width in scheme.buckets]}
    raise CatalogError(
        f"domain {scheme.name!r} ({type(scheme).__name__}) cannot be "
        "serialized to the catalog log; register a built-in scheme kind or "
        "re-run DDL before recover()"
    )


def scheme_from_spec(spec: Dict[str, Any]) -> GeneralizationScheme:
    kind = spec.get("type")
    if kind == "tree":
        return GeneralizationTree.from_paths(
            spec["name"], [tuple(path) for path in spec["paths"]],
            level_names=spec["level_names"])
    if kind == "range":
        return NumericRangeGeneralization(
            spec["name"], spec["widths"], level_names=spec["level_names"],
            origin=spec["origin"], integral=spec["integral"])
    if kind == "timestamp":
        return TimestampGeneralization(
            spec["name"], buckets=[tuple(b) for b in spec["buckets"]])
    raise CatalogError(f"unknown scheme kind in catalog record: {kind!r}")


# -- policies ----------------------------------------------------------------

def _transition_spec(transition: Transition) -> Dict[str, Any]:
    if transition.timed:
        return {"delay": float(transition.delay)}
    return {"event": transition.event}


def policy_to_spec(policy: AttributeLCP) -> Dict[str, Any]:
    return {
        "name": policy.name,
        "domain": policy.scheme.name,
        "states": list(policy.states),
        "transitions": [_transition_spec(t) for t in policy.transitions],
    }


def policy_from_spec(spec: Dict[str, Any], registry) -> AttributeLCP:
    scheme = registry.domain(spec["domain"])
    return AttributeLCP(scheme, states=spec["states"],
                        transitions=spec["transitions"], name=spec["name"])


def _policy_ref(policy: AttributeLCP, registry) -> Dict[str, Any]:
    """A named reference when the registry knows this exact policy, else the
    full structural spec (unregistered per-tuple override policies)."""
    name = policy.name
    if name and registry.has_policy(name) and registry.policy(name) is policy:
        return {"ref": name}
    return policy_to_spec(policy)


def _policy_deref(spec: Dict[str, Any], registry) -> AttributeLCP:
    if "ref" in spec:
        return registry.policy(spec["ref"])
    return policy_from_spec(spec, registry)


# -- tables ------------------------------------------------------------------

def _column_spec(column: Column) -> Dict[str, Any]:
    return {
        "name": column.name,
        "type": column.value_type.value,
        "degradable": column.degradable,
        "domain": column.domain,
        "policy": column.policy,
        "nullable": column.nullable,
        "primary_key": column.primary_key,
    }


def _table_spec(info, registry) -> Dict[str, Any]:
    policy = info.policy
    policy_spec = None
    if policy is not None:
        policy_spec = {
            "remove_on_final": policy.remove_on_final,
            "selector_column": policy.selector_column,
            "columns": {column: _policy_ref(lcp, registry)
                        for column, lcp in policy.column_policies.items()},
            "overrides": [
                [selector, {column: _policy_ref(lcp, registry)
                            for column, lcp in per_column.items()}]
                for selector, per_column in policy.per_tuple_policies.items()
            ],
        }
    return {
        "name": info.schema.name,
        "columns": [_column_spec(column) for column in info.schema.columns],
        "policy": policy_spec,
        "indexes": [
            {"name": index.name, "column": index.column, "method": index.method}
            for index in info.indexes.values()
        ],
    }


def _schema_from_spec(spec: Dict[str, Any]) -> TableSchema:
    columns = [
        Column(name=c["name"], value_type=c["type"], degradable=c["degradable"],
               domain=c["domain"], policy=c["policy"], nullable=c["nullable"],
               primary_key=c["primary_key"])
        for c in spec["columns"]
    ]
    return TableSchema(spec["name"], columns)


def _table_policy_from_spec(name: str, spec: Dict[str, Any],
                            registry) -> TablePolicy:
    policy = TablePolicy(
        table=name,
        column_policies={column: _policy_deref(ref, registry)
                         for column, ref in spec["columns"].items()},
        remove_on_final=spec["remove_on_final"],
        selector_column=spec["selector_column"],
    )
    for selector, per_column in spec["overrides"]:
        policy.register_override(selector, {
            column: _policy_deref(ref, registry)
            for column, ref in per_column.items()
        })
    return policy


# -- purposes ----------------------------------------------------------------

def _purpose_spec(purpose: Purpose) -> Dict[str, Any]:
    return {
        "name": purpose.name,
        "description": purpose.description,
        "requirements": [[req.table, req.column, req.level]
                         for req in purpose.requirements()],
    }


def _purpose_from_spec(spec: Dict[str, Any]) -> Purpose:
    return Purpose(spec["name"],
                   requirements=[AccuracyRequirement(table, column, level)
                                 for table, column, level in spec["requirements"]],
                   description=spec.get("description", ""))


# -- whole catalog -----------------------------------------------------------

def snapshot_catalog(db) -> Dict[str, Any]:
    """Serialize the engine's full DDL state to a JSON-safe document."""
    registry = db.registry
    return {
        "format": CATALOG_FORMAT,
        "domains": [scheme_to_spec(scheme)
                    for scheme in registry.domains().values()],
        "policies": [policy_to_spec(policy)
                     for policy in registry.policies().values()],
        "tables": [_table_spec(info, registry) for info in db.catalog.tables()],
        "purposes": [_purpose_spec(purpose)
                     for purpose in db.catalog.purposes()],
        "columnar": sorted(db.catalog._columnar_tables),
    }


def restore_catalog(db, snapshot: Dict[str, Any]) -> List[str]:
    """Rebuild the DDL state of ``db`` from a :func:`snapshot_catalog` document.

    Registers domains / policies, recreates every table (schema, policy
    bindings, per-tuple overrides, empty stores, index structures) and every
    purpose — all without logging new WAL records, since the reopened log
    already holds them.  Returns the names of tables that had columnar
    mirrors attached; the engine re-columnarizes them only after the heap has
    been recovered.
    """
    fmt = snapshot.get("format")
    if fmt != CATALOG_FORMAT:
        raise CatalogError(f"unsupported catalog record format: {fmt!r}")
    registry = db.registry
    for spec in snapshot["domains"]:
        if not registry.has_domain(spec["name"]):
            registry.register_domain(scheme_from_spec(spec))
    for spec in snapshot["policies"]:
        if not registry.has_policy(spec["name"]):
            registry.register_policy(policy_from_spec(spec, registry))
    for table in snapshot["tables"]:
        schema = _schema_from_spec(table)
        policy = None
        if table["policy"] is not None:
            policy = _table_policy_from_spec(schema.name, table["policy"],
                                             registry)
        db._attach_recovered_table(schema, policy)
        for index in table["indexes"]:
            db._attach_recovered_index(schema.name, index["name"],
                                       index["column"], index["method"])
    for spec in snapshot["purposes"]:
        db.catalog.add_purpose(_purpose_from_spec(spec))
    return list(snapshot.get("columnar", ()))


def encode_catalog(snapshot: Dict[str, Any]) -> bytes:
    """Serialize a snapshot document to the ``after`` payload of a CATALOG
    WAL record (sorted keys keep the bytes deterministic across runs)."""
    return json.dumps(snapshot, sort_keys=True).encode("utf-8")


def latest_catalog_snapshot(wal) -> Optional[Dict[str, Any]]:
    """The last CATALOG record's document in ``wal``, or ``None``."""
    from ..storage.wal import LogRecordType
    payload = None
    for record in wal:
        if record.record_type is LogRecordType.CATALOG and record.after:
            payload = record.after
    if payload is None:
        return None
    return json.loads(payload.decode("utf-8"))


__all__ = [
    "CATALOG_FORMAT",
    "encode_catalog",
    "latest_catalog_snapshot",
    "policy_from_spec",
    "policy_to_spec",
    "restore_catalog",
    "scheme_from_spec",
    "scheme_to_spec",
    "snapshot_catalog",
]
