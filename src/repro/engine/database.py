"""The InstantDB engine facade.

:class:`InstantDB` wires every substrate together — clock, storage, indexes,
transactions, degradation scheduler/daemon, SQL front-end — behind the small
public API the paper implies:

* register generalization domains and life cycle policies;
* ``CREATE TABLE`` with ``DEGRADABLE DOMAIN ... POLICY ...`` columns;
* ``INSERT`` (always in the most accurate state);
* ``DECLARE PURPOSE ... SET ACCURACY LEVEL ...`` and purpose-bound ``SELECT``;
* advance (simulated) time, which fires the degradation daemon so that tuples
  traverse their life cycle policy and eventually disappear.

Example
-------
>>> from repro import InstantDB, AttributeLCP
>>> from repro.core.domains import build_location_tree
>>> db = InstantDB()
>>> gt = db.register_domain(build_location_tree())
>>> _ = db.register_policy(AttributeLCP(gt, transitions=["1 h", "1 day", "1 month", "3 months"],
...                                     name="location_lcp"))
>>> db.execute("CREATE TABLE person (id INT PRIMARY KEY, name TEXT, "
...            "location TEXT DEGRADABLE DOMAIN location POLICY location_lcp)")
>>> db.execute("INSERT INTO person VALUES (1, 'alice', '1 Main Street, Paris')")
1
>>> _ = db.advance_time(hours=2)      # the address degrades to city level
>>> _ = db.execute("DECLARE PURPOSE stats SET ACCURACY LEVEL city FOR person.location")
>>> db.execute("SELECT location FROM person", purpose="stats").rows
[('Paris',)]
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.clock import Clock, SimulatedClock, make_clock
from ..core.errors import (
    CatalogError,
    ConfigurationError,
    DeadlockError,
    DurabilityError,
    ExecutionError,
    ParameterError,
    PolicyError,
    ReadOnlyModeError,
    TransactionAborted,
)
from ..faults import FaultPlan
from ..core.generalization import GeneralizationScheme
from ..core.lcp import AttributeLCP, TupleLCP
from ..core.policy import AccuracyRequirement, Purpose, TablePolicy
from ..core.scheduler import DegradationScheduler, DegradationStep
from ..core.schema import TableSchema
from ..core.values import SUPPRESSED
from ..devtools import invariants
from ..index.gt_index import GTIndex
from ..query import ast_nodes as ast
from ..query.catalog import Catalog, IndexInfo
from ..query.executor import Executor, QueryResult, ROW_KEY_FIELD
from ..query.parameters import count_placeholders
from ..query.parser import parse_script
from ..query.planner import Planner, bind_physical_plan
from ..query.prepared import PreparedStatement, StatementCache
from ..query.statistics import StatisticsRegistry
from ..storage.buffer import BufferPool
from ..storage.crypto import KeyStore
from ..storage.degradable_store import TableStore
from ..storage.pager import open_pager
from ..storage.serialization import encode_record
from ..storage.wal import (
    LogRecordType,
    WriteAheadLog,
    encode_page_directory,
    encode_policy_names,
    encode_schedule_defers,
    encode_schedule_steps,
)
from ..txn.recovery import RecoveryManager, RecoveryReport, ScheduleReplayReport
from ..txn.transaction import Transaction, TransactionManager
from . import ddl
from .catalog_io import (
    encode_catalog,
    latest_catalog_snapshot,
    restore_catalog,
    snapshot_catalog,
)
from .daemon import DegradationDaemon

#: Back-off applied when a degradation step hits a lock conflict.
_CONFLICT_RETRY_SECONDS = 1.0


def _param_shape(params: Sequence[Any]) -> Optional[Tuple[str, ...]]:
    """Parameter-shape cache key: the tuple of bound value type names.

    A ``None`` value makes the shape ineligible (returns ``None``): a NULL
    predicate is always false, while an index probed with ``None`` need not
    agree — such executions fall back to ordinary per-execution planning.
    """
    shape = []
    for value in params:
        if value is None:
            return None
        shape.append(type(value).__name__)
    return tuple(shape)

#: Max step/defer entries per schedule WAL record: an unbounded wave must be
#: split across records to respect the record codec's 65535-field cap
#: (steps flatten to 4 fields each, defers to 5, plus a count).
_SCHED_RECORD_CHUNK = 10_000


@dataclass
class EngineRecovery:
    """Outcome of :meth:`InstantDB.recover` (asserted on by crash tests)."""

    #: Data recovery summary (redo/undo counts, winner/loser transactions).
    recovery: RecoveryReport
    #: Schedule replay summary (snapshot + tail replay counts).
    schedule: ScheduleReplayReport
    #: Live registrations after the schedule was reconstructed.
    registrations: int = 0
    #: Steps that had come due while the process was down and were applied by
    #: the catch-up drain (batched through the normal pipeline).
    overdue_steps_applied: int = 0
    #: Time the engine recovered to (simulated clocks are fast-forwarded to
    #: the last timestamp the log proves had been reached).
    recovered_to: float = 0.0


@dataclass
class EngineStats:
    """Engine-level counters exposed to benchmarks and tests."""

    statements_executed: int = 0
    rows_inserted: int = 0
    rows_deleted: int = 0
    rows_updated: int = 0
    rows_removed_by_policy: int = 0
    degradation_steps_applied: int = 0
    degradation_conflicts: int = 0
    checkpoints: int = 0
    #: Durability-critical I/O failures observed (each one flips — or finds —
    #: the engine in read-only degraded mode, except daemon wave faults which
    #: retry instead).
    durability_failures: int = 0
    #: Degradation waves pushed back by a transient durability fault.
    degradation_waves_faulted: int = 0


class InstantDB:
    """A data-degradation-aware database engine (the paper's InstantDB)."""

    def __init__(self, clock: Union[str, Clock] = "simulated",
                 strategy: str = "rewrite",
                 page_size: int = 4096,
                 buffer_capacity: int = 256,
                 data_dir: Optional[str] = None,
                 deterministic_crypto: bool = True,
                 batch_degradation: bool = True,
                 degradation_max_batch: Optional[int] = None,
                 read_path_optimizations: bool = True,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        self.clock: Clock = make_clock(clock) if isinstance(clock, str) else clock
        self.strategy = strategy
        #: Optional fault-injection schedule threaded through every I/O seam
        #: (WAL flush/rewrite, pager sync, simulated-clock skips); ``None``
        #: (the default) compiles every hook down to a no-op branch.
        self.faults = fault_plan
        if fault_plan is not None and isinstance(self.clock, SimulatedClock):
            self.clock.faults = fault_plan
        pager_path = None
        wal_path = None
        if data_dir is not None:
            os.makedirs(data_dir, exist_ok=True)
            pager_path = os.path.join(data_dir, "pages.db")
            wal_path = os.path.join(data_dir, "wal.log")
        self.pager = open_pager(pager_path, page_size=page_size,
                                faults=fault_plan)
        self.buffer_pool = BufferPool(self.pager, capacity=buffer_capacity)
        self.wal = WriteAheadLog(wal_path, faults=fault_plan)
        self.keystore = KeyStore(deterministic_seed=b"instantdb" if deterministic_crypto else None)
        self.catalog = Catalog()
        self.registry = self.catalog.registry
        #: Incrementally maintained table statistics (row counts, NDV,
        #: min/max, value frequencies) driving cost-based access paths.
        self.statistics = StatisticsRegistry()
        #: Compiled read path (predicate/projection closures, column pruning,
        #: index-only scans, cost-based plans).  ``False`` runs the
        #: tree-walking interpreter over full-row decodes — the measured
        #: before/after baseline of the C3 benchmark.
        self.read_path_optimizations = read_path_optimizations
        if read_path_optimizations:
            self.catalog.statistics = self.statistics
        self.catalog.read_optimized = read_path_optimizations
        self.transactions = TransactionManager(self.wal)
        # An abort whose undo hit the failing device leaves the in-memory
        # image possibly stale; degrade until recover() rebuilds it from disk.
        self.transactions.on_undo_failure = (
            lambda exc: self._enter_read_only(f"undo failure: {exc}"))
        self.scheduler = DegradationScheduler()
        self.stores: Dict[str, TableStore] = {}
        self._tuple_lcps: Dict[Tuple[str, int], TupleLCP] = {}
        self.executor = Executor(
            self.catalog, self._store_for,
            compile_mode="compiled" if read_path_optimizations else "interpreted")
        self.planner = Planner(self.catalog)
        self.statements = StatementCache(capacity=256)
        self.daemon = DegradationDaemon(
            self.clock, self.scheduler, applier=self._apply_degradation_step,
            on_complete=self._on_record_final,
            batch_applier=self._apply_degradation_batch if batch_degradation else None,
            on_complete_batch=self._on_records_final if batch_degradation else None,
            max_batch=degradation_max_batch,
        )
        self.stats = EngineStats()
        #: Why the engine is in read-only degraded mode (``None`` = writable).
        self._read_only_reason: Optional[str] = None
        #: DDL state changed since the last CATALOG record was logged.
        self._catalog_dirty = False
        #: Sticky: a registered scheme has no structural serialization
        #: (custom subclass) — catalog logging is off and reopening falls
        #: back to the legacy protocol (re-run DDL, then recover()).
        self._catalog_unserializable = False
        #: Per-table consecutive durability-fault count driving the
        #: exponential retry backoff of degradation waves.
        self._fault_backoff: Dict[str, int] = {}

    # ------------------------------------------------------------------ degraded mode

    @property
    def read_only(self) -> bool:
        """True while the engine is in read-only degraded mode."""
        return self._read_only_reason is not None

    @property
    def read_only_reason(self) -> Optional[str]:
        return self._read_only_reason

    def _require_writable(self) -> None:
        if self._read_only_reason is not None:
            raise ReadOnlyModeError(
                "engine is in read-only degraded mode after a durability "
                f"failure ({self._read_only_reason}); reads still work — "
                "reopen the database and recover() to resume writes"
            )

    def _enter_read_only(self, reason: str) -> None:
        """Flip into read-only degraded mode (sticky until :meth:`recover`).

        The WAL refused to make some write durable, so the safe reaction is
        to stop accepting new writes: everything already committed is durable,
        the failed transaction is aborted, and the heap can never diverge
        from what the log proves.
        """
        self.stats.durability_failures += 1
        if self._read_only_reason is None:
            self._read_only_reason = reason

    def _on_durability_failure(self, txn: Transaction, exc: DurabilityError) -> None:
        """Commit-path durability failure: degrade the engine, abort cleanly.

        The commit flush failed *before* the transaction was marked committed,
        so aborting runs its undo actions and the in-memory state matches the
        on-disk log (which holds no durable COMMIT for it).  The abort's own
        flush failure is tolerated by the transaction manager.
        """
        self._enter_read_only(str(exc))
        if self.transactions.is_active(txn.txn_id):
            self.transactions.abort(txn, now=self.clock.now(),
                                    reason=f"durability failure: {exc}")

    def _commit_txn(self, txn: Transaction) -> None:
        """Commit ``txn``, logging pending DDL state and handling I/O faults."""
        now = self.clock.now()
        self._append_catalog_if_dirty(now)
        try:
            self.transactions.commit(txn, now=now)
        except DurabilityError as exc:
            self._on_durability_failure(txn, exc)
            raise

    def _flush_wal(self) -> None:
        """Flush the WAL outside a commit, degrading the engine on failure."""
        try:
            self.wal.flush()
        except DurabilityError as exc:
            self._enter_read_only(str(exc))
            raise

    def _append_catalog_if_dirty(self, now: float) -> None:
        """Log a CATALOG record when DDL state changed since the last one.

        Appended (buffered) just before a commit's durable flush, so catalog
        changes become durable with the transaction that first builds on
        them; :meth:`checkpoint` logs one unconditionally so WAL truncation
        never loses the catalog.
        """
        if not self._catalog_dirty:
            return
        payload = self._encode_catalog_snapshot()
        self._catalog_dirty = False
        if payload is not None:
            self.wal.append(LogRecordType.CATALOG, 0, after=payload,
                            timestamp=now)

    def _encode_catalog_snapshot(self) -> Optional[bytes]:
        """The encoded catalog document, or ``None`` when some registered
        scheme is a custom subclass without a structural serialization — the
        engine then simply never logs CATALOG records and reopening uses the
        legacy protocol (caller re-runs DDL before :meth:`recover`)."""
        if self._catalog_unserializable:
            return None
        try:
            return encode_catalog(snapshot_catalog(self))
        except CatalogError:
            self._catalog_unserializable = True
            return None

    # ------------------------------------------------------------------ domains

    def register_domain(self, scheme: GeneralizationScheme,
                        name: Optional[str] = None) -> GeneralizationScheme:
        """Register a generalization scheme under ``name`` (defaults to its own)."""
        registered = self.registry.register_domain(scheme, name=name)
        self._catalog_dirty = True
        return registered

    def register_policy(self, policy: Optional[AttributeLCP] = None, *,
                        domain: Optional[str] = None,
                        transitions: Optional[Sequence[Any]] = None,
                        states: Optional[Sequence[int]] = None,
                        name: Optional[str] = None) -> AttributeLCP:
        """Register an attribute LCP, either prebuilt or described inline.

        ``register_policy(domain="location", transitions=["1 h", "1 day"], states=[0, 1, 4])``
        builds the policy over the registered domain.
        """
        if policy is None:
            if domain is None or transitions is None:
                raise ConfigurationError(
                    "register_policy needs either a prebuilt AttributeLCP or "
                    "domain= and transitions="
                )
            scheme = self.registry.domain(domain)
            policy = AttributeLCP(scheme, states=states, transitions=transitions,
                                  name=name or f"{domain}_lcp")
        registered = self.registry.register_policy(policy, name=name)
        self._catalog_dirty = True
        return registered

    def define_purpose(self, purpose: Purpose) -> Purpose:
        """Register a purpose built through the Python API."""
        added = self.catalog.add_purpose(purpose)
        self._catalog_dirty = True
        return added

    def purpose(self, name: str) -> Purpose:
        return self.catalog.purpose(name)

    # ------------------------------------------------------------------ tables

    def create_table(self, schema: TableSchema, remove_on_final: bool = True,
                     selector_column: Optional[str] = None) -> TableStore:
        """Create a table from a Python :class:`TableSchema`."""
        self._require_writable()
        policy = ddl.build_table_policy(schema, self.registry,
                                        remove_on_final=remove_on_final)
        if policy is not None and selector_column is not None:
            policy.selector_column = selector_column.lower()
        store = self._attach_recovered_table(schema, policy)
        self._catalog_dirty = True
        return store

    def _attach_recovered_table(self, schema: TableSchema,
                                policy: Optional[TablePolicy]) -> TableStore:
        """Wire a table's runtime objects without marking the catalog dirty
        (shared by :meth:`create_table` and catalog restore on recovery)."""
        self.catalog.add_table(schema, policy)
        self.statistics.register(schema)
        store = TableStore(schema, self.buffer_pool, self.wal,
                           keystore=self.keystore, strategy=self.strategy)
        self.stores[schema.name] = store
        return store

    def _attach_recovered_index(self, table: str, name: str, column: str,
                                method: str) -> None:
        """Recreate an index structure from catalog-restore metadata.

        The structure starts empty; :meth:`_rebuild_indexes` fills it from
        the recovered heap later in the recovery sequence.
        """
        info = self.catalog.table(table)
        statement = ast.CreateIndex(name=name, table=table, column=column,
                                    method=method)
        index = ddl.build_index(statement, info.schema, self.registry)
        self.catalog.add_index(IndexInfo(name=name, table=table,
                                         column=column.lower(),
                                         method=method.lower(), index=index))

    def table_store(self, name: str) -> TableStore:
        return self._store_for(name)

    def columnarize(self, table: str) -> None:
        """Attach a columnar segment mirror to ``table``.

        Builds the :class:`~repro.storage.segment.SegmentSet` from the current
        heap and registers the table in the catalog, so the planner turns its
        sequential scans into vectorized ColumnarScans (under read-path
        optimizations — the baseline engine keeps the reference row pipeline)
        and degradation waves rewrite it chunk-wise through the segment layer.
        The mirror is derived state: recovery rebuilds it from the recovered
        heap, and a reopened database must call :meth:`columnarize` again
        after re-running its DDL.
        """
        name = table.lower()
        self._store_for(name).columnarize()
        self.catalog.set_columnar(name)
        self._catalog_dirty = True

    def table_policy(self, name: str) -> Optional[TablePolicy]:
        return self.catalog.table(name).policy

    def register_user_policy(self, table: str, selector_value: Any,
                             policies: Dict[str, AttributeLCP]) -> None:
        """Per-tuple policy override (the paper's "paranoid user" extension)."""
        policy = self.catalog.table(table).policy
        if policy is None:
            raise PolicyError(f"table {table!r} has no degradable columns")
        policy.register_override(selector_value, policies)
        self._catalog_dirty = True

    def _store_for(self, table: str) -> TableStore:
        try:
            return self.stores[table.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {table!r}") from None

    # ------------------------------------------------------------------ time

    def now(self) -> float:
        return self.clock.now()

    def advance_time(self, seconds: float = 0.0, **units: float) -> float:
        """Advance the simulated clock; the degradation daemon runs automatically."""
        invariants.assert_engine_thread(self)
        if not isinstance(self.clock, SimulatedClock):
            raise ConfigurationError("advance_time requires a simulated clock")
        return self.clock.advance(seconds, **units)

    def run_degradation(self) -> List[DegradationStep]:
        """Explicitly run every due degradation step (wall-clock deployments)."""
        return self.daemon.run_pending(self.clock.now())

    def fire_event(self, event: str) -> List[DegradationStep]:
        """Fire a named event releasing event-triggered transitions, then run them.

        The firing is logged and flushed *before* the released steps run: if
        the process dies mid-drain, recovery re-fires the event at the same
        timestamp and the unapplied steps come back overdue.  Events nothing
        waits on are a no-op live and in replay, so they skip the log record
        and its fsync entirely.
        """
        now = self.clock.now()
        if self.scheduler.has_waiters(event):
            self._require_writable()
            self.wal.append(LogRecordType.SCHED_EVENT, 0, attribute=event,
                            timestamp=now)
            self._flush_wal()
            self.scheduler.fire_event(event, now)
        return self.daemon.run_pending(now)

    # ------------------------------------------------------------------ transactions

    def begin(self) -> Transaction:
        """Start an explicit user transaction."""
        invariants.assert_engine_thread(self)
        return self.transactions.begin(now=self.clock.now())

    def commit(self, txn: Transaction) -> None:
        invariants.assert_engine_thread(self)
        self._commit_txn(txn)

    def rollback(self, txn: Transaction) -> None:
        invariants.assert_engine_thread(self)
        self.transactions.abort(txn, now=self.clock.now())

    def _locked(self, txn: Transaction, table: str, exclusive: bool) -> None:
        granted = (self.transactions.lock_exclusive(txn, table) if exclusive
                   else self.transactions.lock_shared(txn, table))
        if not granted:
            self.transactions.abort(txn, now=self.clock.now(), reason="lock conflict")
            raise TransactionAborted(
                f"transaction {txn.txn_id} blocked on table {table!r} "
                "(held by a concurrent transaction)"
            )

    # ------------------------------------------------------------------ SQL entry point

    def prepare(self, sql: str) -> PreparedStatement:
        """Parse ``sql`` once and cache it keyed on its exact text.

        The returned :class:`PreparedStatement` can be bound with qmark
        (``?``) parameters arbitrarily many times; parameter-free SELECTs
        also reuse their query plan across executions.
        """
        return self.statements.get_or_parse(sql)

    def execute(self, sql: str, purpose: Union[None, str, Purpose] = None,
                txn: Optional[Transaction] = None,
                params: Optional[Sequence[Any]] = None,
                stream: bool = False) -> Any:
        """Execute one SQL statement, optionally binding qmark parameters.

        This is the legacy facade kept for compatibility; new code should
        prefer :func:`repro.connect` and the PEP 249 Connection/Cursor API,
        which delegates to the same prepared-statement path.  Returns a
        :class:`QueryResult` for SELECT/EXPLAIN, the number of affected rows
        for DML, and ``None`` for DDL.  With ``stream=True`` and a
        caller-supplied ``txn``, SELECTs return a lazily-evaluated
        :class:`~repro.query.operators.StreamingResult` instead (the cursor
        fast path — rows are computed as they are fetched).
        """
        prepared = self.prepare(sql)
        statement = prepared.bind(params)
        prepared.executions += 1
        return self.execute_statement(statement, purpose=purpose, txn=txn,
                                      prepared=prepared, stream=stream,
                                      params=params)

    def executemany(self, sql: str, seq_of_params: Iterable[Sequence[Any]],
                    purpose: Union[None, str, Purpose] = None,
                    txn: Optional[Transaction] = None) -> int:
        """Execute ``sql`` once per parameter sequence inside one transaction.

        The statement is parsed (and, when applicable, planned) exactly once;
        each parameter sequence is bound against the cached tree.  Running the
        whole batch in a single transaction means one lock acquisition and one
        durable WAL flush instead of N — the batch-insert fast path.  Returns
        the total number of affected rows.
        """
        invariants.assert_engine_thread(self)
        prepared = self.prepare(sql)
        now = self.clock.now()
        own_txn = txn is None
        active = txn or self.transactions.begin(now=now)
        total = 0
        try:
            for params in seq_of_params:
                statement = prepared.bind(params)
                prepared.executions += 1
                result = self.execute_statement(statement, purpose=purpose,
                                                txn=active, prepared=prepared,
                                                params=params)
                if isinstance(result, int):
                    total += result
        except BaseException:
            if own_txn and self.transactions.is_active(active.txn_id):
                self.transactions.abort(active, now=self.clock.now())
            raise
        if own_txn:
            self._commit_txn(active)
        return total

    def execute_script(self, sql: str, purpose: Union[None, str, Purpose] = None) -> List[Any]:
        """Execute a semicolon separated list of statements."""
        return [
            self.execute_statement(statement, purpose=purpose)
            for statement in parse_script(sql)
        ]

    def execute_statement(self, statement: ast.Statement,
                          purpose: Union[None, str, Purpose] = None,
                          txn: Optional[Transaction] = None,
                          prepared: Optional[PreparedStatement] = None,
                          stream: bool = False,
                          params: Optional[Sequence[Any]] = None) -> Any:
        invariants.assert_engine_thread(self)
        self.stats.statements_executed += 1
        # Statements arriving outside the prepare/bind path (execute_script,
        # direct calls) must not smuggle unbound placeholders into storage.
        if prepared is None and count_placeholders(statement) > 0:
            raise ParameterError(
                "statement contains unbound '?' placeholders; use "
                "execute(sql, params=...) or a Cursor to bind them"
            )
        resolved = self._resolve_purpose(purpose)
        if isinstance(statement, ast.Explain):
            return self._execute_explain(statement, resolved, txn)
        if isinstance(statement, ast.Select):
            return self._execute_select(statement, resolved, txn, prepared,
                                        stream=stream, params=params)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement, txn)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement, resolved, txn)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement, resolved, txn)
        if isinstance(statement, ast.CreateTable):
            schema = ddl.build_schema(statement, self.registry)
            self.create_table(schema)
            return None
        if isinstance(statement, ast.CreateIndex):
            self._execute_create_index(statement)
            return None
        if isinstance(statement, ast.DropTable):
            self._execute_drop_table(statement)
            return None
        if isinstance(statement, ast.DeclarePurpose):
            return self._execute_declare_purpose(statement)
        raise ExecutionError(f"unsupported statement type {type(statement).__name__}")

    def query(self, sql: str, purpose: Union[None, str, Purpose] = None) -> QueryResult:
        """Convenience wrapper returning a :class:`QueryResult`."""
        result = self.execute(sql, purpose=purpose)
        if not isinstance(result, QueryResult):
            raise ExecutionError("query() expects a SELECT statement")
        return result

    def _resolve_purpose(self, purpose: Union[None, str, Purpose]) -> Optional[Purpose]:
        if purpose is None or isinstance(purpose, Purpose):
            return purpose
        return self.catalog.purpose(purpose)

    def _purpose_is_canonical(self, purpose: Optional[Purpose]) -> bool:
        """Whether cached plans may be keyed on this purpose.

        Plans are cached per purpose *name*, so only the purpose object the
        catalog itself resolves that name to is eligible; an ad-hoc
        :class:`Purpose` instance passed directly to ``execute`` may demand
        different accuracy levels under the same name and must be re-planned.
        """
        if purpose is None:
            return True
        return self.catalog.has_purpose(purpose.name) and \
            self.catalog.purpose(purpose.name) is purpose

    # ------------------------------------------------------------------ SELECT / EXPLAIN

    def _execute_select(self, statement: ast.Select, purpose: Optional[Purpose],
                        txn: Optional[Transaction],
                        prepared: Optional[PreparedStatement] = None,
                        stream: bool = False,
                        params: Optional[Sequence[Any]] = None) -> Any:
        own_txn = txn is None
        active = txn or self.transactions.begin(now=self.clock.now())
        try:
            self._locked(active, statement.table, exclusive=False)
            for clause in statement.joins:
                self._locked(active, clause.table, exclusive=False)
            plan = self._plan_select(statement, purpose, prepared, params)
            if stream and not own_txn:
                # The caller's transaction keeps the read locks while the
                # cursor drains the pipeline lazily.
                return self.executor.stream_physical(plan)
            result = self.executor.execute_physical(plan)
        except BaseException:
            if own_txn and self.transactions.is_active(active.txn_id):
                self.transactions.abort(active, now=self.clock.now())
            raise
        if own_txn:
            self._commit_txn(active)
        return result

    def _plan_select(self, statement: ast.Select, purpose: Optional[Purpose],
                     prepared: Optional[PreparedStatement],
                     params: Optional[Sequence[Any]]) -> Any:
        """Resolve the physical plan for one SELECT execution.

        Three paths, fastest first:

        * parameter-free prepared statement — the plan is cached per
          (purpose, catalog version, statistics epoch) and reused verbatim;
        * parameterized prepared statement whose placeholders all sit in the
          WHERE clause — a *template* plan (access paths carrying
          :class:`~repro.query.planner.ParamMarker` slots) is cached per
          parameter shape and bound to this execution's values;
        * everything else — plan from scratch.

        The statistics epoch in both cache keys retires plans costed under
        economics a degradation wave (or any large stats shift) has since
        invalidated.
        """
        stats = self.statements.stats
        version = self.catalog.version
        cacheable = prepared is not None and self._purpose_is_canonical(purpose)
        if cacheable and prepared.param_count == 0:
            epoch = self.statistics.epoch()
            plan = prepared.cached_plan(purpose, version, epoch)
            stats.plan_hits += plan is not None
            stats.plan_misses += plan is None
            if plan is None:
                plan = self.planner.plan_physical(statement, purpose)
                prepared.store_plan(purpose, version, plan, epoch)
            # Compilation accounting, mirroring the WAL's payload cache: a
            # plan served from the statement cache already carries its
            # compiled closures, so re-execution compiles nothing.
            if plan.is_compiled:
                stats.predicate_compile_hits += 1
            else:
                stats.predicate_compiles += 1
            return plan
        if cacheable and params is not None and \
                prepared.placeholders_confined_to_where:
            shape = _param_shape(params)
            if shape is not None:
                epoch = self.statistics.epoch()
                template = prepared.cached_param_plan(purpose, version, epoch,
                                                      shape)
                stats.plan_hits += template is not None
                stats.plan_misses += template is None
                if template is None:
                    template = self.planner.plan_physical(prepared.statement,
                                                          purpose)
                    prepared.store_param_plan(purpose, version, epoch, shape,
                                              template)
                # Binding recompiles only the (small) residual predicate; the
                # projection and join-key closures are shared with the
                # template, so the accounting follows the template.
                if template.is_compiled:
                    stats.predicate_compile_hits += 1
                else:
                    stats.predicate_compiles += 1
                mode = "compiled" if self.read_path_optimizations \
                    else "interpreted"
                return bind_physical_plan(template, params, self.catalog, mode)
        plan = self.planner.plan_physical(statement, purpose)
        if cacheable:
            stats.plan_misses += 1
        stats.predicate_compiles += 1
        return plan

    def _execute_explain(self, statement: ast.Explain,
                         purpose: Optional[Purpose],
                         txn: Optional[Transaction] = None) -> QueryResult:
        inner = statement.statement
        if not isinstance(inner, ast.Select):
            return QueryResult(columns=["plan"],
                               rows=[(f"{type(inner).__name__} statement",)])
        plan = self.planner.plan_physical(inner, purpose)
        _columns, root = self.executor.build(plan)
        if statement.analyze:
            # EXPLAIN ANALYZE: run the pipeline so the rendered tree carries
            # the actual per-operator row counts.  The run takes the same
            # shared locks a plain SELECT would — analyzing must not read
            # past a concurrent writer.
            own_txn = txn is None
            active = txn or self.transactions.begin(now=self.clock.now())
            try:
                self._locked(active, inner.table, exclusive=False)
                for clause in inner.joins:
                    self._locked(active, clause.table, exclusive=False)
                for _row in root:
                    pass
            except BaseException:
                if own_txn and self.transactions.is_active(active.txn_id):
                    self.transactions.abort(active, now=self.clock.now())
                raise
            if own_txn:
                self.transactions.commit(active, now=self.clock.now())
        lines = plan.describe().splitlines()
        lines.extend(root.explain_lines(analyze=statement.analyze))
        return QueryResult(columns=["plan"], rows=[(line,) for line in lines])

    # ------------------------------------------------------------------ INSERT

    def _execute_insert(self, statement: ast.Insert,
                        txn: Optional[Transaction]) -> int:
        info = self.catalog.table(statement.table)
        count = 0
        for row in statement.rows:
            if statement.columns is not None:
                if len(statement.columns) != len(row):
                    raise ExecutionError(
                        f"INSERT specifies {len(statement.columns)} columns but "
                        f"{len(row)} values"
                    )
                mapping = {column.lower(): value for column, value in zip(statement.columns, row)}
            else:
                mapping = dict(zip(info.schema.column_names(), row))
            self.insert_row(statement.table, mapping, txn=txn)
            count += 1
        return count

    def insert_row(self, table: str, row: Any, txn: Optional[Transaction] = None) -> int:
        """Insert one row (Python API); returns the logical row key."""
        self._require_writable()
        table = table.lower()
        info = self.catalog.table(table)
        store = self._store_for(table)
        now = self.clock.now()
        own_txn = txn is None
        active = txn or self.transactions.begin(now=now)
        try:
            self._locked(active, table, exclusive=True)
            row_key = store.insert(row, now, txn_id=active.txn_id)
            stored = store.read(row_key)
            self._index_insert(info, stored)
            self.statistics.on_insert(table, stored.values)
            if info.policy is not None and info.policy.has_degradable_columns():
                selector_value = None
                if info.policy.selector_column is not None:
                    selector_value = stored.values.get(info.policy.selector_column)
                tuple_lcp = info.policy.tuple_lcp(selector_value)
                self.scheduler.register((table, row_key), tuple_lcp, now)
                self._tuple_lcps[(table, row_key)] = tuple_lcp
                # The registration becomes durable with the transaction's
                # commit flush; recovery replays it only if the txn committed.
                # The payload names each attribute's policy so replay can
                # re-resolve per-tuple overrides even after the selector
                # value itself has degraded (values never enter the log).
                self.wal.append(
                    LogRecordType.SCHED_REGISTER, active.txn_id,
                    table=table, row_key=row_key,
                    after=encode_policy_names({
                        attribute: lcp.name
                        for attribute, lcp in tuple_lcp.attributes.items()
                    }),
                    timestamp=now,
                )
            active.on_abort(lambda: self._undo_insert(table, row_key))
        except BaseException:
            if own_txn and self.transactions.is_active(active.txn_id):
                self.transactions.abort(active, now=now)
            raise
        if own_txn:
            self._commit_txn(active)
        self.stats.rows_inserted += 1
        return row_key

    def _undo_insert(self, table: str, row_key: int) -> None:
        store = self._store_for(table)
        if not store.exists(row_key):
            return
        info = self.catalog.table(table)
        stored = store.read(row_key)
        self._index_delete(info, stored)
        self.statistics.on_remove(table, stored.values)
        self.scheduler.cancel((table, row_key))
        self._tuple_lcps.pop((table, row_key), None)
        store.remove(row_key, now=self.clock.now())

    # ------------------------------------------------------------------ UPDATE / DELETE

    def _execute_update(self, statement: ast.Update, purpose: Optional[Purpose],
                        txn: Optional[Transaction]) -> int:
        self._require_writable()
        table = statement.table.lower()
        info = self.catalog.table(table)
        store = self._store_for(table)
        now = self.clock.now()
        own_txn = txn is None
        active = txn or self.transactions.begin(now=now)
        count = 0
        try:
            self._locked(active, table, exclusive=True)
            for column, _value in statement.assignments:
                if info.schema.column(column).degradable:
                    raise PolicyError(
                        f"column {table}.{column} is degradable: updates are not granted "
                        "after the tuple creation has been committed"
                    )
            for stored in self.executor.matching_rows(table, statement.where, purpose):
                for column, value in statement.assignments:
                    old_value = stored.values[column]
                    updated = store.update_stable(stored.row_key, column, value, now,
                                                  txn_id=active.txn_id)
                    self._index_update_column(info, column, old_value,
                                              updated.values[column], stored, updated)
                    self.statistics.on_value_change(table, column, old_value,
                                                    updated.values[column])
                    stored = updated
                count += 1
        except BaseException:
            if own_txn and self.transactions.is_active(active.txn_id):
                self.transactions.abort(active, now=now)
            raise
        if own_txn:
            self._commit_txn(active)
        self.stats.rows_updated += count
        return count

    def _execute_delete(self, statement: ast.Delete, purpose: Optional[Purpose],
                        txn: Optional[Transaction]) -> int:
        self._require_writable()
        table = statement.table.lower()
        now = self.clock.now()
        own_txn = txn is None
        active = txn or self.transactions.begin(now=now)
        count = 0
        try:
            self._locked(active, table, exclusive=True)
            for stored in self.executor.matching_rows(table, statement.where, purpose):
                self._delete_row(table, stored.row_key, txn_id=active.txn_id)
                count += 1
        except BaseException:
            if own_txn and self.transactions.is_active(active.txn_id):
                self.transactions.abort(active, now=now)
            raise
        if own_txn:
            self._commit_txn(active)
        self.stats.rows_deleted += count
        return count

    def _delete_row(self, table: str, row_key: int, txn_id: int = 0) -> None:
        info = self.catalog.table(table)
        store = self._store_for(table)
        stored = store.read(row_key)
        self._index_delete(info, stored)
        self.statistics.on_remove(table, stored.values)
        self.scheduler.cancel((table, row_key))
        self._tuple_lcps.pop((table, row_key), None)
        store.delete(row_key, now=self.clock.now(), txn_id=txn_id)

    # ------------------------------------------------------------------ DDL helpers

    def _execute_create_index(self, statement: ast.CreateIndex) -> None:
        self._require_writable()
        table = statement.table.lower()
        info = self.catalog.table(table)
        index = ddl.build_index(statement, info.schema, self.registry)
        index_info = IndexInfo(name=statement.name, table=table,
                               column=statement.column.lower(),
                               method=statement.method.lower(), index=index)
        self.catalog.add_index(index_info)
        self._catalog_dirty = True
        store = self._store_for(table)
        column = statement.column.lower()
        for stored in store.scan():
            value = stored.values[column]
            if isinstance(index, GTIndex):
                index.insert_at(value, stored.levels.get(column, 0), stored.row_key)
            else:
                index.insert(value, stored.row_key)

    def create_index(self, name: str, table: str, column: str,
                     method: str = "btree") -> None:
        """Python API equivalent of ``CREATE INDEX``."""
        self._execute_create_index(ast.CreateIndex(name=name, table=table,
                                                   column=column, method=method))

    def _execute_drop_table(self, statement: ast.DropTable) -> None:
        self._require_writable()
        table = statement.table.lower()
        self.catalog.drop_table(table)
        self._catalog_dirty = True
        self.statistics.drop(table)
        store = self.stores.pop(table, None)
        if store is not None:
            for row_key in store.row_keys():
                self.scheduler.cancel((table, row_key))
                self._tuple_lcps.pop((table, row_key), None)
                store.remove(row_key, now=self.clock.now())
        # The TABLE_DROP marker closes the table's log *epoch*: it is written
        # after the drop's own removals so every record up to and including
        # the marker belongs to the dropped incarnation.  Recovery skips
        # those records — whether the name is gone from the catalog or has
        # been re-created since (a fresh table reuses row keys; replaying
        # old-epoch removals against it would delete committed rows).
        self.wal.append(LogRecordType.TABLE_DROP, 0, table=table,
                        timestamp=self.clock.now())
        self._append_catalog_if_dirty(self.clock.now())
        self._flush_wal()

    def _execute_declare_purpose(self, statement: ast.DeclarePurpose) -> Purpose:
        purpose = Purpose(statement.name)
        for clause in statement.clauses:
            purpose.add_requirement(AccuracyRequirement(
                table=clause.table, column=clause.column, level=clause.level
            ))
        added = self.catalog.add_purpose(purpose)
        self._catalog_dirty = True
        return added

    # ------------------------------------------------------------------ index maintenance

    def _index_insert(self, info, stored) -> None:
        for index_info in info.indexes.values():
            value = stored.values[index_info.column]
            if isinstance(index_info.index, GTIndex):
                index_info.index.insert_at(value, stored.levels.get(index_info.column, 0),
                                           stored.row_key)
            else:
                index_info.index.insert(value, stored.row_key)

    def _index_delete(self, info, stored) -> None:
        for index_info in info.indexes.values():
            value = stored.values[index_info.column]
            if isinstance(index_info.index, GTIndex):
                index_info.index.delete_at(value, stored.levels.get(index_info.column, 0),
                                           stored.row_key)
            else:
                index_info.index.delete(value, stored.row_key)

    def _index_update_column(self, info, column: str, old_value: Any, new_value: Any,
                             old_row, new_row) -> None:
        for index_info in info.indexes.values():
            if index_info.column != column:
                continue
            if isinstance(index_info.index, GTIndex):
                index_info.index.degrade_entry(
                    old_value, old_row.levels.get(column, 0),
                    new_value, new_row.levels.get(column, 0), old_row.row_key,
                )
            else:
                index_info.index.update(old_value, new_value, old_row.row_key)

    # ------------------------------------------------------------------ degradation machinery

    def _apply_degradation_step(self, step: DegradationStep) -> bool:
        table, row_key = step.record_id
        if self._read_only_reason is not None:
            # Read-only degraded mode: no new WAL records, so push the step
            # forward; the post-recovery catch-up drain applies the backlog.
            self._defer_faulted(table, [step], None, self.clock.now())
            return False
        store = self._store_for(table)
        if not store.exists(row_key):
            self.scheduler.cancel(step.record_id)
            return False
        tuple_lcp = self._tuple_lcps.get((table, row_key))
        if tuple_lcp is None:
            self.scheduler.cancel(step.record_id)
            return False
        lcp = tuple_lcp.attributes[step.attribute]
        from_level = lcp.state_level(step.from_state)
        to_level = lcp.state_level(step.to_state)
        now = self.clock.now()
        txn = self.transactions.begin(system=True, now=now)
        try:
            granted = self.transactions.lock_exclusive(txn, table)
        except DeadlockError:
            granted = False
        if not granted:
            self._defer_conflicted(table, [step], txn, now)
            return False
        try:
            info = self.catalog.table(table)
            old_row = store.read(row_key)
            old_value = old_row.values[step.attribute]
            new_row = store.degrade(row_key, step.attribute, lcp.scheme, to_level,
                                    now, txn_id=txn.txn_id)
            new_value = new_row.values[step.attribute]
            self.statistics.on_value_change(table, step.attribute,
                                            old_value, new_value)
            for index_info in info.indexes.values():
                if index_info.column != step.attribute:
                    continue
                if isinstance(index_info.index, GTIndex):
                    index_info.index.degrade_entry(old_value, from_level,
                                                   new_value, to_level, row_key)
                else:
                    index_info.index.update(old_value, new_value, row_key)
            # The schedule advance rides in the same system transaction as the
            # DEGRADE record: one commit flush makes both durable, and replay
            # honours the step only if that transaction committed.
            self.wal.append(
                LogRecordType.SCHED_STEP, txn.txn_id, table=table,
                after=encode_schedule_steps(
                    [(row_key, step.attribute, step.to_state, step.due)]),
                timestamp=now,
            )
        except DurabilityError:
            self._defer_faulted(table, [step], txn, now)
            return False
        except BaseException:
            self.transactions.abort(txn, now=now)
            raise
        try:
            self.transactions.commit(txn, now=now)
        except DurabilityError:
            self._defer_faulted(table, [step], txn, now)
            return False
        self._fault_backoff.pop(table, None)
        self.stats.degradation_steps_applied += 1
        return True

    def _defer_conflicted(self, table: str, steps: List[DegradationStep],
                          txn: Transaction, now: float) -> None:
        """Shared lock-conflict protocol for the per-step and batch paths.

        The SCHED_DEFER record(s) are appended *before* the abort so the
        abort's durable flush carries them (chunked under the record codec's
        field cap); the steps are then re-queued at the retry time.
        """
        until = now + _CONFLICT_RETRY_SECONDS
        entries = [(step.record_id[1], step.attribute, step.from_state,
                    step.due, until) for step in steps]
        for start in range(0, len(entries), _SCHED_RECORD_CHUNK):
            self.wal.append(
                LogRecordType.SCHED_DEFER, 0, table=table,
                after=encode_schedule_defers(
                    entries[start:start + _SCHED_RECORD_CHUNK]),
                timestamp=now,
            )
        self.transactions.abort(txn, now=now, reason="degradation lock conflict")
        self.transactions.note_reader_degrader_conflict()
        self.stats.degradation_conflicts += 1
        for step in steps:
            self.scheduler.defer(step, until)

    def _defer_faulted(self, table: str, steps: List[DegradationStep],
                       txn: Optional[Transaction], now: float) -> None:
        """Transient durability fault in a degradation wave: retry later.

        Unlike a failed user commit (which flips the engine read-only), a
        faulted wave is *re-queued* with per-table exponential backoff — the
        timeliness promise degrades gracefully instead of halting, and the
        retried wave re-applies idempotently (degradation is monotone, and
        any effect the failed wave left in memory converges with the log
        through recovery's schedule replay).  ``txn is None`` means the
        engine is already read-only and no WAL records may be written.
        """
        attempts = self._fault_backoff.get(table, 0)
        self._fault_backoff[table] = attempts + 1
        until = now + _CONFLICT_RETRY_SECONDS * (2 ** min(attempts, 8))
        if txn is not None:
            entries = [(step.record_id[1], step.attribute, step.from_state,
                        step.due, until) for step in steps]
            for start in range(0, len(entries), _SCHED_RECORD_CHUNK):
                # Buffered only: these ride the next healthy flush.
                self.wal.append(
                    LogRecordType.SCHED_DEFER, 0, table=table,
                    after=encode_schedule_defers(
                        entries[start:start + _SCHED_RECORD_CHUNK]),
                    timestamp=now,
                )
            if self.transactions.is_active(txn.txn_id):
                self.transactions.abort(txn, now=now,
                                        reason="degradation durability fault")
        self.daemon.stats.steps_deferred_by_fault += len(steps)
        self.stats.degradation_waves_faulted += 1
        for step in steps:
            self.scheduler.defer(step, until)

    def _apply_degradation_batch(self, table: str,
                                 steps: List[DegradationStep]) -> List[DegradationStep]:
        """Apply one table's worth of due steps as one batch.

        The whole batch pays one system transaction, one exclusive table lock
        and one durable WAL flush (the commit); the store coalesces page
        writes so each dirty heap page is flushed once and scrubs the WAL in
        a single pass.  On a lock conflict every step of the batch is
        deferred and retried after the conflicting transaction finishes.
        Returns the steps that were applied.
        """
        if self._read_only_reason is not None:
            self._defer_faulted(table, steps, None, self.clock.now())
            return []
        store = self._store_for(table)
        live: List[DegradationStep] = []
        for step in steps:
            _table, row_key = step.record_id
            if not store.exists(row_key) or (table, row_key) not in self._tuple_lcps:
                self.scheduler.cancel(step.record_id)
                continue
            live.append(step)
        if not live:
            return []
        now = self.clock.now()
        txn = self.transactions.begin(system=True, now=now)
        try:
            granted = self.transactions.lock_exclusive(txn, table)
        except DeadlockError:
            granted = False
        if not granted:
            self._defer_conflicted(table, live, txn, now)
            return []
        # Order steps by heap page (the store's row→page map): degrade_many
        # coalesces page flushes either way, but page order keeps the rewrite
        # pass sequential on the heap and the WAL batch deterministic.
        def page_order(step: DegradationStep) -> Tuple[int, int]:
            row_key = step.record_id[1]
            page_id = store.page_of(row_key)
            return (page_id if page_id is not None else -1, row_key)

        live.sort(key=page_order)
        items = []
        for step in live:
            lcp = self._tuple_lcps[(table, step.record_id[1])].attributes[step.attribute]
            items.append((step.record_id[1], step.attribute, lcp.scheme,
                          lcp.state_level(step.to_state)))
        try:
            info = self.catalog.table(table)
            outcomes = store.degrade_many(items, now, txn_id=txn.txn_id)
            for outcome in outcomes:
                if outcome.changed:
                    self.statistics.on_value_change(table, outcome.column,
                                                    outcome.old_value,
                                                    outcome.new_value)
            for index_info in info.indexes.values():
                moves = [o for o in outcomes
                         if o.changed and o.column == index_info.column]
                if not moves:
                    continue
                if isinstance(index_info.index, GTIndex):
                    index_info.index.degrade_entries(
                        [(o.old_value, o.from_level, o.new_value, o.to_level,
                          o.row_key) for o in moves])
                else:
                    for outcome in moves:
                        index_info.index.update(outcome.old_value,
                                                outcome.new_value, outcome.row_key)
            # Final removals ride the same system transaction: steps driving
            # a remove_on_final tuple into full suppression delete the row
            # here — under the batch's table lock, with REMOVE records in the
            # batch's commit flush — instead of in a separate post-drain pass
            # (the completion callback then finds the rows gone and no-ops).
            if info.policy is not None and info.policy.remove_on_final:
                removable: List[int] = []
                for record_id in self.scheduler.predict_complete(live):
                    row_key = record_id[1]
                    tuple_lcp = self._tuple_lcps.get((table, row_key))
                    if tuple_lcp is not None and not all(
                            lcp.fully_suppresses
                            for lcp in tuple_lcp.attributes.values()):
                        continue
                    if not store.exists(row_key):
                        continue
                    stored = store.read(row_key)
                    self._index_delete(info, stored)
                    self.statistics.on_remove(table, stored.values)
                    self._tuple_lcps.pop((table, row_key), None)
                    removable.append(row_key)
                if removable:
                    store.remove_many(removable, now=now, txn_id=txn.txn_id)
                    self.stats.rows_removed_by_policy += len(removable)
            # Schedule records for the whole batch (chunked under the record
            # codec's field cap), inside the same system transaction as its
            # DEGRADE records: the single commit flush makes data and
            # schedule durable together.
            entries = [(step.record_id[1], step.attribute, step.to_state,
                        step.due) for step in live]
            for start in range(0, len(entries), _SCHED_RECORD_CHUNK):
                self.wal.append(
                    LogRecordType.SCHED_STEP, txn.txn_id, table=table,
                    after=encode_schedule_steps(
                        entries[start:start + _SCHED_RECORD_CHUNK]),
                    timestamp=now,
                )
        except DurabilityError:
            self._defer_faulted(table, live, txn, now)
            return []
        except BaseException:
            self.transactions.abort(txn, now=now)
            raise
        try:
            self.transactions.commit(txn, now=now)
        except DurabilityError:
            self._defer_faulted(table, live, txn, now)
            return []
        self._fault_backoff.pop(table, None)
        self.stats.degradation_steps_applied += len(live)
        return live

    def _on_record_final(self, record_id: Any) -> None:
        table, row_key = record_id
        info = self.catalog.table(table)
        tuple_lcp = self._tuple_lcps.pop((table, row_key), None)
        if info.policy is None or not info.policy.remove_on_final:
            return
        # Physical removal only closes a life cycle that actually ends in full
        # suppression; a partial policy (final state = some intermediate level)
        # keeps the degraded tuple in the database indefinitely.
        if tuple_lcp is not None and not all(
                lcp.fully_suppresses for lcp in tuple_lcp.attributes.values()):
            return
        store = self._store_for(table)
        if not store.exists(row_key):
            return
        stored = store.read(row_key)
        self._index_delete(info, stored)
        self.statistics.on_remove(table, stored.values)
        store.remove(row_key, now=self.clock.now())
        self.stats.rows_removed_by_policy += 1

    def _on_records_final(self, record_ids: List[Any]) -> None:
        """Bulk completion handler: remove finalized tuples table by table.

        Where :meth:`_on_record_final` pays one WAL scrub rewrite per record,
        this path collects every record a degradation drain finalized and
        removes them through :meth:`TableStore.remove_many` — one scrub pass
        and one flush per touched page per table.
        """
        by_table: Dict[str, List[int]] = {}
        for record_id in record_ids:
            table, row_key = record_id
            by_table.setdefault(table, []).append(row_key)
        for table, row_keys in by_table.items():
            info = self.catalog.table(table)
            store = self._store_for(table)
            removable: List[int] = []
            for row_key in row_keys:
                tuple_lcp = self._tuple_lcps.pop((table, row_key), None)
                if info.policy is None or not info.policy.remove_on_final:
                    continue
                if tuple_lcp is not None and not all(
                        lcp.fully_suppresses for lcp in tuple_lcp.attributes.values()):
                    continue
                if not store.exists(row_key):
                    continue
                stored = store.read(row_key)
                self._index_delete(info, stored)
                self.statistics.on_remove(table, stored.values)
                removable.append(row_key)
            if removable:
                store.remove_many(removable, now=self.clock.now())
                self.stats.rows_removed_by_policy += len(removable)

    # ------------------------------------------------------------------ maintenance

    def checkpoint(self, truncate_wal: bool = False) -> None:
        """Flush every table and the WAL; optionally truncate the log prefix.

        ``SCHED_CHECKPOINT`` chunk records snapshot the live due-queue
        (registrations, queued steps, deferrals, event waiters), followed by
        the CHECKPOINT marker carrying the heap page directory (table → page
        ids) so a reopened database can find its flushed pages again.  The
        marker comes last so a torn tail can never leave a marker without
        its chunks; truncation keeps from the first chunk, and recovery
        restores the snapshot then replays only the schedule records behind
        the marker.
        """
        self._require_writable()
        now = self.clock.now()
        try:
            for store in self.stores.values():
                store.flush()  # drains each heap's buffer pool to the pager
            self.pager.sync()
        except DurabilityError as exc:
            self._enter_read_only(str(exc))
            raise
        # The catalog snapshot is appended FIRST: truncation keeps from this
        # record on, so the log always carries the DDL state a bare recover()
        # needs, even after every older record is dropped.  (Engines with
        # unserializable custom schemes skip it and keep the legacy re-run-DDL
        # reopen protocol; truncation then anchors on the schedule snapshot.)
        anchor = None
        payload = self._encode_catalog_snapshot()
        if payload is not None:
            anchor = self.wal.append(LogRecordType.CATALOG, 0, after=payload,
                                     timestamp=now)
        self._catalog_dirty = False
        # Snapshot chunks first (one record per chunk — large queues exceed
        # the record codec's field cap), then the CHECKPOINT marker: in an
        # append-only log a torn tail chops everything from the first torn
        # record on, so a surviving marker *proves* its chunks survived too.
        # Recovery treats the marker as the snapshot's commit record and
        # falls back to the previous checkpoint when it is missing.
        for chunk in self.scheduler.snapshot(now).chunked():
            record = self.wal.append(
                LogRecordType.SCHED_CHECKPOINT, txn_id=0,
                after=encode_record(chunk.to_fields()),
                timestamp=now,
            )
            if anchor is None:
                anchor = record
        marker = self.wal.append(
            LogRecordType.CHECKPOINT, txn_id=0,
            after=encode_page_directory({
                table: store.heap.page_ids()
                for table, store in self.stores.items()
            }),
            timestamp=now,
        )
        if anchor is None:
            anchor = marker
        self._flush_wal()
        if truncate_wal:
            # Keep the catalog snapshot (and, behind it, the schedule chunks
            # and their marker) together.
            try:
                self.wal.truncate_until(anchor.lsn - 1)
            except DurabilityError as exc:
                self._enter_read_only(str(exc))
                raise
        self.stats.checkpoints += 1

    def close(self) -> None:
        """Clean shutdown: checkpoint (including the schedule snapshot),
        flush the WAL and release the pager.

        In read-only degraded mode the checkpoint is skipped (it would write)
        and a failing final WAL flush is tolerated — everything durably
        committed is already on disk, and the next recover() replays the rest.
        """
        invariants.assert_engine_thread(self)
        if self._read_only_reason is None:
            try:
                self.checkpoint()
            except DurabilityError:  # reprolint: disable=no-swallowed-io-error -- close() must release the WAL and pager even when the final checkpoint hits the failing device; the engine is read-only now and recover() replays what the checkpoint could not flush
                pass
        try:
            self.wal.close()
        except DurabilityError as exc:
            self._enter_read_only(str(exc))
        self.pager.close()

    # ------------------------------------------------------------------ recovery

    def recover(self, drain: bool = True) -> EngineRecovery:
        """Recover data *and* the degradation schedule from the WAL.

        A true one-call reopen: the catalog itself is restored from the last
        ``CATALOG`` record in the log (domains, policies, tables, purposes,
        indexes, per-tuple overrides), so callers no longer re-run DDL before
        recovering.  Callers that *did* re-register their DDL (the historic
        protocol) are still supported — a non-empty catalog skips the
        restore.  Recovery also clears read-only degraded mode: the log on
        disk is the recovered truth, so writes may resume.  Phases:

        0. catalog restore from the last CATALOG record (when needed);
        1. classic redo/undo over the table stores
           (:class:`~repro.txn.recovery.RecoveryManager`);
        2. schedule replay — the last ``SCHED_CHECKPOINT`` snapshot plus the
           schedule records behind it rebuild the due-queue, resolving each
           registration's policy from the catalog and dropping records whose
           row no longer exists;
        3. a simulated clock is fast-forwarded to the latest timestamp the
           log proves had been reached (a wall clock moved on by itself);
        4. with ``drain=True`` (default), every step that came due while the
           process was down is applied immediately through the normal batched
           pipeline — the paper's timeliness promise, restored across
           restarts.
        """
        columnar: List[str] = []
        if not self.catalog.tables() and not self.registry.domains():
            snapshot = latest_catalog_snapshot(self.wal)
            if snapshot is not None:
                columnar = restore_catalog(self, snapshot)
        manager = RecoveryManager(self.wal, dict(self.stores))
        report = manager.recover()
        last_timestamp = 0.0
        max_txn_id = 0
        for record in self.wal:
            last_timestamp = max(last_timestamp, record.timestamp)
            max_txn_id = max(max_txn_id, record.txn_id)
        # Never reuse a transaction id that appears in the recovered log: a
        # fresh id counter colliding with an old loser would make that loser
        # look committed to the next recovery pass.
        self.transactions.resume_after(max_txn_id)
        schedule = manager.replay_schedule(self.scheduler,
                                           self._resolve_tuple_lcp,
                                           recovery_report=report)
        # Secondary indexes were created against stores that were still
        # empty; rebuild them from the recovered rows before anything (the
        # catch-up drain included) queries or maintains them.
        self._rebuild_indexes()
        # Columnar mirrors are derived state: re-attach them only now that
        # the heap holds the recovered rows.
        for name in columnar:
            if name in self.stores:
                self._store_for(name).columnarize()
                self.catalog.set_columnar(name)
        # The resolver caches per-record policies eagerly; keep only those
        # that ended up registered (mirrors live completion bookkeeping).
        for record_id in list(self._tuple_lcps):
            if not self.scheduler.is_registered(record_id):
                del self._tuple_lcps[record_id]
        was_enabled = self.daemon.enabled
        self.daemon.pause()
        try:
            if isinstance(self.clock, SimulatedClock) and \
                    self.clock.now() < last_timestamp:
                self.clock.advance_to(last_timestamp)
        finally:
            if was_enabled:
                self.daemon.resume()
        # Recovery re-establishes the log as the single source of truth, so
        # read-only degraded mode (and any fault backoff) ends here.
        self._read_only_reason = None
        self._fault_backoff.clear()
        applied: List[DegradationStep] = []
        if drain:
            applied = self.daemon.catch_up(self.clock.now())
        # Make recovery's own log writes durable (redo may allocate heap
        # pages and append PAGE_ALLOC records; losing them to a crash before
        # the next commit would orphan pages that still hold accurate rows).
        self._flush_wal()
        return EngineRecovery(
            recovery=report,
            schedule=schedule,
            registrations=self.scheduler.registered_count(),
            overdue_steps_applied=len(applied),
            recovered_to=self.clock.now(),
        )

    def _rebuild_indexes(self) -> int:
        """Repopulate every catalog index — and the table statistics — from
        its recovered store.

        Each index structure is re-instantiated (in place on its
        :class:`IndexInfo`, so cached plans keep working) and refilled with
        one scan per table; the same scan rebuilds the table's statistics
        exactly.  The WAL cannot replay statistics: the accurate value images
        degradation scrubbed are gone by design, so the recovered heap is the
        only source.  Returns the number of indexes rebuilt.
        """
        rebuilt = 0
        for info in self.catalog.tables():
            store = self.stores.get(info.name)
            if store is None:
                continue
            table_stats = self.statistics.table(info.name)
            if table_stats is not None:
                table_stats.reset()
            for index_info in info.indexes.values():
                index_info.index = ddl.build_index(
                    ast.CreateIndex(name=index_info.name, table=info.name,
                                    column=index_info.column,
                                    method=index_info.method),
                    info.schema, self.registry)
                rebuilt += 1
            if not info.indexes and table_stats is None:
                continue
            for stored in store.scan():
                if info.indexes:
                    self._index_insert(info, stored)
                if table_stats is not None:
                    table_stats.on_insert(stored.values)
        return rebuilt

    def _resolve_tuple_lcp(self, record_id: Any,
                           policy_names: Optional[Dict[str, str]] = None
                           ) -> Optional[TupleLCP]:
        """Schedule-replay resolver: record id -> live TupleLCP, or None.

        ``None`` drops the registration: the row vanished (removed, deleted,
        or its insert was undone as a loser) or its table/policy is no longer
        part of the catalog.  ``policy_names`` (persisted at registration
        time) takes precedence over selector-based resolution — the stored
        selector value may have been degraded or updated since, which would
        silently pick the wrong automaton for per-tuple overrides.
        """
        table, row_key = record_id
        store = self.stores.get(table)
        if store is None or not store.exists(row_key):
            return None
        try:
            info = self.catalog.table(table)
        except CatalogError:
            return None
        if info.policy is None or not info.policy.has_degradable_columns():
            return None
        tuple_lcp = self._tuple_lcp_from_names(info, policy_names)
        if tuple_lcp is None:
            selector_value = None
            if info.policy.selector_column is not None:
                selector_value = store.read(row_key).values.get(
                    info.policy.selector_column)
            tuple_lcp = info.policy.tuple_lcp(selector_value)
        self._tuple_lcps[(table, row_key)] = tuple_lcp
        return tuple_lcp

    def _tuple_lcp_from_names(self, info,
                              policy_names: Optional[Dict[str, str]]
                              ) -> Optional[TupleLCP]:
        """Rebuild a TupleLCP from persisted policy names, if they resolve.

        Names are looked up in the registry first, then among the table's
        per-tuple overrides (whose policies need not be registered).  Any
        miss or attribute mismatch falls back to selector-based resolution.
        """
        if not policy_names:
            return None
        expected = {column.name for column in info.schema.degradable_columns()}
        if set(policy_names) != expected:
            return None
        resolved: Dict[str, AttributeLCP] = {}
        for attribute, name in policy_names.items():
            try:
                resolved[attribute] = self.registry.policy(name)
                continue
            except CatalogError:
                pass  # not a registered policy — try per-tuple overrides
            found = None
            for override in info.policy.per_tuple_policies.values():
                candidate = override.get(attribute)
                if candidate is not None and candidate.name == name:
                    found = candidate
                    break
            if found is None:
                return None
            resolved[attribute] = found
        return TupleLCP(resolved)

    # ------------------------------------------------------------------ introspection

    def tables(self) -> List[str]:
        return [info.name for info in self.catalog.tables()]

    def row_count(self, table: str) -> int:
        return self._store_for(table).row_count

    def visible_rows(self, table: str,
                     purpose: Union[None, str, Purpose] = None) -> List[Dict[str, Any]]:
        """``SELECT *`` convenience returning dictionaries."""
        result = self.execute(f"SELECT * FROM {table}", purpose=purpose)
        return result.to_dicts()

    def level_histogram(self, table: str, column: str) -> Dict[int, int]:
        """Number of live rows per stored accuracy level of ``column``."""
        store = self._store_for(table)
        histogram: Dict[int, int] = {}
        for stored in store.scan():
            level = stored.levels.get(column.lower(), 0)
            histogram[level] = histogram.get(level, 0) + 1
        return histogram

    def forensic_image(self) -> bytes:
        """Every byte the engine holds: pages, WAL and index keys.

        The WAL contribution redacts CATALOG documents — they carry the
        domain ontology (every value the schema *admits*), which exists
        independently of any inserted tuple; see
        :meth:`~repro.storage.wal.WriteAheadLog.forensic_image`.
        """
        parts = [store.forensic_image() for store in self.stores.values()]
        for info in self.catalog.tables():
            for index_info in info.indexes.values():
                parts.append(index_info.index.raw_image())
        return b"\x00".join(parts)

    def describe(self) -> str:
        lines = [f"InstantDB (strategy={self.strategy}, clock={type(self.clock).__name__})"]
        for info in self.catalog.tables():
            lines.append(info.schema.describe())
            if info.policy is not None:
                lines.append(info.policy.describe())
            for index_info in info.indexes.values():
                lines.append(
                    f"  index {index_info.name} on {info.name}({index_info.column}) "
                    f"using {index_info.method}"
                )
        for purpose in self.catalog.purposes():
            lines.append(purpose.describe())
        return "\n".join(lines)


__all__ = ["InstantDB", "EngineStats", "EngineRecovery"]
