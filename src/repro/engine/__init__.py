"""Engine facade: the InstantDB database, DDL handling and the degradation daemon."""

from .daemon import DaemonStats, DegradationDaemon
from .database import EngineRecovery, EngineStats, InstantDB
from .ddl import INDEX_METHODS, build_index, build_schema, build_table_policy

__all__ = [
    "InstantDB", "EngineStats", "EngineRecovery",
    "DegradationDaemon", "DaemonStats",
    "build_schema", "build_table_policy", "build_index", "INDEX_METHODS",
]
