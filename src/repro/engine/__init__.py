"""Engine facade: the InstantDB database, DDL handling and the degradation daemon."""

from .daemon import DaemonStats, DegradationDaemon
from .database import EngineStats, InstantDB
from .ddl import INDEX_METHODS, build_index, build_schema, build_table_policy

__all__ = [
    "InstantDB", "EngineStats",
    "DegradationDaemon", "DaemonStats",
    "build_schema", "build_table_policy", "build_index", "INDEX_METHODS",
]
