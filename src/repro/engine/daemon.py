"""The degradation daemon.

The daemon is the component that turns the scheduler's due steps into actual
storage mutations, *timely*.  It can be driven in two ways:

* attached to a :class:`~repro.core.clock.SimulatedClock`, it runs after every
  clock advancement (the mode used by tests, examples and benchmarks);
* polled explicitly through :meth:`DegradationDaemon.run_pending`, which is
  what a wall-clock deployment would call from a background thread or timer.

The daemon delegates the physical work to the engine-provided applier and
tracks timeliness statistics through the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..core.clock import Clock, SimulatedClock
from ..core.scheduler import DegradationScheduler, DegradationStep


@dataclass
class DaemonStats:
    invocations: int = 0
    steps_applied: int = 0
    batches: int = 0


class DegradationDaemon:
    """Drives the degradation scheduler against the engine."""

    def __init__(self, clock: Clock, scheduler: DegradationScheduler,
                 applier: Callable[[DegradationStep], bool],
                 on_complete: Optional[Callable[[object], None]] = None,
                 auto_attach: bool = True) -> None:
        self.clock = clock
        self.scheduler = scheduler
        self.applier = applier
        self.on_complete = on_complete
        self.stats = DaemonStats()
        self._enabled = True
        if auto_attach and isinstance(clock, SimulatedClock):
            clock.on_advance(self._on_clock_advance)

    # -- control ----------------------------------------------------------------

    def pause(self) -> None:
        """Stop applying steps (used by tests that want to observe lag)."""
        self._enabled = False

    def resume(self) -> None:
        self._enabled = True

    @property
    def enabled(self) -> bool:
        return self._enabled

    # -- running -----------------------------------------------------------------

    def _on_clock_advance(self, now: float) -> None:
        if self._enabled:
            self.run_pending(now)

    def run_pending(self, now: Optional[float] = None) -> List[DegradationStep]:
        """Apply every step due at or before ``now`` (defaults to the clock)."""
        if now is None:
            now = self.clock.now()
        self.stats.invocations += 1
        applied = self.scheduler.run_due(now, self.applier, on_complete=self.on_complete)
        if applied:
            self.stats.batches += 1
            self.stats.steps_applied += len(applied)
        return applied

    def next_due(self) -> Optional[float]:
        return self.scheduler.peek_next_due()

    def backlog(self, now: Optional[float] = None) -> int:
        """Number of steps overdue at ``now`` (timeliness measure)."""
        if now is None:
            now = self.clock.now()
        count = 0
        next_due = self.scheduler.peek_next_due()
        if next_due is None or next_due > now:
            return 0
        # peek_next_due only exposes the earliest step; count by draining a copy
        # of the due set lazily through the scheduler's public API would apply
        # them, so report a conservative indicator instead.
        for _due, _seq, step in self.scheduler._heap:  # noqa: SLF001 - diagnostic only
            registration = self.scheduler._registrations.get(step.record_id)  # noqa: SLF001
            if registration is None:
                continue
            if registration.current_states.get(step.attribute) != step.from_state:
                continue
            if _due <= now:
                count += 1
        return count


__all__ = ["DegradationDaemon", "DaemonStats"]
