"""The degradation daemon.

The daemon is the component that turns the scheduler's due steps into actual
storage mutations, *timely*.  It can be driven in two ways:

* attached to a :class:`~repro.core.clock.SimulatedClock`, it runs after every
  clock advancement (the mode used by tests, examples and benchmarks);
* polled explicitly through :meth:`DegradationDaemon.run_pending`, which is
  what a wall-clock deployment would call from a background thread or timer.

Two application pipelines exist:

* **batched** (the default when the engine provides a ``batch_applier``) —
  due steps are drained through
  :meth:`~repro.core.scheduler.DegradationScheduler.run_due_batched`, grouped
  per table, so a mass-expiry wave pays one system transaction, one exclusive
  table lock, one coalesced page-flush pass and one durable WAL flush per
  batch instead of per step.  Records that reach their final tuple state are
  collected and handed to ``on_complete_batch`` in one call, letting the
  engine scrub and remove them in bulk as well.
* **per-step** (``batch_applier=None``) — the original one-step-one-
  transaction path, kept as the measurable baseline and for appliers that
  cannot batch.

``max_batch`` bounds how many steps each scheduler drain round may pop: a
backlog of 100k overdue steps is then applied in 100k/``max_batch`` chunks,
each with its own short-lived lock and WAL flush, so readers interleave with
a draining backlog instead of stalling behind one giant system transaction.
``None`` (the default) applies each wave as a single batch per table.

The daemon delegates the physical work to the engine-provided applier(s) and
tracks timeliness statistics through the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..core.clock import Clock, SimulatedClock
from ..core.scheduler import BatchApplier, DegradationScheduler, DegradationStep


@dataclass
class DaemonStats:
    invocations: int = 0
    steps_applied: int = 0
    batches: int = 0
    #: Steps applied by post-recovery catch-up drains (overdue at restart).
    catch_up_steps: int = 0
    #: Steps pushed back onto the schedule because their wave hit a transient
    #: durability fault; they retry with exponential backoff.
    steps_deferred_by_fault: int = 0


class DegradationDaemon:
    """Drives the degradation scheduler against the engine."""

    def __init__(self, clock: Clock, scheduler: DegradationScheduler,
                 applier: Callable[[DegradationStep], bool],
                 on_complete: Optional[Callable[[object], None]] = None,
                 auto_attach: bool = True,
                 batch_applier: Optional[BatchApplier] = None,
                 on_complete_batch: Optional[Callable[[List[object]], None]] = None,
                 max_batch: Optional[int] = None) -> None:
        self.clock = clock
        self.scheduler = scheduler
        self.applier = applier
        self.on_complete = on_complete
        self.batch_applier = batch_applier
        self.on_complete_batch = on_complete_batch
        #: Upper bound on steps popped per drain round (``None`` = unbounded).
        self.max_batch = max_batch
        self.stats = DaemonStats()
        self._enabled = True
        if auto_attach and isinstance(clock, SimulatedClock):
            clock.on_advance(self._on_clock_advance)

    # -- control ----------------------------------------------------------------

    def pause(self) -> None:
        """Stop applying steps (used by tests that want to observe lag)."""
        self._enabled = False

    def resume(self) -> None:
        self._enabled = True

    @property
    def enabled(self) -> bool:
        return self._enabled

    # -- running -----------------------------------------------------------------

    def _on_clock_advance(self, now: float) -> None:
        if self._enabled:
            self.run_pending(now)

    def run_pending(self, now: Optional[float] = None) -> List[DegradationStep]:
        """Apply every step due at or before ``now`` (defaults to the clock)."""
        if now is None:
            now = self.clock.now()
        self.stats.invocations += 1
        if self.batch_applier is not None:
            applied = self._run_batched(now)
        else:
            applied = self.scheduler.run_due(now, self.applier,
                                             on_complete=self.on_complete)
            if applied:
                self.stats.batches += 1
        self.stats.steps_applied += len(applied)
        return applied

    def _run_batched(self, now: float) -> List[DegradationStep]:
        def counting_applier(key, steps):
            result = self.batch_applier(key, steps)
            if result:
                self.stats.batches += 1
            return result

        completed: List[object] = []
        applied = self.scheduler.run_due_batched(
            now, counting_applier, on_complete=completed.append,
            max_batch=self.max_batch)
        if completed:
            if self.on_complete_batch is not None:
                self.on_complete_batch(completed)
            elif self.on_complete is not None:
                for record_id in completed:
                    self.on_complete(record_id)
        return applied

    def catch_up(self, now: Optional[float] = None) -> List[DegradationStep]:
        """Drain every step that came due while the process was down.

        Called by :meth:`InstantDB.recover` after the schedule has been
        reconstructed from the WAL: the backlog drains through the normal
        pipeline (batched when a ``batch_applier`` is configured, chunked by
        ``max_batch``), so a restart after a long outage pays the same
        amortized cost as a live mass-expiry wave.  The applied steps are also
        counted separately in :attr:`DaemonStats.catch_up_steps` so benchmarks
        can report post-restart degradation lag.
        """
        applied = self.run_pending(now)
        self.stats.catch_up_steps += len(applied)
        return applied

    def next_due(self) -> Optional[float]:
        return self.scheduler.peek_next_due()

    def backlog(self, now: Optional[float] = None) -> int:
        """Number of steps overdue at ``now`` (timeliness measure)."""
        if now is None:
            now = self.clock.now()
        return self.scheduler.overdue_count(now)


__all__ = ["DegradationDaemon", "DaemonStats"]
