"""Transactions and the transaction manager.

User transactions follow the classic begin / operate / commit-or-abort
protocol with strict 2PL and WAL logging.  Degradation introduces the twist
the paper discusses under "How does data degradation impact transaction
semantics?": an insert's effects keep changing after commit (the degradation
steps), so durability applies to the *policy-compliant* state of the data, not
to the accurate values themselves.  Concretely:

* degradation steps run as short system transactions (``system=True``) so they
  serialize against readers through the same lock manager;
* undo of an aborted user transaction never restores an accurate image that a
  degradation step already destroyed — undo actions are captured as closures
  at operation time and become no-ops if the row has moved on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from ..core.errors import DurabilityError, TransactionAborted, TransactionError
from ..storage.wal import LogRecordType, WriteAheadLog
from .locks import LockManager, LockMode


class TransactionState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


#: An undo action registered by the engine; called in reverse order on abort.
UndoAction = Callable[[], None]


@dataclass
class Transaction:
    """One transaction's book-keeping."""

    txn_id: int
    system: bool = False
    state: TransactionState = TransactionState.ACTIVE
    undo_actions: List[UndoAction] = field(default_factory=list)
    started_at: float = 0.0

    def require_active(self) -> None:
        if self.state is not TransactionState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}, not active"
            )

    def on_abort(self, action: UndoAction) -> None:
        """Register an undo action (engine-level logical undo)."""
        self.require_active()
        self.undo_actions.append(action)


@dataclass
class TransactionStats:
    begun: int = 0
    committed: int = 0
    aborted: int = 0
    system_begun: int = 0
    reader_degrader_conflicts: int = 0
    #: Aborts whose ABORT record could not be made durable (the abort itself
    #: still completed in memory; recovery undoes the loser from the log).
    abort_flush_failures: int = 0
    #: Aborts where an undo action hit the failing storage device.  The abort
    #: still completes (locks released, transaction deregistered) — recovery
    #: discards any transaction without a durable COMMIT — but the in-memory
    #: image may be stale until :meth:`InstantDB.recover` rebuilds it.
    undo_failures: int = 0


class TransactionManager:
    """Creates transactions, drives commit/abort, and owns the lock manager."""

    def __init__(self, wal: WriteAheadLog, lock_manager: Optional[LockManager] = None) -> None:
        self.wal = wal
        self.locks = lock_manager or LockManager()
        self._next_txn_id = 1
        self._active: Dict[int, Transaction] = {}
        self.stats = TransactionStats()
        #: Engine hook: called with the :class:`DurabilityError` when an undo
        #: action fails during abort, after the abort's bookkeeping completed.
        #: The engine uses it to flip into read-only degraded mode.
        self.on_undo_failure: Optional[Callable[[DurabilityError], None]] = None

    # -- lifecycle -----------------------------------------------------------

    def begin(self, system: bool = False, now: float = 0.0) -> Transaction:
        txn = Transaction(txn_id=self._next_txn_id, system=system, started_at=now)
        self._next_txn_id += 1
        self._active[txn.txn_id] = txn
        self.wal.append(LogRecordType.BEGIN, txn.txn_id, timestamp=now)
        self.stats.begun += 1
        if system:
            self.stats.system_begun += 1
        return txn

    def commit(self, txn: Transaction, now: float = 0.0) -> None:
        txn.require_active()
        self.wal.append(LogRecordType.COMMIT, txn.txn_id, timestamp=now)
        self.wal.flush()
        txn.state = TransactionState.COMMITTED
        txn.undo_actions.clear()
        self.locks.release_all(txn.txn_id)
        self._active.pop(txn.txn_id, None)
        self.stats.committed += 1

    def abort(self, txn: Transaction, now: float = 0.0,
              reason: str = "explicit rollback") -> None:
        if txn.state is TransactionState.ABORTED:
            return
        txn.require_active()
        undo_failure: Optional[DurabilityError] = None
        for action in reversed(txn.undo_actions):
            try:
                action()
            except DurabilityError as exc:
                # The physical undo hit the failing device.  Keep going and
                # finish the abort's bookkeeping regardless: bailing out here
                # would leak this transaction's locks and wedge the engine,
                # while recovery discards every transaction without a durable
                # COMMIT, so the on-disk truth is safe either way.  The engine
                # is told (via ``on_undo_failure``) so it degrades to
                # read-only until ``recover()`` rebuilds the in-memory image.
                if undo_failure is None:
                    undo_failure = exc
                self.stats.undo_failures += 1
        txn.undo_actions.clear()
        self.wal.append(LogRecordType.ABORT, txn.txn_id, timestamp=now)
        try:
            self.wal.flush()
        except DurabilityError:
            # The abort must complete even when the log device is failing:
            # recovery treats any transaction without a durable COMMIT as a
            # loser and undoes it, so a lost ABORT record costs nothing, while
            # bailing out here would leak this transaction's locks and wedge
            # the engine.  The ABORT record stays buffered and rides the next
            # healthy flush.
            self.stats.abort_flush_failures += 1
        txn.state = TransactionState.ABORTED
        self.locks.release_all(txn.txn_id)
        self._active.pop(txn.txn_id, None)
        self.stats.aborted += 1
        if undo_failure is not None and self.on_undo_failure is not None:
            self.on_undo_failure(undo_failure)

    def resume_after(self, txn_id: int) -> None:
        """Ensure future transaction ids are greater than ``txn_id``.

        Called by recovery after reopening a WAL: a fresh manager restarts its
        id counter at 1, and reusing an id that appears in the recovered log
        would make an old loser transaction look committed to the *next*
        recovery pass.
        """
        self._next_txn_id = max(self._next_txn_id, int(txn_id) + 1)

    # -- locking helpers --------------------------------------------------------

    def lock_shared(self, txn: Transaction, resource: Any) -> bool:
        txn.require_active()
        return self.locks.acquire(txn.txn_id, resource, LockMode.SHARED)

    def lock_exclusive(self, txn: Transaction, resource: Any) -> bool:
        txn.require_active()
        return self.locks.acquire(txn.txn_id, resource, LockMode.EXCLUSIVE)

    def note_reader_degrader_conflict(self) -> None:
        """Called by the engine when a degradation step had to wait for a reader
        (or vice versa) — the C1 benchmark's conflict counter."""
        self.stats.reader_degrader_conflicts += 1

    # -- introspection -------------------------------------------------------------

    def active_transactions(self) -> List[Transaction]:
        return list(self._active.values())

    def is_active(self, txn_id: int) -> bool:
        return txn_id in self._active

    def run_atomically(self, work: Callable[[Transaction], Any],
                       system: bool = False, now: float = 0.0) -> Any:
        """Run ``work`` in a fresh transaction, committing on success and
        aborting (then re-raising) on failure."""
        txn = self.begin(system=system, now=now)
        try:
            result = work(txn)
        except BaseException:
            self.abort(txn, now=now, reason="exception during atomic block")
            raise
        self.commit(txn, now=now)
        return result


__all__ = ["Transaction", "TransactionManager", "TransactionState",
           "TransactionStats", "UndoAction"]
