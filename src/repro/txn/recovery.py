"""Crash recovery that never resurrects degraded data.

A conventional ARIES recovery replays the log and undoes losers using the
before-images it finds there.  In a degradation-aware engine that is exactly
the threat the paper warns about: a before-image of an already-degraded value
is an accurate copy that must not come back.  The :class:`RecoveryManager`
therefore implements a redo/undo pass with two degradation-specific rules:

1. ``DEGRADE`` and ``REMOVE`` records are always *redone*, even for loser
   transactions (degradation is a system action, not part of user atomicity);
2. undo uses logical before-images only for stable-attribute updates; if a
   before-image was scrubbed (``None``) the undo is skipped — privacy wins over
   exact rollback, as argued in §III of the paper.

Besides the data, recovery reconstructs the **degradation schedule**:
:meth:`RecoveryManager.replay_schedule` restores the last ``SCHED_CHECKPOINT``
snapshot (written on clean shutdown) and replays the schedule records behind
it — committed registrations, applied steps, deferrals and event firings —
into a :class:`~repro.core.scheduler.DegradationScheduler`, so steps that came
due while the process was down are overdue (not lost) after a restart.  See
``docs/durability.md`` for the full protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ..core.errors import RecoveryError
from ..core.scheduler import DegradationScheduler, LCPResolver, SchedulerSnapshot
from ..storage.degradable_store import TableStore
from ..storage.serialization import decode_record
from ..storage.wal import (
    LogRecord,
    LogRecordType,
    WriteAheadLog,
    decode_page_directory,
    decode_policy_names,
    decode_schedule_defers,
    decode_schedule_steps,
    decode_segment_degrade,
)

#: Record types that replay deliberately ignores, with the reason on record.
#: Every other :class:`LogRecordType` must be dispatched somewhere in this
#: module — the *wal-exhaustive* reprolint rule fails the build otherwise
#: (see the new-record-type checklist in docs/invariants.md).
_REPLAY_IGNORED = frozenset({
    # SCRUB is the audit trail of a log-scrubbing action.  Its *effect* (the
    # nulled before/after images) is already persisted in the rewritten log
    # records themselves, so replay has nothing to apply; re-running it would
    # only re-count an action that already happened.
    LogRecordType.SCRUB,
    # CATALOG carries a DDL snapshot consumed *before* data replay by
    # InstantDB.recover (engine/catalog_io.latest_catalog_snapshot); by the
    # time RecoveryManager runs, the tables it describes already exist, so
    # the data passes have nothing to do with it.
    LogRecordType.CATALOG,
})


@dataclass
class RecoveryReport:
    """Summary of a recovery pass (asserted on by the crash tests)."""

    committed_txns: Set[int] = field(default_factory=set)
    loser_txns: Set[int] = field(default_factory=set)
    redone_inserts: int = 0
    redone_degrades: int = 0
    #: SEGMENT_DEGRADE chunk records dispatched during redo (columnar waves).
    redone_segment_chunks: int = 0
    redone_removes: int = 0
    redone_updates: int = 0
    undone_inserts: int = 0
    undone_updates: int = 0
    skipped_undos: int = 0
    #: Full forward iterations over the WAL spent *preparing* recovery
    #: (transaction analysis, drop epochs, page directory, row-key highs).
    #: Exactly 1 by construction — the fused :meth:`RecoveryManager._prepare`
    #: pass — and asserted on by the recovery tests.
    wal_prep_passes: int = 0


@dataclass
class ScheduleReplayReport:
    """Summary of a degradation-schedule replay pass."""

    #: LSN of the snapshot the replay started from (0 = no snapshot found,
    #: full replay from the start of the log).
    snapshot_lsn: int = 0
    #: Registrations restored from the snapshot.
    snapshot_restored: int = 0
    #: Registrations replayed from SCHED_REGISTER records behind the snapshot.
    registrations_replayed: int = 0
    #: Registrations whose row or policy no longer resolves (dropped).
    registrations_dropped: int = 0
    steps_replayed: int = 0
    events_replayed: int = 0
    defers_replayed: int = 0


class RecoveryManager:
    """Replays a WAL against a set of :class:`TableStore` objects."""

    def __init__(self, wal: WriteAheadLog, stores: Dict[str, TableStore]) -> None:
        self.wal = wal
        self.stores = stores
        #: Per-table LSN of the last TABLE_DROP marker.  Records at or before
        #: it belong to a dropped incarnation of the table and are skipped:
        #: for a name absent from the catalog that avoids a spurious
        #: unknown-table error; for a re-created name it stops old-epoch
        #: removals from deleting the new table's rows (keys are reused).
        self._drop_lsns: Dict[str, int] = {}
        #: Transaction analysis (winners / losers at the crash point).
        self._committed: Set[int] = set()
        self._losers: Set[int] = set()
        #: Table → heap page ids (last CHECKPOINT directory + PAGE_ALLOC tail).
        self._page_directory: Dict[str, List[int]] = {}
        #: Table → highest row key the surviving log mentions.
        self._highest_row_keys: Dict[str, int] = {}
        #: Full forward WAL iterations spent preparing recovery — exactly one.
        self.wal_prep_passes = 0
        self._prepare()

    # -- preparation (the single forward pass) ---------------------------------

    def _prepare(self) -> None:
        """One fused forward pass over the log.

        Historically four separate iterations (drop-epoch scan, transaction
        analysis, page-directory restore, row-key reservation) each walked the
        full record list.  They fold into one because every
        drop-epoch-dependent decision can be made *incrementally*: a
        ``TABLE_DROP`` simply discards whatever state its table accumulated so
        far (directory pages, row-key high), which is exactly what filtering
        by the final drop LSN would have removed afterwards.
        """
        self.wal_prep_passes += 1
        begun: Set[int] = set()
        committed: Set[int] = set()
        highest = self._highest_row_keys
        for record in self.wal:
            record_type = record.record_type
            if record_type is LogRecordType.BEGIN:
                begun.add(record.txn_id)
                continue
            if record_type is LogRecordType.COMMIT:
                committed.add(record.txn_id)
                continue
            if record_type is LogRecordType.ABORT:
                # Aborted transactions were rolled back before the crash (their
                # undo is already reflected); they are neither winners nor losers.
                # The last control record wins: a COMMIT *followed by* an ABORT
                # means the commit's durable flush failed and the engine rolled
                # the transaction back (reporting failure to the client), so
                # redoing it as a winner would resurrect work every live reader
                # already saw undone.
                begun.discard(record.txn_id)
                committed.discard(record.txn_id)
                continue
            if record_type is LogRecordType.TABLE_DROP:
                # Everything this table accumulated belongs to the dropped
                # incarnation; a re-created table rebuilds its state from the
                # newer-epoch records that follow.
                self._drop_lsns[record.table] = record.lsn
                self._page_directory.pop(record.table, None)
                highest.pop(record.table, None)
                continue
            if record_type is LogRecordType.CHECKPOINT:
                if record.after is not None:
                    # The directory payload supersedes everything before it;
                    # entries of tables dropped later are removed by the
                    # TABLE_DROP branch above as those records stream past.
                    self._page_directory = decode_page_directory(record.after)
                continue
            if record_type is LogRecordType.PAGE_ALLOC:
                # The row-key field holds a page id, not a row key.
                self._page_directory.setdefault(record.table, []).append(
                    record.row_key)
                continue
            if record.table and record.row_key >= 0 and \
                    record_type is not LogRecordType.SEGMENT_DEGRADE:
                # SEGMENT_DEGRADE's row-key field holds a segment id; the rows
                # it lists are covered by their own INSERT records.
                if record.row_key > highest.get(record.table, 0):
                    highest[record.table] = record.row_key
        self._committed = committed
        self._losers = begun - committed

    # -- recovery -----------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Rebuild row maps, redo winner work and degradation, undo losers."""
        report = RecoveryReport(committed_txns=set(self._committed),
                                loser_txns=set(self._losers))
        self._restore_page_directories()
        for store in self.stores.values():
            store.rebuild_locations()
        self._redo(report)
        self._undo(report)
        self._reserve_row_keys()
        for store in self.stores.values():
            store.flush()
        report.wal_prep_passes = self.wal_prep_passes
        return report

    def _reserve_row_keys(self) -> None:
        """Advance each store's key counter past every key the log mentions.

        Rebuilding from live rows alone would re-issue keys freed by
        removals; a reused key would collide with the old incarnation's
        surviving REMOVE records on the next recovery and delete the new
        row.  The per-table highs come from the prepare pass (PAGE_ALLOC and
        SEGMENT_DEGRADE records excluded — their row-key fields hold page and
        segment ids — as are records of dropped epochs).
        """
        for table, row_key in self._highest_row_keys.items():
            store = self.stores.get(table)
            if store is not None:
                store.reserve_row_keys_after(row_key)

    def _restore_page_directories(self) -> None:
        """Re-attach heap pages to their tables before scanning them.

        Page ownership is durable as the last CHECKPOINT record's directory
        payload plus the PAGE_ALLOC records behind it (assembled by the
        prepare pass).  Freshly opened stores own no pages, so without this
        step every row that exists only on a flushed page (all degraded rows
        — their log images are scrubbed) would be unreachable.
        """
        for table, page_ids in self._page_directory.items():
            store = self.stores.get(table)
            if store is None:
                # A dropped table's allocation records may outlive it in the
                # log; its pages have no store to attach to — skip them (the
                # schedule replay drops such tables' registrations the same
                # way) rather than make every other table unrecoverable.
                continue
            store.heap.adopt_pages(page_ids)

    def _old_epoch(self, record: LogRecord) -> bool:
        """Whether ``record`` predates the last drop of its table."""
        return record.lsn <= self._drop_lsns.get(record.table, 0)

    def _store_for(self, record: LogRecord) -> Optional[TableStore]:
        if not record.table:
            return None
        store = self.stores.get(record.table)
        if store is None:
            if record.table in self._drop_lsns:
                return None
            raise RecoveryError(f"log references unknown table {record.table!r}")
        if self._old_epoch(record):
            return None
        return store

    def _redo(self, report: RecoveryReport) -> None:
        # System txn id 0 (degradation daemon bookkeeping) is always redone.
        for record in self.wal:
            store = self._store_for(record)
            if store is None:
                continue
            committed = record.txn_id in report.committed_txns or record.txn_id == 0
            if record.record_type is LogRecordType.INSERT:
                if committed and record.after is not None and not store.exists(record.row_key):
                    store.restore_row(record.after)
                    report.redone_inserts += 1
            elif record.record_type is LogRecordType.UPDATE:
                if committed and record.after is not None and store.exists(record.row_key):
                    store.restore_row(record.after)
                    report.redone_updates += 1
            elif record.record_type is LogRecordType.DELETE:
                if committed and store.exists(record.row_key):
                    store.replay_remove(record.row_key, now=record.timestamp)
            elif record.record_type is LogRecordType.DEGRADE:
                # Degradation is redone regardless of the surrounding user txn.
                if store.exists(record.row_key):
                    report.redone_degrades += self._redo_degrade(store, record)
            elif record.record_type is LogRecordType.SEGMENT_DEGRADE:
                # A columnar wave chunk: like DEGRADE, always redone.  The
                # record's row-key field is a segment id; the affected heap
                # rows are listed in the payload.
                if record.after is not None:
                    report.redone_degrades += \
                        self._redo_segment_degrade(store, record)
                    report.redone_segment_chunks += 1
            elif record.record_type is LogRecordType.REMOVE:
                if store.exists(record.row_key):
                    store.replay_remove(record.row_key, now=record.timestamp)
                    report.redone_removes += 1

    # -- schedule replay -------------------------------------------------------

    def replay_schedule(self, scheduler: DegradationScheduler,
                        resolve_lcp: LCPResolver,
                        recovery_report: Optional[RecoveryReport] = None
                        ) -> ScheduleReplayReport:
        """Reconstruct the degradation schedule from the log's SCHED records.

        Call after :meth:`recover` — the replay resolves registrations against
        the recovered stores (losers undone, removals redone), so
        ``resolve_lcp`` can simply drop ids whose row no longer exists.  The
        replay starts from the last ``SCHED_CHECKPOINT`` snapshot if one
        survives in the log (clean shutdowns write one, and checkpoint
        truncation keeps it), then applies the schedule tail behind it in LSN
        order.  Registrations and step applications belonging to uncommitted
        transactions are ignored: an unapplied step stays pending at its
        original due time and simply comes up overdue after the restart —
        never lost, never applied twice.
        """
        report = ScheduleReplayReport()
        # The winner set comes from the caller's recovery report when given,
        # else from the fused prepare pass — never from a fresh log iteration.
        committed = (recovery_report.committed_txns
                     if recovery_report is not None else self._committed)
        # Checkpoints append their snapshot chunks *before* the CHECKPOINT
        # marker: a torn tail chops the log from the first torn record on,
        # so a surviving marker proves the complete chunk run before it
        # survived as well.  The snapshot is therefore the contiguous run of
        # SCHED_CHECKPOINT records (same timestamp) immediately preceding
        # the *last* marker; chunks after it — a checkpoint whose marker was
        # lost — are orphans and are ignored, falling back to this one.
        records = self.wal.records()
        marker_index = None
        for index, record in enumerate(records):
            if record.record_type is LogRecordType.CHECKPOINT:
                marker_index = index
        chunks: List[LogRecord] = []
        if marker_index is not None:
            marker = records[marker_index]
            cursor = marker_index - 1
            while cursor >= 0:
                candidate = records[cursor]
                if candidate.record_type is not LogRecordType.SCHED_CHECKPOINT:
                    break
                if candidate.timestamp != marker.timestamp:
                    break
                chunks.append(candidate)
                cursor -= 1
            if chunks:
                report.snapshot_lsn = marker.lsn

        def epoch_resolver(record_id, policy_names=None):
            # Snapshot entries of a table dropped *after* the snapshot was
            # taken describe the old incarnation — drop them even when a
            # same-name table (with reused row keys) exists again.
            if isinstance(record_id, tuple) and record_id and \
                    self._drop_lsns.get(record_id[0], 0) > report.snapshot_lsn:
                return None
            return resolve_lcp(record_id, policy_names)

        for record in chunks:
            if record.after is None:
                continue
            snapshot = SchedulerSnapshot.from_fields(decode_record(record.after))
            restored = scheduler.restore_from(snapshot, epoch_resolver)
            report.snapshot_restored += restored
            report.registrations_dropped += (
                len(snapshot.registrations) - restored)
        for record in self.wal:
            if record.lsn <= report.snapshot_lsn:
                continue
            record_type = record.record_type
            if record.table and self._old_epoch(record):
                continue            # schedule records of a dropped incarnation
            if record_type is LogRecordType.SCHED_REGISTER:
                if record.txn_id != 0 and record.txn_id not in committed:
                    continue
                record_id = (record.table, record.row_key)
                if scheduler.is_registered(record_id):
                    continue
                policy_names = (decode_policy_names(record.after)
                                if record.after is not None else None)
                tuple_lcp = resolve_lcp(record_id, policy_names)
                if tuple_lcp is None:
                    report.registrations_dropped += 1
                    continue
                scheduler.register(record_id, tuple_lcp, record.timestamp)
                report.registrations_replayed += 1
            elif record_type is LogRecordType.SCHED_STEP:
                if record.txn_id != 0 and record.txn_id not in committed:
                    continue
                if record.after is None:
                    continue
                for row_key, attribute, to_state, due in \
                        decode_schedule_steps(record.after):
                    if scheduler.replay_applied((record.table, row_key),
                                                attribute, to_state, due):
                        report.steps_replayed += 1
            elif record_type is LogRecordType.SCHED_EVENT:
                scheduler.fire_event(record.attribute, record.timestamp)
                report.events_replayed += 1
            elif record_type is LogRecordType.SCHED_DEFER:
                if record.after is None:
                    continue
                report.defers_replayed += scheduler.replay_defers([
                    ((record.table, row_key), attribute, from_state, due, until)
                    for row_key, attribute, from_state, due, until
                    in decode_schedule_defers(record.after)
                ])
        return report

    @staticmethod
    def _redo_degrade(store: TableStore, record: LogRecord) -> int:
        """Ensure the stored state is at least the logged target state.

        The value itself cannot be recomputed from the log (no accurate image);
        instead the row is marked as already at the target state if it lags —
        the physical degradation is idempotent because the engine flushes the
        degraded page before logging commit of the system step.  Lagging states
        can only appear when the crash hit between the WAL append and the page
        flush; in that case the daemon re-degrades from the current (still more
        accurate than logged? no: equal or already degraded) value on restart.
        """
        row = store.read(record.row_key)
        target_level = int(decode_record(record.after)[0]) if record.after else None
        if target_level is None:
            return 0
        current = row.levels.get(record.attribute, 0)
        if current >= target_level:
            return 0
        # The page write was lost: the accurate value is still there, so the
        # degradation step is simply pending again.  Leave it to the daemon;
        # report it so tests can assert on the count.
        return 1

    @staticmethod
    def _redo_segment_degrade(store: TableStore, record: LogRecord) -> int:
        """Per-row lag check for one columnar wave chunk.

        Same contract as :meth:`_redo_degrade`, applied to every row key the
        chunk payload lists: rows whose stored level lags the logged target
        had their page write lost in the crash — they stay pending for the
        daemon (the value cannot come from the log, which carries no images).
        Returns the number of lagging rows.
        """
        to_level, row_keys = decode_segment_degrade(record.after)
        lagging = 0
        for row_key in row_keys:
            if not store.exists(row_key):
                continue
            row = store.read(row_key)
            if row.levels.get(record.attribute, 0) < to_level:
                lagging += 1
        return lagging

    def _undo(self, report: RecoveryReport) -> None:
        for record in reversed(self.wal.records()):
            if record.txn_id not in report.loser_txns:
                continue
            store = self._store_for(record)
            if store is None:
                continue
            if record.record_type is LogRecordType.INSERT:
                if store.exists(record.row_key):
                    store.replay_remove(record.row_key, now=record.timestamp,
                                        scrub_log=True)
                    report.undone_inserts += 1
            elif record.record_type is LogRecordType.UPDATE:
                if record.before is None:
                    report.skipped_undos += 1
                    continue
                if store.exists(record.row_key):
                    store.restore_row(record.before)
                    report.undone_updates += 1
            elif record.record_type in (LogRecordType.DEGRADE, LogRecordType.REMOVE):
                # Never undone: degradation is irreversible by design.
                report.skipped_undos += 1


__all__ = ["RecoveryManager", "RecoveryReport", "ScheduleReplayReport"]
