"""Crash recovery that never resurrects degraded data.

A conventional ARIES recovery replays the log and undoes losers using the
before-images it finds there.  In a degradation-aware engine that is exactly
the threat the paper warns about: a before-image of an already-degraded value
is an accurate copy that must not come back.  The :class:`RecoveryManager`
therefore implements a redo/undo pass with two degradation-specific rules:

1. ``DEGRADE`` and ``REMOVE`` records are always *redone*, even for loser
   transactions (degradation is a system action, not part of user atomicity);
2. undo uses logical before-images only for stable-attribute updates; if a
   before-image was scrubbed (``None``) the undo is skipped — privacy wins over
   exact rollback, as argued in §III of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..core.errors import RecoveryError
from ..storage.degradable_store import TableStore
from ..storage.wal import LogRecord, LogRecordType, WriteAheadLog


@dataclass
class RecoveryReport:
    """Summary of a recovery pass (asserted on by the crash tests)."""

    committed_txns: Set[int] = field(default_factory=set)
    loser_txns: Set[int] = field(default_factory=set)
    redone_inserts: int = 0
    redone_degrades: int = 0
    redone_removes: int = 0
    redone_updates: int = 0
    undone_inserts: int = 0
    undone_updates: int = 0
    skipped_undos: int = 0


class RecoveryManager:
    """Replays a WAL against a set of :class:`TableStore` objects."""

    def __init__(self, wal: WriteAheadLog, stores: Dict[str, TableStore]) -> None:
        self.wal = wal
        self.stores = stores

    # -- analysis -------------------------------------------------------------

    def _analyse(self) -> RecoveryReport:
        report = RecoveryReport()
        begun: Set[int] = set()
        for record in self.wal:
            if record.record_type is LogRecordType.BEGIN:
                begun.add(record.txn_id)
            elif record.record_type is LogRecordType.COMMIT:
                report.committed_txns.add(record.txn_id)
            elif record.record_type is LogRecordType.ABORT:
                # Aborted transactions were rolled back before the crash (their
                # undo is already reflected); they are neither winners nor losers.
                begun.discard(record.txn_id)
        report.loser_txns = begun - report.committed_txns
        return report

    # -- recovery -----------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Rebuild row maps, redo winner work and degradation, undo losers."""
        report = self._analyse()
        for store in self.stores.values():
            store.rebuild_locations()
        self._redo(report)
        self._undo(report)
        for store in self.stores.values():
            store.flush()
        return report

    def _store_for(self, record: LogRecord) -> Optional[TableStore]:
        if not record.table:
            return None
        store = self.stores.get(record.table)
        if store is None:
            raise RecoveryError(f"log references unknown table {record.table!r}")
        return store

    def _redo(self, report: RecoveryReport) -> None:
        # System txn id 0 (degradation daemon bookkeeping) is always redone.
        for record in self.wal:
            store = self._store_for(record)
            if store is None:
                continue
            committed = record.txn_id in report.committed_txns or record.txn_id == 0
            if record.record_type is LogRecordType.INSERT:
                if committed and record.after is not None and not store.exists(record.row_key):
                    store.restore_row(record.after)
                    report.redone_inserts += 1
            elif record.record_type is LogRecordType.UPDATE:
                if committed and record.after is not None and store.exists(record.row_key):
                    store.restore_row(record.after)
                    report.redone_updates += 1
            elif record.record_type is LogRecordType.DELETE:
                if committed and store.exists(record.row_key):
                    store.remove(record.row_key, now=record.timestamp, scrub_log=False)
            elif record.record_type is LogRecordType.DEGRADE:
                # Degradation is redone regardless of the surrounding user txn.
                if store.exists(record.row_key):
                    report.redone_degrades += self._redo_degrade(store, record)
            elif record.record_type is LogRecordType.REMOVE:
                if store.exists(record.row_key):
                    store.remove(record.row_key, now=record.timestamp, scrub_log=False)
                    report.redone_removes += 1

    @staticmethod
    def _redo_degrade(store: TableStore, record: LogRecord) -> int:
        """Ensure the stored state is at least the logged target state.

        The value itself cannot be recomputed from the log (no accurate image);
        instead the row is marked as already at the target state if it lags —
        the physical degradation is idempotent because the engine flushes the
        degraded page before logging commit of the system step.  Lagging states
        can only appear when the crash hit between the WAL append and the page
        flush; in that case the daemon re-degrades from the current (still more
        accurate than logged? no: equal or already degraded) value on restart.
        """
        row = store.read(record.row_key)
        from ..storage.serialization import decode_record

        target_level = int(decode_record(record.after)[0]) if record.after else None
        if target_level is None:
            return 0
        current = row.levels.get(record.attribute, 0)
        if current >= target_level:
            return 0
        # The page write was lost: the accurate value is still there, so the
        # degradation step is simply pending again.  Leave it to the daemon;
        # report it so tests can assert on the count.
        return 1

    def _undo(self, report: RecoveryReport) -> None:
        for record in reversed(self.wal.records()):
            if record.txn_id not in report.loser_txns:
                continue
            store = self._store_for(record)
            if store is None:
                continue
            if record.record_type is LogRecordType.INSERT:
                if store.exists(record.row_key):
                    store.remove(record.row_key, now=record.timestamp, scrub_log=True)
                    report.undone_inserts += 1
            elif record.record_type is LogRecordType.UPDATE:
                if record.before is None:
                    report.skipped_undos += 1
                    continue
                if store.exists(record.row_key):
                    store.restore_row(record.before)
                    report.undone_updates += 1
            elif record.record_type in (LogRecordType.DEGRADE, LogRecordType.REMOVE):
                # Never undone: degradation is irreversible by design.
                report.skipped_undos += 1


__all__ = ["RecoveryManager", "RecoveryReport"]
