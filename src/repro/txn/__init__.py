"""Transaction substrate: 2PL locking, transaction manager, degradation-aware recovery."""

from .locks import LockManager, LockMode, LockStats
from .recovery import RecoveryManager, RecoveryReport, ScheduleReplayReport
from .transaction import (
    Transaction,
    TransactionManager,
    TransactionState,
    TransactionStats,
)

__all__ = [
    "LockManager", "LockMode", "LockStats",
    "Transaction", "TransactionManager", "TransactionState", "TransactionStats",
    "RecoveryManager", "RecoveryReport", "ScheduleReplayReport",
]
