"""Strict two-phase locking with deadlock detection.

The paper points out that degradation steps behave like system-initiated
update transactions and therefore conflict with concurrent readers.  The lock
manager below provides the isolation substrate for that interaction:

* shared (``S``) and exclusive (``X``) locks on arbitrary resources (table
  names, ``(table, row_key)`` pairs);
* strict 2PL — locks are only released at commit/abort via
  :meth:`LockManager.release_all`;
* a waits-for graph with cycle detection; the *requesting* transaction is
  chosen as the deadlock victim (simple, deterministic, and sufficient for the
  C1 benchmark).

The engine is single threaded: "blocking" is modelled by returning ``False``
from :meth:`acquire` (the caller re-tries after other transactions release),
while a genuine deadlock raises :class:`~repro.core.errors.DeadlockError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.errors import DeadlockError, TransactionError
from ..devtools.invariants import observe_txn_lock, observe_txn_release


class LockMode(Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


@dataclass
class LockStats:
    acquired: int = 0
    blocked: int = 0
    deadlocks: int = 0
    released: int = 0


class LockManager:
    """Table/row lock manager implementing strict 2PL."""

    def __init__(self) -> None:
        #: resource -> {txn_id: mode}
        self._holders: Dict[Any, Dict[int, LockMode]] = {}
        #: txn_id -> set of resources held
        self._held_by_txn: Dict[int, Set[Any]] = {}
        #: waits-for edges: waiter txn -> set of holder txns
        self._waits_for: Dict[int, Set[int]] = {}
        self.stats = LockStats()

    # -- acquisition --------------------------------------------------------

    def acquire(self, txn_id: int, resource: Any, mode: LockMode) -> bool:
        """Try to acquire ``resource`` in ``mode`` for ``txn_id``.

        Returns ``True`` when granted, ``False`` when the transaction must
        wait.  Raises :class:`DeadlockError` when waiting would close a cycle
        in the waits-for graph.
        """
        observe_txn_lock(txn_id, resource)
        holders = self._holders.setdefault(resource, {})
        current = holders.get(txn_id)
        if current is not None:
            if current is LockMode.EXCLUSIVE or current is mode:
                return True
            # Upgrade S -> X: only possible when we are the single holder.
            if len(holders) == 1:
                holders[txn_id] = LockMode.EXCLUSIVE
                return True
            return self._block(txn_id, resource, holders, mode)
        conflicting = [
            holder for holder, held_mode in holders.items()
            if holder != txn_id and not held_mode.compatible_with(mode)
        ]
        if conflicting:
            return self._block(txn_id, resource, holders, mode)
        holders[txn_id] = mode
        self._held_by_txn.setdefault(txn_id, set()).add(resource)
        self._waits_for.pop(txn_id, None)
        self.stats.acquired += 1
        return True

    def _block(self, txn_id: int, resource: Any,
               holders: Dict[int, LockMode], mode: LockMode) -> bool:
        blockers = {holder for holder in holders if holder != txn_id}
        self._waits_for[txn_id] = blockers
        self.stats.blocked += 1
        cycle = self._find_cycle(txn_id)
        if cycle:
            self._waits_for.pop(txn_id, None)
            self.stats.deadlocks += 1
            raise DeadlockError(
                f"transaction {txn_id} deadlocked waiting for {resource!r} "
                f"(cycle: {' -> '.join(str(t) for t in cycle)})"
            )
        return False

    def _find_cycle(self, start: int) -> Optional[List[int]]:
        """Depth-first search for a cycle through ``start`` in the waits-for graph."""
        path: List[int] = []
        visited: Set[int] = set()

        def visit(node: int) -> Optional[List[int]]:
            if node in path:
                return path[path.index(node):] + [node]
            if node in visited:
                return None
            visited.add(node)
            path.append(node)
            for neighbour in self._waits_for.get(node, ()):  # noqa: B007
                found = visit(neighbour)
                if found:
                    return found
            path.pop()
            return None

        return visit(start)

    # -- release --------------------------------------------------------------

    def release_all(self, txn_id: int) -> int:
        """Release every lock held by ``txn_id`` (commit/abort)."""
        observe_txn_release(txn_id)
        resources = self._held_by_txn.pop(txn_id, set())
        for resource in resources:
            holders = self._holders.get(resource)
            if holders is not None:
                holders.pop(txn_id, None)
                if not holders:
                    del self._holders[resource]
        self._waits_for.pop(txn_id, None)
        for waiters in self._waits_for.values():
            waiters.discard(txn_id)
        self.stats.released += len(resources)
        return len(resources)

    # -- introspection ----------------------------------------------------------

    def holders_of(self, resource: Any) -> Dict[int, LockMode]:
        return dict(self._holders.get(resource, {}))

    def locks_held(self, txn_id: int) -> Set[Any]:
        return set(self._held_by_txn.get(txn_id, set()))

    def is_waiting(self, txn_id: int) -> bool:
        return txn_id in self._waits_for

    def active_lock_count(self) -> int:
        return sum(len(holders) for holders in self._holders.values())


__all__ = ["LockManager", "LockMode", "LockStats"]
