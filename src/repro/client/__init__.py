"""Remote PEP 249 driver for the InstantDB wire server.

``repro.client.connect(host, port)`` mirrors the in-process
``repro.connect()`` surface over a socket; see :mod:`repro.client.remote`.
"""

from .remote import (
    FETCH_BATCH,
    RemoteConnection,
    RemoteCursor,
    apilevel,
    connect,
    paramstyle,
    threadsafety,
)

__all__ = ["connect", "RemoteConnection", "RemoteCursor", "FETCH_BATCH",
           "apilevel", "threadsafety", "paramstyle"]
