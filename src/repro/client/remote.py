"""Remote PEP 249 driver: the wire-protocol twin of :mod:`repro.api`.

``repro.client.connect(host, port)`` returns a connection with the *same*
DB-API 2.0 surface as the in-process ``repro.connect()`` — qmark parameters,
lazy implicit transactions, streaming fetch-N cursors, purpose scoping per
connection or per statement — except the engine lives behind an
:class:`~repro.server.server.InstantDBServer` socket.

Result sets stay server-side: ``EXECUTE`` replies carry an initial prefetch
batch and a cursor id, and the cursor pulls the rest in ``FETCH`` batches,
so a large SELECT costs the client only the rows it actually reads.  Server
errors arrive as typed frames carrying the exception class name, re-raised
here as the matching :mod:`repro.core.errors` class — a remote
``TransactionAborted`` is catchable exactly like a local one.

Failure handling
----------------

* A transport failure **mid-frame** (``socket.timeout``, short read, reset)
  leaves the byte stream undelimitable: the connection is *poisoned* — the
  failing call raises ``OperationalError``, and every later call raises a
  typed :class:`~repro.core.errors.ConnectionPoisonedError` instead of
  misreading resynchronized garbage.
* When the failure strikes **at a transaction boundary** (no open
  transaction, so nothing uncommitted can be half-replayed), the driver
  transparently redials with bounded exponential backoff plus seeded jitter
  and replays the one in-flight request on a fresh session.  Mid-transaction
  failures are never replayed — the application owns the transaction retry.
* Typed retryable server errors (``OverloadError`` admission shedding,
  ``StatementTimeoutError``) take the same backoff-and-redial path under the
  same boundary rule.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..core import errors as _errors
from ..core.errors import (
    ConnectionPoisonedError,
    InterfaceError,
    OperationalError,
    ParameterError,
    ProgrammingError,
)
from ..core.policy import Purpose
from ..faults import FaultPlan
from ..query.parameters import check_parameter
from ..server import protocol

PurposeSpec = Union[None, str, Purpose]

#: Rows pulled per FETCH round trip by ``fetchall`` and iteration.
FETCH_BATCH = 1024

#: Default bound on transparent redials per request (at txn boundaries only).
DEFAULT_RETRIES = 2

#: Base backoff before the first redial; doubles per attempt, plus jitter.
DEFAULT_BACKOFF = 0.05

#: The terminal reply frames a well-behaved server may answer with.  A reply
#: outside this set means the stream is out of sync (or the peer is not an
#: InstantDB server) — the connection is dropped rather than misread.
_REPLY_FRAMES = frozenset({protocol.OK, protocol.RESULT, protocol.ROWS,
                           protocol.ERROR})

#: PEP 249 module globals (mirrors :mod:`repro.api.connection`).
apilevel = "2.0"
threadsafety = 1
paramstyle = "qmark"


def _dial(host: str, port: int, timeout: Optional[float]) -> socket.socket:
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as error:
        raise OperationalError(
            f"cannot connect to instantdb server at {host}:{port}: "
            f"{error}") from error
    sock.settimeout(timeout)
    return sock


def connect(host: str = "127.0.0.1", port: int = 5433, *,
            purpose: PurposeSpec = None,
            timeout: Optional[float] = 30.0,
            retries: int = DEFAULT_RETRIES,
            retry_backoff: float = DEFAULT_BACKOFF,
            retry_seed: Optional[int] = None,
            fault_plan: Optional[FaultPlan] = None) -> "RemoteConnection":
    """Open a PEP 249 connection to a running InstantDB server.

    ``retries`` bounds the transparent redials the driver performs when a
    request fails at a transaction boundary (transport loss or a typed
    retryable server error); ``retry_backoff`` is the base delay, doubled
    per attempt with jitter drawn from a ``retry_seed``-seeded RNG so chaos
    runs replay deterministically.  ``fault_plan`` arms the ``client.send``
    / ``client.recv`` injection sites.
    """
    return RemoteConnection(_dial(host, port, timeout), purpose=purpose,
                            host=host, port=port, timeout=timeout,
                            retries=retries, retry_backoff=retry_backoff,
                            retry_seed=retry_seed, fault_plan=fault_plan)


def _check_params(params: Any) -> List[Any]:
    """Validate parameters client-side with the engine's own rules, so a bad
    value raises the same :class:`ParameterError` (an ``InterfaceError``)
    before anything crosses the wire."""
    if isinstance(params, (str, bytes)):
        raise ParameterError(
            "parameters must be a sequence of values, not a bare string")
    return [check_parameter(value) for value in params]


def _resolve_error(class_name: Any, message: Any) -> Exception:
    """Rebuild a server-side exception from its wire form."""
    text = str(message)
    candidate = getattr(_errors, str(class_name), None)
    if isinstance(candidate, type) and issubclass(candidate, Exception):
        return candidate(text)
    if class_name == "ProtocolError":
        return OperationalError(text)
    return _errors.DatabaseError(f"{class_name}: {text}")


class _TransportFailure(Exception):
    """Internal: the socket died (or timed out) during one exchange."""

    def __init__(self, reason: str, cause: Optional[BaseException]) -> None:
        super().__init__(reason)
        self.reason = reason
        self.cause = cause


class RemoteConnection:
    """A PEP 249 connection whose transaction lives in a server session."""

    def __init__(self, sock: socket.socket, purpose: PurposeSpec = None, *,
                 host: Optional[str] = None, port: Optional[int] = None,
                 timeout: Optional[float] = 30.0,
                 retries: int = DEFAULT_RETRIES,
                 retry_backoff: float = DEFAULT_BACKOFF,
                 retry_seed: Optional[int] = None,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        self._sock: Optional[socket.socket] = sock
        self._purpose = purpose
        self._closed = False
        self._in_txn = False
        self._poisoned: Optional[str] = None
        self._address = ((host, port) if host is not None and port is not None
                         else None)
        self._timeout = timeout
        self._retries = max(0, retries)
        self._backoff = retry_backoff
        self._rng = random.Random(retry_seed)
        self.faults = fault_plan
        #: Transparent redials performed (observable by retry/chaos tests).
        self.reconnects = 0
        self.session_id: Optional[int] = None
        self._handshake()

    def _handshake(self) -> None:
        # Straight through _exchange: a handshake failure on a redial must
        # surface to the retry loop driving it, not recurse into _request.
        try:
            _, reply = self._exchange(protocol.HELLO, {
                "version": protocol.PROTOCOL_VERSION,
                "client": "repro-client",
            })
        except _TransportFailure as failure:
            raise OperationalError(failure.reason) from failure.cause
        self.session_id = reply.get("session")

    # -- wire I/O ------------------------------------------------------------

    def _send(self, frame_type: int, payload: Any) -> None:
        assert self._sock is not None
        data = protocol.encode_frame(frame_type, payload)
        try:
            if self.faults is not None:
                event = self.faults.fire("client.send")
                if event is not None:
                    if event.kind == "stall":
                        time.sleep(float(event.param("seconds", 0.05)))
                    elif event.kind == "truncate":
                        self._sock.sendall(data[:max(1, len(data) // 2)])
                        raise ConnectionResetError(
                            "injected: request truncated mid-frame")
                    else:  # disconnect
                        raise ConnectionResetError(
                            "injected: connection dropped before send")
            self._sock.sendall(data)
        except OSError as error:
            self._drop()
            raise _TransportFailure(
                f"lost connection to server: {error}", error) from error

    def _read_exact(self, n: int) -> bytes:
        assert self._sock is not None
        chunks: List[bytes] = []
        remaining = n
        while remaining:
            try:
                if self.faults is not None:
                    event = self.faults.fire("client.recv")
                    if event is not None:
                        if event.kind == "stall":
                            time.sleep(float(event.param("seconds", 0.05)))
                        else:  # disconnect / truncate mid-frame
                            raise ConnectionResetError(
                                "injected: connection lost mid-frame")
                chunk = self._sock.recv(remaining)
            except socket.timeout as error:
                self._drop()
                raise _TransportFailure("server reply timed out", error) \
                    from error
            except OSError as error:
                self._drop()
                raise _TransportFailure(
                    f"lost connection to server: {error}", error) from error
            if not chunk:
                self._drop()
                raise _TransportFailure("server closed the connection", None)
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _exchange(self, frame_type: int, payload: Any) -> Tuple[int, Any]:
        """One raw request/reply; raises the mapped server error or
        :class:`_TransportFailure` (socket already dropped)."""
        self._send(frame_type, payload)
        prefix = self._read_exact(4)
        length = protocol.parse_frame_length(prefix)
        reply_type, reply = protocol.decode_frame_body(self._read_exact(length))
        if reply_type not in _REPLY_FRAMES:
            name = protocol.FRAME_NAMES.get(reply_type, hex(reply_type))
            self._drop()
            raise _TransportFailure(
                f"server sent unexpected {name} frame where a reply was "
                "expected; closing the out-of-sync connection", None)
        if isinstance(reply, dict) and "in_txn" in reply:
            self._in_txn = bool(reply["in_txn"])
        if reply_type == protocol.ERROR:
            raise _resolve_error(reply.get("error_class"),
                                 reply.get("message"))
        return reply_type, reply

    def _can_replay(self, frame_type: int) -> bool:
        """Whether the in-flight request may ride a transparent redial.

        Only at a transaction boundary: with no transaction open, anything
        the lost session half-did was rolled back by the server on
        disconnect, so replaying the single request cannot double-apply.
        FETCH / CLOSE_CURSOR refer to server cursor state that died with the
        session and are never replayed.
        """
        return (self._address is not None
                and self._retries > 0
                and not self._in_txn
                and frame_type not in (protocol.FETCH, protocol.CLOSE_CURSOR))

    def _request(self, frame_type: int, payload: Any) -> Tuple[int, Any]:
        """One request/reply exchange with boundary-bounded redial."""
        if self._poisoned is not None:
            raise ConnectionPoisonedError(self._poisoned)
        if self._sock is None:
            raise InterfaceError("connection is closed")
        replayable = self._can_replay(frame_type)
        attempts = 0
        while True:
            try:
                if self._sock is None:
                    raise _TransportFailure("connection is down", None)
                return self._exchange(frame_type, payload)
            except _TransportFailure as error:
                if not replayable or attempts >= self._retries:
                    self._poison(error.reason)
                    raise OperationalError(error.reason) from error.cause
            except _errors.RetryableError:
                # Typed server-side shed (overload, statement timeout): the
                # server closed or will close the session; redial cleanly.
                self._drop()
                if not replayable or attempts >= self._retries:
                    raise
            attempts += 1
            self._sleep_backoff(attempts)
            try:
                self._reconnect()
            except OperationalError:
                if attempts >= self._retries:
                    self._poisoned = ("reconnect failed after "
                                      f"{attempts} attempt(s)")
                    raise

    def _sleep_backoff(self, attempt: int) -> None:
        delay = self._backoff * (2 ** (attempt - 1))
        time.sleep(delay * (1.0 + self._rng.random()))

    def _reconnect(self) -> None:
        host, port = self._address  # type: ignore[misc]
        self._drop()
        self._sock = _dial(host, port, self._timeout)
        self._poisoned = None
        self.reconnects += 1
        self._handshake()

    def _poison(self, reason: str) -> None:
        """Mark the connection unusable: part of a frame was consumed (or the
        outcome of a sent request is unknown) and the stream cannot be
        re-delimited.  Later calls raise ConnectionPoisonedError."""
        self._drop()
        self._poisoned = (f"connection poisoned by an earlier failure "
                          f"({reason}); reconnect to continue")

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # reprolint: disable=no-swallowed-io-error -- socket already dead; close is best-effort
                pass
            self._sock = None
        self._in_txn = False

    # -- connection surface (mirrors repro.api.Connection) --------------------

    @property
    def purpose(self) -> PurposeSpec:
        return self._purpose

    def set_purpose(self, purpose: PurposeSpec) -> None:
        """Change the connection's default query purpose."""
        self._purpose = purpose

    def _check_open(self) -> None:
        if not self._closed and self._poisoned is not None:
            raise ConnectionPoisonedError(self._poisoned)
        if self._closed or self._sock is None:
            raise InterfaceError("connection is closed")

    @property
    def in_transaction(self) -> bool:
        return self._in_txn

    def begin(self) -> None:
        """Eagerly open the session's transaction (statements do it lazily)."""
        self._check_open()
        self._request(protocol.BEGIN, {})

    def commit(self) -> None:
        """Commit the open transaction (no-op when nothing is pending)."""
        self._check_open()
        self._request(protocol.COMMIT, {})

    def rollback(self) -> None:
        """Roll back the open transaction (no-op when nothing is pending)."""
        self._check_open()
        self._request(protocol.ROLLBACK, {})

    def metrics(self) -> dict:
        """The server's metrics snapshot (sessions, latency quantiles, ...)."""
        self._check_open()
        _, reply = self._request(protocol.METRICS, {})
        return reply

    def close(self) -> None:
        """Roll back any pending transaction and end the server session."""
        if self._closed:
            return
        self._closed = True
        if self._sock is not None:
            try:
                if self._in_txn:
                    self._request(protocol.ROLLBACK, {})
                self._request(protocol.GOODBYE, {})
            except Exception:  # reprolint: disable=no-swallowed-abort -- best-effort goodbye; the socket is dropped either way
                pass
            self._drop()

    def __enter__(self) -> "RemoteConnection":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None:
                self.commit()
            else:
                self.rollback()
        finally:
            self.close()

    # -- cursors -------------------------------------------------------------

    def cursor(self) -> "RemoteCursor":
        self._check_open()
        return RemoteCursor(self)

    def execute(self, sql: str, params: Sequence[Any] = (), *,
                purpose: PurposeSpec = None) -> "RemoteCursor":
        """Shortcut: create a cursor and execute one statement on it."""
        cursor = self.cursor()
        return cursor.execute(sql, params, purpose=purpose)

    def executemany(self, sql: str,
                    seq_of_params: Iterable[Sequence[Any]]) -> "RemoteCursor":
        """Shortcut: create a cursor and run a batched execution on it."""
        cursor = self.cursor()
        return cursor.executemany(sql, seq_of_params)


class RemoteCursor:
    """A PEP 249 cursor whose result set streams from a server cursor."""

    def __init__(self, connection: RemoteConnection) -> None:
        self.connection = connection
        self.arraysize = 1
        self._closed = False
        self._reset()

    def _reset(self) -> None:
        self.description: Optional[List[Tuple]] = None
        self.rowcount: int = -1
        self.lastrowid: Optional[int] = None
        self._rows: List[Tuple[Any, ...]] = []
        self._position = 0
        self._has_result_set = False
        self._cursor_id: Optional[int] = None
        self._done = True

    def _check(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self.connection._check_open()

    def _release_server_cursor(self) -> None:
        if self._cursor_id is not None and not self._done:
            try:
                self.connection._request(protocol.CLOSE_CURSOR,
                                         {"cursor": self._cursor_id})
            except Exception:  # reprolint: disable=no-swallowed-abort -- best-effort release; server reaps the cursor with the session
                pass
        self._cursor_id = None
        self._done = True

    # -- execution -----------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = (), *,
                purpose: PurposeSpec = None) -> "RemoteCursor":
        """Execute one statement, binding qmark (``?``) parameters.

        Runs inside the connection's implicit server-side transaction;
        remember to :meth:`RemoteConnection.commit`.  Returns the cursor
        itself so calls chain.  SELECTs stream: the reply carries a prefetch
        batch and further rows arrive in FETCH-sized round trips.
        """
        self._check()
        self._release_server_cursor()
        resolved = purpose if purpose is not None else self.connection._purpose
        _, reply = self.connection._request(protocol.EXECUTE, {
            "sql": sql,
            "params": _check_params(params),
            "purpose": protocol.encode_purpose(resolved),
        })
        self._ingest(reply)
        return self

    def executemany(self, sql: str,
                    seq_of_params: Iterable[Sequence[Any]]) -> "RemoteCursor":
        """Execute ``sql`` once per parameter sequence (DML only)."""
        self._check()
        self._release_server_cursor()
        _, reply = self.connection._request(protocol.EXECUTEMANY, {
            "sql": sql,
            "params_seq": [_check_params(params) for params in seq_of_params],
        })
        self._reset()
        self.rowcount = reply.get("rowcount", -1)
        return self

    def _ingest(self, reply: dict) -> None:
        self._reset()
        if "columns" in reply:
            self.description = [
                (name, None, None, None, None, None, None)
                for name in reply["columns"]
            ]
            self._rows = [tuple(row) for row in reply.get("rows", [])]
            self._has_result_set = True
            self._done = bool(reply.get("done", True))
            self._cursor_id = None if self._done else reply.get("cursor")
        else:
            self.rowcount = reply.get("rowcount", -1)

    # -- result-set traversal --------------------------------------------------

    def _require_result_set(self) -> None:
        if not self._has_result_set:
            raise ProgrammingError("no result set: the previous statement was "
                                   "not a query (or nothing was executed)")

    def _fetch_from_server(self, n: int) -> None:
        if self._done or self._cursor_id is None:
            return
        _, reply = self.connection._request(protocol.FETCH, {
            "cursor": self._cursor_id,
            "n": n,
        })
        # drop already-consumed rows so the buffer stays bounded
        self._rows = self._rows[self._position:] + \
            [tuple(row) for row in reply.get("rows", [])]
        self._position = 0
        if reply.get("done"):
            self._done = True
            self._cursor_id = None

    def _buffered(self) -> int:
        return len(self._rows) - self._position

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        self._check()
        self._require_result_set()
        if self._buffered() == 0:
            self._fetch_from_server(max(self.arraysize, 1))
        if self._buffered() == 0:
            return None
        row = self._rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple[Any, ...]]:
        self._check()
        self._require_result_set()
        if size is None:
            size = self.arraysize
        while self._buffered() < size and not self._done:
            self._fetch_from_server(size - self._buffered())
        rows = self._rows[self._position:self._position + size]
        self._position += len(rows)
        return rows

    def fetchall(self) -> List[Tuple[Any, ...]]:
        self._check()
        self._require_result_set()
        while not self._done:
            self._fetch_from_server(FETCH_BATCH)
        rows = self._rows[self._position:]
        self._position = len(self._rows)
        return rows

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return self

    def __next__(self) -> Tuple[Any, ...]:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    # -- PEP 249 no-ops --------------------------------------------------------

    def setinputsizes(self, sizes: Sequence[Any]) -> None:
        """PEP 249 mandated no-op."""

    def setoutputsize(self, size: int, column: Optional[int] = None) -> None:
        """PEP 249 mandated no-op."""

    def close(self) -> None:
        if self._closed:
            return
        if not self.connection._closed and self.connection._sock is not None:
            self._release_server_cursor()
        self._closed = True
        self._rows = []

    def __enter__(self) -> "RemoteCursor":
        self._check()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


__all__ = ["connect", "RemoteConnection", "RemoteCursor", "FETCH_BATCH",
           "apilevel", "threadsafety", "paramstyle"]
