"""Degradation-aware generalization-tree index.

The paper's third technical challenge asks for "indexing techniques supporting
efficiently degradation".  The :class:`GTIndex` answers it by partitioning
postings along the accuracy levels of the attribute's generalization scheme:

* an entry lives in the bucket ``(level, value)`` of the accuracy level at
  which the value is currently *stored*;
* a degradation step is a cheap bucket-to-bucket move — no tree rebalancing,
  no ordered structure to repair — and bulk steps that degrade every entry of
  a value can merge whole buckets at once;
* a query at demanded accuracy ``k`` probes the bucket ``(k, v)`` directly and
  additionally folds in the buckets of *more accurate* levels whose values
  generalize to ``v`` (the paper's ``f_k`` applied per bucket instead of per
  row), so point queries stay sub-linear regardless of how much of the table
  has already degraded.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Set, Tuple

from ..core.errors import GeneralizationError, IndexError_
from ..core.generalization import GeneralizationScheme
from ..core.values import sort_key
from .base import Index


def _hashable(key: Any) -> Any:
    try:
        hash(key)
        return key
    except TypeError:
        return repr(key)


class GTIndex(Index):
    """Index partitioned by (accuracy level, value)."""

    kind = "gt"

    def __init__(self, name: str, scheme: GeneralizationScheme) -> None:
        super().__init__(name)
        self.scheme = scheme
        #: level -> value -> set of row keys
        self._buckets: Dict[int, Dict[Any, Set[int]]] = {
            level: {} for level in range(scheme.num_levels)
        }
        self._display_keys: Dict[Tuple[int, Any], Any] = {}
        self._size = 0

    # -- level-aware mutation ----------------------------------------------------

    def insert_at(self, value: Any, level: int, row_key: int) -> None:
        """Insert ``row_key`` under ``value`` stored at accuracy ``level``."""
        if not 0 <= level < self.scheme.num_levels:
            raise IndexError_(f"index {self.name!r}: bad accuracy level {level}")
        surrogate = _hashable(value)
        bucket = self._buckets[level].setdefault(surrogate, set())
        if row_key not in bucket:
            bucket.add(row_key)
            self._size += 1
        self._display_keys[(level, surrogate)] = value
        self.stats.inserts += 1

    def delete_at(self, value: Any, level: int, row_key: int) -> bool:
        surrogate = _hashable(value)
        bucket = self._buckets.get(level, {}).get(surrogate)
        if bucket is None or row_key not in bucket:
            return False
        bucket.discard(row_key)
        if not bucket:
            del self._buckets[level][surrogate]
            self._display_keys.pop((level, surrogate), None)
        self._size -= 1
        self.stats.deletes += 1
        return True

    def degrade_entry(self, old_value: Any, old_level: int, new_value: Any,
                      new_level: int, row_key: int) -> None:
        """Move one posting from its old accuracy bucket to the degraded one."""
        if new_level < old_level:
            raise IndexError_(
                f"index {self.name!r}: degradation cannot decrease the level"
            )
        if not self.delete_at(old_value, old_level, row_key):
            raise IndexError_(
                f"index {self.name!r}: missing entry {old_value!r}@{old_level} "
                f"for row {row_key}"
            )
        self.insert_at(new_value, new_level, row_key)
        self.stats.updates += 1

    def degrade_entries(self, moves: Iterable[Tuple[Any, int, Any, int, int]]) -> int:
        """Bulk :meth:`degrade_entry`: apply many posting moves in one pass.

        ``moves`` is an iterable of ``(old_value, old_level, new_value,
        new_level, row_key)``.  Moves sharing the same value/level transition
        (the common case: a whole expiry wave degrading one attribute by one
        step) are grouped so each source/target bucket pair is resolved once
        and the postings are merged with one set update.  Returns the number
        of postings moved.
        """
        grouped: Dict[Tuple[Any, int, Any, int], Tuple[Any, int, Any, int, List[int]]] = {}
        for old_value, old_level, new_value, new_level, row_key in moves:
            if new_level < old_level:
                raise IndexError_(
                    f"index {self.name!r}: degradation cannot decrease the level"
                )
            key = (_hashable(old_value), old_level, _hashable(new_value), new_level)
            entry = grouped.get(key)
            if entry is None:
                entry = (old_value, old_level, new_value, new_level, [])
                grouped[key] = entry
            entry[4].append(row_key)
        moved = 0
        for old_value, old_level, new_value, new_level, row_keys in grouped.values():
            surrogate = _hashable(old_value)
            bucket = self._buckets.get(old_level, {}).get(surrogate)
            for row_key in row_keys:
                if bucket is None or row_key not in bucket:
                    raise IndexError_(
                        f"index {self.name!r}: missing entry {old_value!r}@{old_level} "
                        f"for row {row_key}"
                    )
                bucket.discard(row_key)
                self._size -= 1
                self.stats.deletes += 1
            if bucket is not None and not bucket:
                del self._buckets[old_level][surrogate]
                self._display_keys.pop((old_level, surrogate), None)
            new_surrogate = _hashable(new_value)
            target = self._buckets[new_level].setdefault(new_surrogate, set())
            before = len(target)
            target.update(row_keys)
            self._size += len(target) - before
            self._display_keys[(new_level, new_surrogate)] = new_value
            count = len(row_keys)
            self.stats.inserts += count
            self.stats.updates += count
            moved += count
        return moved

    def degrade_bucket(self, value: Any, old_level: int, new_level: int) -> int:
        """Bulk-degrade every posting of ``value`` at ``old_level``.

        Returns the number of postings moved.  This is the operation that makes
        uniform LCP steps cheap: one bucket merge instead of per-row updates.
        """
        if new_level < old_level:
            raise IndexError_(
                f"index {self.name!r}: degradation cannot decrease the level"
            )
        surrogate = _hashable(value)
        bucket = self._buckets.get(old_level, {}).pop(surrogate, None)
        if not bucket:
            return 0
        self._display_keys.pop((old_level, surrogate), None)
        new_value = self.scheme.generalize(value, new_level, from_level=old_level)
        new_surrogate = _hashable(new_value)
        target = self._buckets[new_level].setdefault(new_surrogate, set())
        moved = len(bucket)
        before = len(target)
        target.update(bucket)
        self._display_keys[(new_level, new_surrogate)] = new_value
        self._size -= moved - (len(target) - before)
        self.stats.updates += moved
        return moved

    # -- Index interface (level-0 convenience) ---------------------------------------

    def insert(self, key: Any, row_key: int) -> None:
        self.insert_at(key, 0, row_key)

    def delete(self, key: Any, row_key: int) -> bool:
        # Try every level: callers using the flat interface do not track levels.
        for level in range(self.scheme.num_levels):
            if self.delete_at(key, level, row_key):
                return True
        return False

    def search(self, key: Any) -> List[int]:
        """Flat search: interpret ``key`` at its natural level when inferable,
        else search level 0."""
        return self.search_at(key, 0)

    # -- accuracy-aware queries -----------------------------------------------------

    def _matching_buckets(self, value: Any,
                          level: int) -> Iterator[Tuple[Any, Set[int]]]:
        """Buckets matching ``value`` at ``level``: the exact ``(level, v)``
        bucket plus every finer-stored bucket whose value generalizes to it
        (the paper's query semantics: only rows whose state makes level ``k``
        computable qualify).  Yields ``(visible value, posting set)`` pairs —
        the visible value is what a heap fetch would have produced at the
        demanded accuracy."""
        if not 0 <= level < self.scheme.num_levels:
            raise IndexError_(f"index {self.name!r}: bad accuracy level {level}")
        surrogate = _hashable(value)
        exact = self._buckets[level].get(surrogate)
        if exact:
            self.stats.entries_scanned += len(exact)
            yield self._display_keys[(level, surrogate)], exact
        for finer_level in range(level):
            for finer_surrogate, bucket in self._buckets[finer_level].items():
                self.stats.nodes_visited += 1
                finer_value = self._display_keys[(finer_level, finer_surrogate)]
                try:
                    generalized = self.scheme.generalize(
                        finer_value, level, from_level=finer_level
                    )
                except GeneralizationError:  # unknown value: cannot generalize, skip
                    continue
                if _hashable(generalized) == surrogate:
                    self.stats.entries_scanned += len(bucket)
                    yield generalized, bucket

    def search_at(self, value: Any, level: int) -> List[int]:
        """Rows whose value generalizes to ``value`` at accuracy ``level``."""
        self.stats.lookups += 1
        result: Set[int] = set()
        for _visible, bucket in self._matching_buckets(value, level):
            result.update(bucket)
        return sorted(result)

    def entries_at(self, value: Any, level: int) -> Iterator[Tuple[Any, int]]:
        """``(visible value, row key)`` pairs matching ``value`` at ``level``.

        Carrying the visible value lets a covering query be answered from
        the index alone (index-only scan), skipping the heap entirely.
        """
        self.stats.lookups += 1
        for visible, bucket in self._matching_buckets(value, level):
            for row_key in sorted(bucket):
                yield visible, row_key

    def level_histogram(self) -> Dict[int, int]:
        """Number of postings per accuracy level (C2/C3 reporting)."""
        return {
            level: sum(len(bucket) for bucket in buckets.values())
            for level, buckets in self._buckets.items()
        }

    def values_at_level(self, level: int) -> List[Any]:
        return [
            self._display_keys[(level, surrogate)]
            for surrogate in self._buckets.get(level, {})
        ]

    # -- introspection --------------------------------------------------------------

    def keys(self) -> Iterator[Any]:
        return iter(sorted(self._display_keys.values(), key=sort_key))

    def __len__(self) -> int:
        return self._size

    def verify(self) -> None:
        total = sum(
            len(bucket) for buckets in self._buckets.values() for bucket in buckets.values()
        )
        if total != self._size:
            raise IndexError_(
                f"index {self.name!r}: size {self._size} does not match postings {total}"
            )


__all__ = ["GTIndex"]
