"""Hash index: equality-only lookups in O(1).

The hash index is the cheapest structure for the point lookups of an OLTP
workload; it is included as a baseline in the C3 index comparison and used by
the engine for primary-key lookups.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Set

from ..core.values import sort_key
from .base import Index


def _hashable(key: Any) -> Any:
    """Map a key to a hashable, equality-stable surrogate."""
    try:
        hash(key)
        return key
    except TypeError:
        return repr(key)


class HashIndex(Index):
    """Dictionary-backed equality index with duplicate support."""

    kind = "hash"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._buckets: Dict[Any, Set[int]] = {}
        self._display_keys: Dict[Any, Any] = {}
        self._size = 0

    def insert(self, key: Any, row_key: int) -> None:
        surrogate = _hashable(key)
        bucket = self._buckets.setdefault(surrogate, set())
        if row_key not in bucket:
            bucket.add(row_key)
            self._size += 1
        self._display_keys[surrogate] = key
        self.stats.inserts += 1

    def delete(self, key: Any, row_key: int) -> bool:
        surrogate = _hashable(key)
        bucket = self._buckets.get(surrogate)
        if bucket is None or row_key not in bucket:
            return False
        bucket.discard(row_key)
        self._size -= 1
        if not bucket:
            del self._buckets[surrogate]
            del self._display_keys[surrogate]
        self.stats.deletes += 1
        return True

    def search(self, key: Any) -> List[int]:
        self.stats.lookups += 1
        bucket = self._buckets.get(_hashable(key), set())
        self.stats.entries_scanned += len(bucket)
        return sorted(bucket)

    def keys(self) -> Iterator[Any]:
        return iter(sorted(self._display_keys.values(), key=sort_key))

    def __len__(self) -> int:
        return self._size


__all__ = ["HashIndex"]
