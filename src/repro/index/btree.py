"""B+-tree index.

A textbook B+-tree with linked leaves: the OLTP index of the paper's
discussion ("few indexes on the most selective attributes").  Keys are ordered
with :func:`repro.core.values.sort_key` so that heterogeneous values (numbers,
strings, the SUPPRESSED sentinel) keep a stable total order while data
degrades.

Duplicate keys are supported (every leaf entry carries a set of row keys).
Deletion removes entries in place; structural rebalancing on underflow is
intentionally lazy — leaves may become sparse but never violate ordering —
which matches the behaviour of many production engines that defer merges to a
vacuum phase (exposed here as :meth:`BPlusTreeIndex.rebuild`).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Set, Tuple

from ..core.errors import IndexError_
from ..core.values import sort_key
from .base import Index


class _Node:
    __slots__ = ("keys", "sort_keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: List[Any] = []
        self.sort_keys: List[tuple] = []
        self.children: List["_Node"] = []       # internal nodes only
        self.values: List[Set[int]] = []         # leaf nodes only
        self.next_leaf: Optional["_Node"] = None


class BPlusTreeIndex(Index):
    """Ordered index with O(log n) point and range lookups."""

    kind = "btree"

    def __init__(self, name: str, order: int = 32) -> None:
        super().__init__(name)
        if order < 4:
            raise IndexError_("B+-tree order must be at least 4")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0  # number of (key, row_key) entries

    # -- internal navigation -------------------------------------------------

    def _find_leaf(self, skey: tuple) -> _Node:
        node = self._root
        while not node.is_leaf:
            self.stats.nodes_visited += 1
            index = bisect.bisect_right(node.sort_keys, skey)
            node = node.children[index]
        self.stats.nodes_visited += 1
        return node

    # -- mutation ---------------------------------------------------------------

    def insert(self, key: Any, row_key: int) -> None:
        skey = sort_key(key)
        path: List[Tuple[_Node, int]] = []
        node = self._root
        while not node.is_leaf:
            index = bisect.bisect_right(node.sort_keys, skey)
            path.append((node, index))
            node = node.children[index]
        index = bisect.bisect_left(node.sort_keys, skey)
        if index < len(node.keys) and node.sort_keys[index] == skey:
            node.values[index].add(row_key)
        else:
            node.keys.insert(index, key)
            node.sort_keys.insert(index, skey)
            node.values.insert(index, {row_key})
        self._size += 1
        self.stats.inserts += 1
        if len(node.keys) > self.order:
            self._split(node, path)

    def _split(self, node: _Node, path: List[Tuple[_Node, int]]) -> None:
        middle = len(node.keys) // 2
        sibling = _Node(is_leaf=node.is_leaf)
        if node.is_leaf:
            sibling.keys = node.keys[middle:]
            sibling.sort_keys = node.sort_keys[middle:]
            sibling.values = node.values[middle:]
            node.keys = node.keys[:middle]
            node.sort_keys = node.sort_keys[:middle]
            node.values = node.values[:middle]
            sibling.next_leaf = node.next_leaf
            node.next_leaf = sibling
            separator_key = sibling.keys[0]
            separator_skey = sibling.sort_keys[0]
        else:
            separator_key = node.keys[middle]
            separator_skey = node.sort_keys[middle]
            sibling.keys = node.keys[middle + 1:]
            sibling.sort_keys = node.sort_keys[middle + 1:]
            sibling.children = node.children[middle + 1:]
            node.keys = node.keys[:middle]
            node.sort_keys = node.sort_keys[:middle]
            node.children = node.children[:middle + 1]
        if not path:
            new_root = _Node(is_leaf=False)
            new_root.keys = [separator_key]
            new_root.sort_keys = [separator_skey]
            new_root.children = [node, sibling]
            self._root = new_root
            return
        parent, child_index = path[-1]
        parent.keys.insert(child_index, separator_key)
        parent.sort_keys.insert(child_index, separator_skey)
        parent.children.insert(child_index + 1, sibling)
        if len(parent.keys) > self.order:
            self._split(parent, path[:-1])

    def delete(self, key: Any, row_key: int) -> bool:
        skey = sort_key(key)
        leaf = self._find_leaf(skey)
        index = bisect.bisect_left(leaf.sort_keys, skey)
        if index >= len(leaf.keys) or leaf.sort_keys[index] != skey:
            return False
        if row_key not in leaf.values[index]:
            return False
        leaf.values[index].discard(row_key)
        if not leaf.values[index]:
            del leaf.keys[index]
            del leaf.sort_keys[index]
            del leaf.values[index]
        self._size -= 1
        self.stats.deletes += 1
        return True

    # -- queries -------------------------------------------------------------------

    def search(self, key: Any) -> List[int]:
        self.stats.lookups += 1
        skey = sort_key(key)
        leaf = self._find_leaf(skey)
        index = bisect.bisect_left(leaf.sort_keys, skey)
        if index < len(leaf.keys) and leaf.sort_keys[index] == skey:
            self.stats.entries_scanned += len(leaf.values[index])
            return sorted(leaf.values[index])
        return []

    def range_search(self, low: Any = None, high: Any = None,
                     include_low: bool = True, include_high: bool = True) -> List[int]:
        result: Set[int] = set()
        for _key, row_key in self.iter_range_entries(low, high,
                                                     include_low, include_high):
            result.add(row_key)
        return sorted(result)

    def entries(self, key: Any) -> List[Tuple[Any, int]]:
        """``(stored key, row key)`` pairs of one key (index-only eq probes).

        Unlike :meth:`search` this exposes the key *as stored* — an
        index-only scan projects it without touching the heap.
        """
        self.stats.lookups += 1
        skey = sort_key(key)
        leaf = self._find_leaf(skey)
        index = bisect.bisect_left(leaf.sort_keys, skey)
        if index < len(leaf.keys) and leaf.sort_keys[index] == skey:
            self.stats.entries_scanned += len(leaf.values[index])
            stored = leaf.keys[index]
            return [(stored, row_key) for row_key in sorted(leaf.values[index])]
        return []

    def iter_range_entries(self, low: Any = None, high: Any = None,
                           include_low: bool = True,
                           include_high: bool = True) -> Iterator[Tuple[Any, int]]:
        """Stream ``(key, row key)`` pairs of a range in key order.

        Lazy leaf walk: a consumer that stops after ``k`` rows (``LIMIT k``)
        pays O(log n + k) index work instead of materializing the whole
        range (``entries_scanned`` counts only what was actually pulled).
        """
        self.stats.range_scans += 1
        low_skey = sort_key(low) if low is not None else None
        high_skey = sort_key(high) if high is not None else None
        # Start at the leftmost relevant leaf.
        if low_skey is None:
            node = self._root
            while not node.is_leaf:
                self.stats.nodes_visited += 1
                node = node.children[0]
            leaf: Optional[_Node] = node
            start = 0
        else:
            leaf = self._find_leaf(low_skey)
            start = bisect.bisect_left(leaf.sort_keys, low_skey)
        while leaf is not None:
            for index in range(start, len(leaf.keys)):
                skey = leaf.sort_keys[index]
                self.stats.entries_scanned += 1
                if low_skey is not None:
                    if skey < low_skey or (skey == low_skey and not include_low):
                        continue
                if high_skey is not None:
                    if skey > high_skey or (skey == high_skey and not include_high):
                        return
                key = leaf.keys[index]
                for row_key in sorted(leaf.values[index]):
                    yield key, row_key
            leaf = leaf.next_leaf
            start = 0

    def iter_range_keys(self, low: Any = None, high: Any = None,
                        include_low: bool = True,
                        include_high: bool = True) -> Iterator[int]:
        """Row keys of a range, streamed in key order (scan access path)."""
        for _key, row_key in self.iter_range_entries(low, high,
                                                     include_low, include_high):
            yield row_key

    # -- introspection -----------------------------------------------------------------

    def keys(self) -> Iterator[Any]:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            yield from node.keys
            node = node.next_leaf

    def items(self) -> Iterator[Tuple[Any, Set[int]]]:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next_leaf

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        height = 1
        node = self._root
        while not node.is_leaf:
            height += 1
            node = node.children[0]
        return height

    def rebuild(self) -> None:
        """Bulk rebuild the tree from its live entries (vacuum)."""
        entries = list(self.items())
        self._root = _Node(is_leaf=True)
        self._size = 0
        saved = self.stats
        for key, row_keys in entries:
            for row_key in row_keys:
                self.insert(key, row_key)
        self.stats = saved

    def verify(self) -> None:
        previous = None
        for key in self.keys():
            current = sort_key(key)
            if previous is not None and current < previous:
                raise IndexError_(f"index {self.name!r}: keys out of order")
            previous = current


__all__ = ["BPlusTreeIndex"]
