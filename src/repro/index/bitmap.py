"""Bitmap index.

The paper notes that OLAP workloads rely on "bitmap-like indexes" to speed up
even low-selectivity queries, and that degradation *adds an update load* those
indexes were not designed for.  This implementation keeps one bitmap per
distinct key (a Python integer used as a bit set over row positions), so the
C3 benchmark can measure exactly that trade-off: extremely fast multi-key
scans and AND/OR combinations versus per-update cost that grows with the
number of distinct keys touched by degradation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Set

from ..core.values import sort_key
from .base import Index


def _hashable(key: Any) -> Any:
    try:
        hash(key)
        return key
    except TypeError:
        return repr(key)


class BitmapIndex(Index):
    """One bitmap per distinct key over a dense row-position space."""

    kind = "bitmap"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._bitmaps: Dict[Any, int] = {}
        self._display_keys: Dict[Any, Any] = {}
        self._positions: Dict[int, int] = {}      # row_key -> bit position
        self._row_keys: List[Optional[int]] = []  # bit position -> row_key
        self._size = 0

    # -- positions ---------------------------------------------------------

    def _position_of(self, row_key: int) -> int:
        position = self._positions.get(row_key)
        if position is None:
            position = len(self._row_keys)
            self._positions[row_key] = position
            self._row_keys.append(row_key)
        return position

    def _rows_from_bitmap(self, bitmap: int) -> List[int]:
        rows = []
        position = 0
        while bitmap:
            if bitmap & 1:
                row_key = self._row_keys[position]
                if row_key is not None:
                    rows.append(row_key)
            bitmap >>= 1
            position += 1
        return rows

    # -- mutation -------------------------------------------------------------

    def insert(self, key: Any, row_key: int) -> None:
        surrogate = _hashable(key)
        position = self._position_of(row_key)
        bitmap = self._bitmaps.get(surrogate, 0)
        bit = 1 << position
        if not bitmap & bit:
            self._bitmaps[surrogate] = bitmap | bit
            self._size += 1
        self._display_keys[surrogate] = key
        self.stats.inserts += 1

    def delete(self, key: Any, row_key: int) -> bool:
        surrogate = _hashable(key)
        position = self._positions.get(row_key)
        if position is None:
            return False
        bitmap = self._bitmaps.get(surrogate)
        if bitmap is None:
            return False
        bit = 1 << position
        if not bitmap & bit:
            return False
        bitmap &= ~bit
        if bitmap:
            self._bitmaps[surrogate] = bitmap
        else:
            del self._bitmaps[surrogate]
            del self._display_keys[surrogate]
        self._size -= 1
        self.stats.deletes += 1
        return True

    # -- queries ------------------------------------------------------------------

    def search(self, key: Any) -> List[int]:
        self.stats.lookups += 1
        bitmap = self._bitmaps.get(_hashable(key), 0)
        rows = self._rows_from_bitmap(bitmap)
        self.stats.entries_scanned += len(rows)
        return sorted(rows)

    def search_any(self, keys: List[Any]) -> List[int]:
        """Rows matching any of ``keys`` (bitmap OR)."""
        self.stats.lookups += 1
        combined = 0
        for key in keys:
            combined |= self._bitmaps.get(_hashable(key), 0)
        rows = self._rows_from_bitmap(combined)
        self.stats.entries_scanned += len(rows)
        return sorted(rows)

    def count(self, key: Any) -> int:
        """Cardinality of one key without materializing row keys."""
        self.stats.lookups += 1
        return bin(self._bitmaps.get(_hashable(key), 0)).count("1")

    def distinct_keys(self) -> int:
        return len(self._bitmaps)

    # -- introspection ---------------------------------------------------------------

    def keys(self) -> Iterator[Any]:
        return iter(sorted(self._display_keys.values(), key=sort_key))

    def __len__(self) -> int:
        return self._size


__all__ = ["BitmapIndex"]
