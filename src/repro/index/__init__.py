"""Index substrate: B+-tree, hash, bitmap and degradation-aware GT indexes."""

from .base import Index, IndexStats
from .bitmap import BitmapIndex
from .btree import BPlusTreeIndex
from .gt_index import GTIndex
from .hashindex import HashIndex

__all__ = ["Index", "IndexStats", "BPlusTreeIndex", "HashIndex", "BitmapIndex", "GTIndex"]
