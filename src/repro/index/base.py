"""Common index interface and statistics.

Every index maps *keys* (attribute values, possibly degraded) to logical row
keys.  Degradation awareness shows up in two places:

* :meth:`Index.update` — a degradation step changes the indexed key of a row;
  the old key must not survive anywhere in the structure;
* :meth:`Index.raw_image` — a serialization of every key currently held, which
  the forensic scanner greps for residual accurate values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from ..core.errors import IndexError_


@dataclass
class IndexStats:
    """Operation counters used by the C3 benchmark."""

    inserts: int = 0
    deletes: int = 0
    updates: int = 0
    lookups: int = 0
    range_scans: int = 0
    nodes_visited: int = 0
    entries_scanned: int = 0

    def reset(self) -> None:
        self.inserts = 0
        self.deletes = 0
        self.updates = 0
        self.lookups = 0
        self.range_scans = 0
        self.nodes_visited = 0
        self.entries_scanned = 0


class Index:
    """Abstract secondary index mapping keys to row keys."""

    #: Index kind name used in EXPLAIN output and benchmark labels.
    kind: str = "abstract"

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = IndexStats()

    # -- mutation ----------------------------------------------------------

    def insert(self, key: Any, row_key: int) -> None:
        raise NotImplementedError

    def delete(self, key: Any, row_key: int) -> bool:
        """Remove one entry; returns True when the entry existed."""
        raise NotImplementedError

    def update(self, old_key: Any, new_key: Any, row_key: int) -> None:
        """Move ``row_key`` from ``old_key`` to ``new_key`` (degradation step)."""
        removed = self.delete(old_key, row_key)
        if not removed:
            raise IndexError_(
                f"index {self.name!r}: cannot update missing entry {old_key!r} -> {row_key}"
            )
        self.insert(new_key, row_key)
        self.stats.updates += 1

    # -- queries --------------------------------------------------------------

    def search(self, key: Any) -> List[int]:
        """Row keys whose indexed value equals ``key``."""
        raise NotImplementedError

    def range_search(self, low: Any = None, high: Any = None,
                     include_low: bool = True, include_high: bool = True) -> List[int]:
        """Row keys whose indexed value falls in ``[low, high]`` (ordered indexes only)."""
        raise IndexError_(f"index {self.name!r} ({self.kind}) does not support range scans")

    # -- introspection ----------------------------------------------------------

    def keys(self) -> Iterator[Any]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def raw_image(self) -> bytes:
        """Serialize every key held by the index (forensic scanning)."""
        parts = []
        for key in self.keys():
            parts.append(repr(key).encode("utf-8", errors="replace"))
        return b"\x00".join(parts)

    def verify(self) -> None:
        """Check structural invariants; raises :class:`IndexError_` on violation."""


__all__ = ["Index", "IndexStats"]
