"""The FaultPlan DSL: which fault fires where, on which call, decided by seed.

A plan is a list of :class:`FaultRule` triggers over named *sites*.  A site is
a string naming one injection hook compiled into the engine (``"wal.flush"``,
``"pager.sync"``, ``"server.send"``, ``"client.recv"``, ``"clock.advance"``);
components with a plan call :meth:`FaultPlan.fire` at the top of the guarded
operation and act on the returned event — raise ``OSError(ENOSPC)``, write a
torn prefix, drop the socket, skip the clock.  The *kind* string says what to
do; the hook owns the how, so the plan stays free of I/O knowledge.

Three trigger shapes cover the schedules the chaos oracle needs:

* :meth:`~FaultPlan.fail_nth` — fire on exactly the Nth call to the site
  (1-based), then disarm.  Deterministic regardless of seed.
* :meth:`~FaultPlan.fail_once` — fire on the next call, then disarm.
* :meth:`~FaultPlan.fail_with_probability` — fire a seeded coin per call.
  Repeatable for a given ``(seed, call-sequence)`` pair; bound the blast
  radius with ``max_fires``.

Every trigger that fires is appended to :attr:`FaultPlan.fired`, so a test
can assert "each fault kind fired at least once" and a failure report can
print the exact schedule that produced it.  ``fire`` takes an internal lock:
sites are hit concurrently (daemon thread, server loop, client threads) and
the per-site call counters and RNG must stay consistent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..devtools.invariants import TrackedLock


@dataclass(frozen=True)
class FaultEvent:
    """One fault that fired: where, what, and on which call to the site."""

    site: str
    kind: str
    call_index: int
    params: Tuple[Tuple[str, Any], ...] = ()

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def describe(self) -> str:
        extra = "".join(f" {k}={v!r}" for k, v in self.params)
        return f"{self.site}#{self.call_index} -> {self.kind}{extra}"


@dataclass
class FaultRule:
    """One armed trigger.  Built via the ``FaultPlan.fail_*`` methods."""

    site: str
    kind: str
    nth: Optional[int] = None          # fire on exactly this 1-based call
    probability: Optional[float] = None  # else a per-call seeded coin
    max_fires: Optional[int] = 1       # None = unbounded (probability rules)
    params: Tuple[Tuple[str, Any], ...] = ()
    fires: int = field(default=0)

    def exhausted(self) -> bool:
        return self.max_fires is not None and self.fires >= self.max_fires

    def triggers(self, call_index: int, rng: random.Random) -> bool:
        if self.exhausted():
            return False
        if self.nth is not None:
            return call_index == self.nth
        if self.probability is not None:
            return rng.random() < self.probability
        return True  # fail_once: the next call


class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    >>> plan = FaultPlan(seed=42)
    >>> _ = plan.fail_nth("wal.flush", "enospc", 3)
    >>> _ = plan.fail_with_probability("server.send", "disconnect", 0.05)
    >>> plan.fire("wal.flush") is None   # call #1: nothing armed for it
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed * 7919 + 13)
        self._rules: List[FaultRule] = []
        self._calls: Dict[str, int] = {}
        self._lock = TrackedLock("faults.plan")
        #: Every event that fired, in firing order (append-only).
        self.fired: List[FaultEvent] = []

    # -- building the schedule ----------------------------------------------

    def add_rule(self, rule: FaultRule) -> "FaultPlan":
        with self._lock:
            self._rules.append(rule)
        return self

    def fail_nth(self, site: str, kind: str, nth: int,
                 **params: Any) -> "FaultPlan":
        """Fire ``kind`` on exactly the ``nth`` (1-based) call to ``site``."""
        if nth < 1:
            raise ValueError(f"nth is 1-based, got {nth}")
        return self.add_rule(FaultRule(site=site, kind=kind, nth=nth,
                                       params=tuple(sorted(params.items()))))

    def fail_once(self, site: str, kind: str, **params: Any) -> "FaultPlan":
        """Fire ``kind`` on the next call to ``site``, then disarm."""
        return self.add_rule(FaultRule(site=site, kind=kind,
                                       params=tuple(sorted(params.items()))))

    def fail_with_probability(self, site: str, kind: str, probability: float,
                              max_fires: Optional[int] = None,
                              **params: Any) -> "FaultPlan":
        """Fire ``kind`` with seeded probability per call to ``site``."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability outside [0, 1]: {probability}")
        return self.add_rule(FaultRule(site=site, kind=kind,
                                       probability=probability,
                                       max_fires=max_fires,
                                       params=tuple(sorted(params.items()))))

    def disarm(self) -> None:
        """Drop every armed rule; call counters and fired history remain.

        A chaos run disarms the plan once coverage is proven, so teardown
        (final checkpoint, close) runs clean instead of tripping leftover
        background rules.
        """
        with self._lock:
            self._rules.clear()

    # -- consuming it --------------------------------------------------------

    def fire(self, site: str) -> Optional[FaultEvent]:
        """Count one call to ``site``; return the triggering event, if any.

        The first armed rule (in registration order) that triggers wins the
        call; later rules do not also observe it.  Returns ``None`` when the
        call proceeds unfaulted.
        """
        with self._lock:
            call_index = self._calls.get(site, 0) + 1
            self._calls[site] = call_index
            for rule in self._rules:
                if rule.site != site:
                    continue
                if rule.triggers(call_index, self._rng):
                    rule.fires += 1
                    event = FaultEvent(site=site, kind=rule.kind,
                                       call_index=call_index,
                                       params=rule.params)
                    self.fired.append(event)
                    return event
        return None

    # -- observing it --------------------------------------------------------

    def calls(self, site: str) -> int:
        with self._lock:
            return self._calls.get(site, 0)

    def fired_kinds(self) -> Set[str]:
        with self._lock:
            return {event.kind for event in self.fired}

    def fired_sites(self) -> Set[str]:
        with self._lock:
            return {event.site for event in self.fired}

    def describe(self) -> str:
        with self._lock:
            lines = [f"FaultPlan(seed={self.seed}): "
                     f"{len(self._rules)} rules, {len(self.fired)} fired"]
            lines.extend("  " + event.describe() for event in self.fired)
        return "\n".join(lines)


__all__ = ["FaultEvent", "FaultPlan", "FaultRule"]
