"""Seeded, deterministic fault injection (see ``docs/faults.md``).

A :class:`FaultPlan` is an explicit object threaded into the components whose
I/O seams it arms — the WAL and pager (filesystem faults), the wire server and
remote driver (network faults) and the simulated clock (time skips).  There is
no global registry: a chaos run faults exactly the engine it hands the plan
to, and its unfaulted twin never sees one.
"""

from .plan import FaultEvent, FaultPlan, FaultRule

__all__ = ["FaultEvent", "FaultPlan", "FaultRule"]
