"""``python -m repro.server`` — serve an engine over the wire protocol.

SIGTERM (and SIGINT) trigger a drain shutdown: the listener closes, in-flight
statements finish, open transactions roll back, and the engine checkpoints
before the process exits.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from ..engine.database import InstantDB
from .server import DEFAULT_QUEUE_SIZE, InstantDBServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve an InstantDB engine over the binary wire protocol.")
    parser.add_argument("--data-dir", default=None,
                        help="durable data directory (in-memory when omitted)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=5433)
    parser.add_argument("--max-sessions", type=int, default=64)
    parser.add_argument("--idle-timeout", type=float, default=None,
                        help="seconds before an idle session is reaped")
    parser.add_argument("--queue-size", type=int, default=DEFAULT_QUEUE_SIZE,
                        help="per-session request queue bound")
    return parser


async def serve(engine: InstantDB, args: argparse.Namespace) -> None:
    server = InstantDBServer(
        engine, args.host, args.port, max_sessions=args.max_sessions,
        idle_timeout=args.idle_timeout, queue_size=args.queue_size,
        owns_engine=True)
    await server.start()
    host, port = server.address
    print(f"instantdb server listening on {host}:{port}", flush=True)
    loop = asyncio.get_event_loop()
    stop_requested = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop_requested.set)
    await stop_requested.wait()
    print("instantdb server draining...", flush=True)
    await server.stop(drain=True)
    print("instantdb server stopped", flush=True)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # Built before the event loop exists; once served it is pinned to the
    # server's engine-executor thread (see docs/invariants.md).
    engine = InstantDB(args.data_dir) if args.data_dir else InstantDB()
    asyncio.run(serve(engine, args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
