"""Sessions: per-connection transaction context and streaming cursors.

A :class:`Session` is the server-side twin of the PEP 249
:class:`~repro.api.connection.Connection`: it owns at most one open engine
transaction (begun lazily by the first statement, ended by COMMIT/ROLLBACK
frames) and a set of numbered cursors whose result sets stream out of the
engine's operator pipeline in fetch-N batches.

Every method that touches the engine is **synchronous** and must run on the
server's single engine-executor thread — the engine is not thread-safe, and
funnelling all sessions through one executor is what multiplexes the
lock-based single-writer engine safely under the running degradation daemon
(a statement and a degradation wave interleave exactly as two engine calls
would in-process; conflicts surface as ``TransactionAborted`` on the wire).

Commit/rollback *settle* open streams first — remaining rows are
materialized into the cursor's buffer while the transaction still holds its
read locks, mirroring the in-process driver's ``_settle_streams`` — so a
partially fetched cursor keeps serving a consistent snapshot after its
transaction is gone.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.errors import NotSupportedError, ProgrammingError
from ..devtools.invariants import TrackedLock
from ..engine.database import InstantDB
from ..query import ast_nodes as ast
from ..query.executor import QueryResult
from ..query.operators import StreamingResult
from ..txn.transaction import Transaction, TransactionState
from .protocol import decode_purpose

#: Rows pushed inline with an EXECUTE reply (saves the first FETCH round
#: trip; small result sets complete in a single exchange).
DEFAULT_PREFETCH = 64


class ServerCursor:
    """One result set: a live stream plus a buffer of settled rows."""

    def __init__(self, cursor_id: int, columns: List[str],
                 stream: Optional[Iterator[Tuple[Any, ...]]] = None,
                 rows: Optional[List[Tuple[Any, ...]]] = None) -> None:
        self.cursor_id = cursor_id
        self.columns = columns
        self._stream = stream
        self._buffer: List[Tuple[Any, ...]] = rows or []
        self._position = 0

    def take(self, n: int) -> Tuple[List[Tuple[Any, ...]], bool]:
        """Up to ``n`` rows plus a this-was-the-end flag."""
        rows: List[Tuple[Any, ...]] = []
        buffered = self._buffer[self._position:self._position + n]
        rows.extend(buffered)
        self._position += len(buffered)
        while len(rows) < n and self._stream is not None:
            row = next(self._stream, None)
            if row is None:
                self._stream = None
                break
            rows.append(row)
        return rows, self.exhausted

    @property
    def exhausted(self) -> bool:
        return self._stream is None and self._position >= len(self._buffer)

    def materialize(self) -> None:
        """Drain the live stream into the buffer (end-of-transaction)."""
        if self._stream is None:
            return
        self._buffer = self._buffer[self._position:] + list(self._stream)
        self._position = 0
        self._stream = None

    def close(self) -> None:
        self._stream = None
        self._buffer = []
        self._position = 0


class Session:
    """Server-side connection state; engine calls run on the engine executor."""

    def __init__(self, session_id: int, engine: InstantDB,
                 peer: str = "?") -> None:
        self.session_id = session_id
        self.engine = engine
        self.peer = peer
        self.txn: Optional[Transaction] = None
        self.cursors: Dict[int, ServerCursor] = {}
        self._next_cursor = 1
        self.last_activity = time.monotonic()
        self.statements = 0
        self.closed = False

    # -- transaction context ---------------------------------------------------

    def _prune_dead_txn(self) -> None:
        # The engine aborts the session's transaction itself on lock
        # conflicts; the next statement must start a fresh one.
        if self.txn is not None and self.txn.state is not TransactionState.ACTIVE:
            self.txn = None

    def _transaction(self) -> Transaction:
        self._prune_dead_txn()
        if self.txn is None:
            self.txn = self.engine.begin()
        return self.txn

    @property
    def in_txn(self) -> bool:
        self._prune_dead_txn()
        return self.txn is not None

    def _settle_streams(self) -> None:
        for cursor in self.cursors.values():
            cursor.materialize()

    # -- statement execution ---------------------------------------------------

    def execute(self, sql: str, params: Optional[List[Any]],
                purpose_spec: Any, prefetch: int = DEFAULT_PREFETCH
                ) -> Dict[str, Any]:
        """Run one statement; returns the RESULT reply payload."""
        self.statements += 1
        purpose = decode_purpose(purpose_spec)
        result = self.engine.execute(
            sql, purpose=purpose, txn=self._transaction(),
            params=tuple(params) if params is not None else None, stream=True,
        )
        payload: Dict[str, Any] = {"rowcount": -1}
        if isinstance(result, StreamingResult):
            payload.update(self._open_cursor(result.columns,
                                             stream=iter(result),
                                             prefetch=prefetch))
        elif isinstance(result, QueryResult):
            payload.update(self._open_cursor(result.columns,
                                             rows=list(result.rows),
                                             prefetch=prefetch))
        elif isinstance(result, int):
            payload["rowcount"] = result
        return payload

    def executemany(self, sql: str,
                    seq_of_params: List[List[Any]]) -> Dict[str, Any]:
        self.statements += 1
        prepared = self.engine.prepare(sql)
        if isinstance(prepared.statement, (ast.Select, ast.Explain)):
            raise NotSupportedError("executemany() cannot produce result "
                                    "sets; use execute() for queries")
        total = self.engine.executemany(
            sql, [tuple(params) for params in seq_of_params],
            txn=self._transaction())
        return {"rowcount": total}

    def _open_cursor(self, columns: List[str],
                     stream: Optional[Iterator[Tuple[Any, ...]]] = None,
                     rows: Optional[List[Tuple[Any, ...]]] = None,
                     prefetch: int = DEFAULT_PREFETCH) -> Dict[str, Any]:
        cursor_id = self._next_cursor
        self._next_cursor += 1
        cursor = ServerCursor(cursor_id, columns, stream=stream, rows=rows)
        first_rows, done = cursor.take(prefetch) if prefetch > 0 else ([], False)
        if done:
            cursor.close()
        else:
            self.cursors[cursor_id] = cursor
        return {"cursor": cursor_id, "columns": list(columns),
                "rows": first_rows, "done": done}

    # -- cursor traversal ------------------------------------------------------

    def fetch(self, cursor_id: int, n: int) -> Dict[str, Any]:
        cursor = self.cursors.get(cursor_id)
        if cursor is None:
            raise ProgrammingError(f"unknown (or exhausted) cursor {cursor_id}")
        rows, done = cursor.take(max(0, n))
        if done:
            self.cursors.pop(cursor_id, None)
            cursor.close()
        return {"rows": rows, "done": done}

    def close_cursor(self, cursor_id: int) -> None:
        cursor = self.cursors.pop(cursor_id, None)
        if cursor is not None:
            cursor.close()

    # -- transaction protocol --------------------------------------------------

    def begin(self) -> None:
        self._transaction()

    def commit(self) -> None:
        self._prune_dead_txn()
        if self.txn is not None:
            self._settle_streams()
            self.engine.commit(self.txn)
            self.txn = None

    def rollback(self) -> None:
        self._prune_dead_txn()
        if self.txn is not None:
            self._settle_streams()
            self.engine.rollback(self.txn)
            self.txn = None

    # -- lifecycle -------------------------------------------------------------

    def touch(self) -> None:
        self.last_activity = time.monotonic()

    def idle_for(self, now: Optional[float] = None) -> float:
        return (now if now is not None else time.monotonic()) - self.last_activity

    def close(self) -> bool:
        """Tear down the session; returns True if a transaction was rolled
        back (a mid-statement disconnect discards uncommitted work)."""
        if self.closed:
            return False
        self.closed = True
        had_txn = False
        self._prune_dead_txn()
        if self.txn is not None:
            had_txn = True
            self.engine.rollback(self.txn)
            self.txn = None
        for cursor in self.cursors.values():
            cursor.close()
        self.cursors.clear()
        return had_txn


class SessionManager:
    """Admission control plus the id → :class:`Session` registry."""

    def __init__(self, engine: InstantDB, max_sessions: int = 64,
                 idle_timeout: Optional[float] = None) -> None:
        self.engine = engine
        self.max_sessions = max_sessions
        self.idle_timeout = idle_timeout
        self.sessions: Dict[int, Session] = {}
        self._next_id = 1
        # Registry lock: the asyncio loop thread reads the registry (reaper,
        # stats) while the engine executor mutates it via open/close.
        self._lock = TrackedLock("server.sessions")

    def open(self, peer: str = "?") -> Optional[Session]:
        """A new session, or ``None`` when the server is at capacity."""
        with self._lock:
            if len(self.sessions) >= self.max_sessions:
                return None
            session = Session(self._next_id, self.engine, peer=peer)
            self._next_id += 1
            self.sessions[session.session_id] = session
            return session

    def close(self, session: Session) -> bool:
        with self._lock:
            self.sessions.pop(session.session_id, None)
        # Session teardown touches the engine; keep it outside the registry
        # lock so "server.sessions" stays a leaf in the lock hierarchy.
        return session.close()

    def idle_sessions(self, now: Optional[float] = None) -> List[Session]:
        if self.idle_timeout is None:
            return []
        with self._lock:
            return [session for session in self.sessions.values()
                    if session.idle_for(now) > self.idle_timeout]

    def __len__(self) -> int:
        with self._lock:
            return len(self.sessions)


__all__ = ["Session", "SessionManager", "ServerCursor", "DEFAULT_PREFETCH"]
