"""The wire protocol: length-prefixed binary frames over a byte stream.

Every frame is ``[4-byte big-endian length][1-byte frame type][payload]``
where the length counts the type byte plus the payload.  The payload is one
value in a small tagged binary encoding closed under the Python values the
engine produces — including the degradation sentinels ``SUPPRESSED``,
``REMOVED`` and ``NULL``, which must survive the network round trip exactly
(a degraded value arriving as the string ``"SUPPRESSED"`` would be a privacy
*and* a correctness bug).

The protocol is strictly request/reply per session: the client sends one
request frame and reads frames until a terminal reply (``OK``, ``RESULT``,
``ROWS`` or ``ERROR``) arrives.  Every reply carries the session's
``in_txn`` flag so the remote connection can mirror PEP 249's
``in_transaction`` without extra round trips.

Error replies carry the server-side exception *class name*; the client
resolves it against :mod:`repro.core.errors`, so a remote
``CatalogError`` is catchable as ``CatalogError``, ``ProgrammingError``
or ``DatabaseError`` — exactly like the in-process driver.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple

from ..core.errors import OperationalError
from ..core.values import NULL, REMOVED, SUPPRESSED

#: Protocol version exchanged in the HELLO handshake.
PROTOCOL_VERSION = 1

#: Frames larger than this are rejected before allocation — a malformed (or
#: malicious) length prefix must not make the peer allocate gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

# -- frame types (request) --------------------------------------------------------

HELLO = 0x01
EXECUTE = 0x02
EXECUTEMANY = 0x03
FETCH = 0x04
CLOSE_CURSOR = 0x05
BEGIN = 0x06
COMMIT = 0x07
ROLLBACK = 0x08
METRICS = 0x09
GOODBYE = 0x0A

# -- frame types (reply) ----------------------------------------------------------

OK = 0x80
RESULT = 0x81
ROWS = 0x82
ERROR = 0xEE

FRAME_NAMES = {
    HELLO: "HELLO", EXECUTE: "EXECUTE", EXECUTEMANY: "EXECUTEMANY",
    FETCH: "FETCH", CLOSE_CURSOR: "CLOSE_CURSOR", BEGIN: "BEGIN",
    COMMIT: "COMMIT", ROLLBACK: "ROLLBACK", METRICS: "METRICS",
    GOODBYE: "GOODBYE", OK: "OK", RESULT: "RESULT", ROWS: "ROWS",
    ERROR: "ERROR",
}


class ProtocolError(OperationalError):
    """Malformed frame, unknown tag, or protocol sequence violation."""


# -- value codec ------------------------------------------------------------------

_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")


def _encode_into(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif value is SUPPRESSED:
        out.append(b"S")
    elif value is REMOVED:
        out.append(b"R")
    elif value is NULL:
        out.append(b"Z")
    elif isinstance(value, int):
        raw = str(value).encode("ascii")
        out.append(b"i" + _U32.pack(len(raw)) + raw)
    elif isinstance(value, float):
        out.append(b"f" + _F64.pack(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"s" + _U32.pack(len(raw)) + raw)
    elif isinstance(value, bytes):
        out.append(b"b" + _U32.pack(len(value)) + value)
    elif isinstance(value, tuple):
        out.append(b"t" + _U32.pack(len(value)))
        for element in value:
            _encode_into(element, out)
    elif isinstance(value, list):
        out.append(b"l" + _U32.pack(len(value)))
        for element in value:
            _encode_into(element, out)
    elif isinstance(value, dict):
        out.append(b"d" + _U32.pack(len(value)))
        for key, element in value.items():
            _encode_into(key, out)
            _encode_into(element, out)
    else:
        raise ProtocolError(
            f"value of type {type(value).__name__!r} cannot cross the wire")


def encode_value(value: Any) -> bytes:
    parts: List[bytes] = []
    _encode_into(value, parts)
    return b"".join(parts)


def _decode_at(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise ProtocolError("truncated payload")
    tag = data[offset:offset + 1]
    offset += 1
    if tag == b"N":
        return None, offset
    if tag == b"T":
        return True, offset
    if tag == b"F":
        return False, offset
    if tag == b"S":
        return SUPPRESSED, offset
    if tag == b"R":
        return REMOVED, offset
    if tag == b"Z":
        return NULL, offset
    if tag == b"f":
        if offset + 8 > len(data):
            raise ProtocolError("truncated float")
        return _F64.unpack_from(data, offset)[0], offset + 8
    if tag in (b"i", b"s", b"b"):
        if offset + 4 > len(data):
            raise ProtocolError("truncated length")
        length = _U32.unpack_from(data, offset)[0]
        offset += 4
        if offset + length > len(data):
            raise ProtocolError("truncated value body")
        raw = data[offset:offset + length]
        offset += length
        if tag == b"i":
            try:
                return int(raw.decode("ascii")), offset
            except ValueError as error:
                raise ProtocolError("malformed integer") from error
        if tag == b"s":
            try:
                return raw.decode("utf-8"), offset
            except UnicodeDecodeError as error:
                raise ProtocolError("malformed string") from error
        return raw, offset
    if tag in (b"t", b"l"):
        if offset + 4 > len(data):
            raise ProtocolError("truncated length")
        count = _U32.unpack_from(data, offset)[0]
        offset += 4
        elements: List[Any] = []
        for _ in range(count):
            element, offset = _decode_at(data, offset)
            elements.append(element)
        return (tuple(elements) if tag == b"t" else elements), offset
    if tag == b"d":
        if offset + 4 > len(data):
            raise ProtocolError("truncated length")
        count = _U32.unpack_from(data, offset)[0]
        offset += 4
        mapping: Dict[Any, Any] = {}
        for _ in range(count):
            key, offset = _decode_at(data, offset)
            value, offset = _decode_at(data, offset)
            mapping[key] = value
        return mapping, offset
    raise ProtocolError(f"unknown value tag {tag!r}")


def decode_value(data: bytes) -> Any:
    value, offset = _decode_at(data, 0)
    if offset != len(data):
        raise ProtocolError(f"{len(data) - offset} trailing payload byte(s)")
    return value


# -- frame codec ------------------------------------------------------------------


def encode_frame(frame_type: int, payload: Any) -> bytes:
    body = bytes([frame_type]) + encode_value(payload)
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    return _U32.pack(len(body)) + body


def decode_frame_body(body: bytes) -> Tuple[int, Any]:
    if not body:
        raise ProtocolError("empty frame")
    return body[0], decode_value(body[1:])


def parse_frame_length(prefix: bytes) -> int:
    if len(prefix) != 4:
        raise ProtocolError("truncated frame length prefix")
    length = _U32.unpack(prefix)[0]
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    return length


# -- purpose serialization ---------------------------------------------------------


def encode_purpose(purpose: Any) -> Any:
    """Wire form of a purpose: ``None``, a name, or an ad-hoc description."""
    if purpose is None or isinstance(purpose, str):
        return purpose
    return {
        "name": purpose.name,
        "requirements": [
            [req.table, req.column, req.level]
            for req in purpose._requirements.values()
        ],
    }


def decode_purpose(spec: Any) -> Any:
    """Rebuild the purpose argument server-side.

    A name stays a name (the engine resolves it against its catalog — and a
    catalog purpose keeps plan-cache eligibility); an ad-hoc description is
    rebuilt as a fresh :class:`~repro.core.policy.Purpose`, which the engine
    correctly treats as non-canonical for plan caching.
    """
    if spec is None or isinstance(spec, str):
        return spec
    from ..core.policy import AccuracyRequirement, Purpose
    if not isinstance(spec, dict) or "name" not in spec:
        raise ProtocolError("malformed purpose specification")
    purpose = Purpose(spec["name"])
    for entry in spec.get("requirements", ()):
        table, column, level = entry
        purpose.add_requirement(AccuracyRequirement(table=table, column=column,
                                                    level=level))
    return purpose


__all__ = [
    "PROTOCOL_VERSION", "MAX_FRAME_BYTES", "ProtocolError",
    "HELLO", "EXECUTE", "EXECUTEMANY", "FETCH", "CLOSE_CURSOR", "BEGIN",
    "COMMIT", "ROLLBACK", "METRICS", "GOODBYE", "OK", "RESULT", "ROWS",
    "ERROR", "FRAME_NAMES",
    "encode_value", "decode_value", "encode_frame", "decode_frame_body",
    "parse_frame_length", "encode_purpose", "decode_purpose",
]
