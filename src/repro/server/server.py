"""The asyncio wire server: admission, backpressure, and engine multiplexing.

Concurrency model
-----------------

* One **reader task** per connection parses length-prefixed frames and feeds
  a bounded :class:`asyncio.Queue`.  When the queue is full the reader stops
  reading, the kernel's receive window fills, and the client blocks — the
  bounded queue *is* the backpressure mechanism, end to end over TCP.
* One **worker task** per connection drains the queue, runs each request,
  and writes the reply.  Replies go through ``writer.drain()`` under a small
  write-buffer limit, so a slow-reading client throttles its own worker
  instead of buffering unbounded replies in server memory.
* All engine access — statements, commits, rollbacks, fetch-N pulls on live
  streams, and session teardown — funnels through a **single-thread
  executor**.  The engine is lock-based and single-writer; serializing every
  session's engine work on one thread multiplexes many network clients over
  it safely while the degradation daemon keeps firing between statements.
  Cross-session conflicts surface exactly as in-process: as
  ``TransactionAborted`` error frames.

Admission is a hard cap: past ``max_sessions`` concurrent sessions a new
connection is shed with a typed, *retryable* ``OverloadError`` frame before
any session state is allocated (the remote driver backs off and retries).
An optional idle reaper rolls back and closes sessions that have gone quiet
for longer than ``idle_timeout`` seconds.

Overload and fault hardening
----------------------------

* ``statement_timeout`` bounds every EXECUTE / EXECUTEMANY / FETCH: past the
  budget the client gets a retryable ``StatementTimeoutError`` frame and the
  connection closes — the engine thread cannot be interrupted mid-statement,
  so the reply races ahead of it and session teardown (queued on the same
  executor) rolls the transaction back once the statement finishes.
* an optional :class:`~repro.faults.FaultPlan` arms the ``server.send`` /
  ``server.recv`` sites: reply frames can be truncated mid-frame, the
  transport dropped abruptly, or the peer stalled — the failure modes the
  chaos oracle drives to prove clients re-sync and replay safely.

``stop(drain=True)`` stops accepting, lets in-flight requests finish (up to
``drain_timeout``), then closes connections — the SIGTERM path in
``python -m repro.server``.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from ..core.errors import Error, InstantDBError, OperationalError, StatementTimeoutError
from ..devtools import invariants
from ..engine.database import InstantDB
from ..faults import FaultPlan
from . import protocol
from .metrics import ServerMetrics
from .protocol import ProtocolError
from .sessions import DEFAULT_PREFETCH, Session, SessionManager

#: Frames a connection may queue before the reader stops reading.
DEFAULT_QUEUE_SIZE = 32

#: High-water mark for a connection's outgoing buffer; ``drain()`` blocks
#: the worker past this, throttling replies to slow clients.
DEFAULT_WRITE_LIMIT = 256 * 1024

_EOF = None


class _Connection:
    """Per-connection plumbing: the queue between reader and worker."""

    def __init__(self, session: Session, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, queue_size: int) -> None:
        self.session = session
        self.reader = reader
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self.busy = False
        self.greeted = False
        self.said_goodbye = False
        self.reaped = False

    @property
    def settled(self) -> bool:
        return self.queue.empty() and not self.busy

    def force_close(self) -> None:
        try:
            self.writer.close()
        except Exception:  # reprolint: disable=no-swallowed-abort -- transport already dead; nothing to surface
            pass


class InstantDBServer:
    """Serve an :class:`InstantDB` engine over the binary wire protocol."""

    def __init__(self, engine: InstantDB, host: str = "127.0.0.1",
                 port: int = 0, *, max_sessions: int = 64,
                 idle_timeout: Optional[float] = None,
                 queue_size: int = DEFAULT_QUEUE_SIZE,
                 prefetch: int = DEFAULT_PREFETCH,
                 write_buffer_limit: int = DEFAULT_WRITE_LIMIT,
                 statement_timeout: Optional[float] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 owns_engine: bool = False) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self.prefetch = prefetch
        self.queue_size = queue_size
        self.write_buffer_limit = write_buffer_limit
        self.statement_timeout = statement_timeout
        self.faults = fault_plan
        self.owns_engine = owns_engine
        self.sessions = SessionManager(engine, max_sessions=max_sessions,
                                       idle_timeout=idle_timeout)
        self.metrics = ServerMetrics()
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._connections: Dict[int, _Connection] = {}
        self._handlers: Dict[asyncio.Task, None] = {}
        self._reaper: Optional[asyncio.Task] = None
        self._closing = False

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "InstantDBServer":
        self._executor = ThreadPoolExecutor(max_workers=1,
                                            thread_name_prefix="instantdb-engine")
        # Pin the engine to the executor thread: from here until stop(), any
        # engine entry off this thread is a confinement violation (enforced
        # at runtime under REPRO_DEBUG_INVARIANTS=1).
        self._executor.submit(invariants.register_engine_thread,
                              self.engine).result()
        self._server = await asyncio.start_server(self._handle_client,
                                                  self.host, self.port)
        if self.sessions.idle_timeout is not None:
            self._reaper = asyncio.ensure_future(self._reap_idle_sessions())
        return self

    @property
    def address(self) -> Tuple[str, int]:
        assert self._server is not None and self._server.sockets
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self, drain: bool = True, drain_timeout: float = 5.0) -> None:
        """Stop accepting, drain in-flight requests, then close everything."""
        self._closing = True
        if self._reaper is not None:
            self._reaper.cancel()
            self._reaper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            deadline = time.monotonic() + drain_timeout
            while (time.monotonic() < deadline
                   and any(not conn.settled
                           for conn in self._connections.values())):
                await asyncio.sleep(0.01)
        for conn in list(self._connections.values()):
            conn.force_close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        if self.owns_engine and self._executor is not None:
            # Close on the executor: the engine is still pinned to it.
            await self.run_on_engine(self.engine.close)
        invariants.unregister_engine_thread(self.engine)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def run_on_engine(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn`` on the engine executor, serialized with all statements.

        Test and benchmark harnesses use this to drive the simulated clock
        (degradation waves) safely between client statements.
        """
        assert self._executor is not None, "server is not running"
        loop = asyncio.get_event_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    # -- connection handling ---------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers[task] = None
        try:
            await self._serve_connection(reader, writer)
        finally:
            if task is not None:
                self._handlers.pop(task, None)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        session = None if self._closing else self.sessions.open(peer)
        if session is None:
            self.metrics.sessions_rejected += 1
            if self._closing:
                error_class, reason = "OperationalError", "server is shutting down"
            else:
                # Typed retryable shed: the driver backs off and redials.
                error_class = "OverloadError"
                reason = (f"server at capacity ({self.sessions.max_sessions} "
                          "sessions); retry after a backoff")
            try:
                await self._write_frame(writer, protocol.ERROR, {
                    "error_class": error_class, "message": reason,
                    "in_txn": False,
                })
            except ConnectionError:
                pass  # the peer (or an injected fault) already dropped the link
            writer.close()
            return
        transport = writer.transport
        if transport is not None:
            transport.set_write_buffer_limits(high=self.write_buffer_limit)
        self.metrics.sessions_opened += 1
        self.metrics.active_sessions = len(self.sessions)
        conn = _Connection(session, reader, writer, self.queue_size)
        self._connections[session.session_id] = conn
        reader_task = asyncio.ensure_future(self._read_frames(conn))
        try:
            await self._serve_requests(conn)
        finally:
            reader_task.cancel()
            try:
                await reader_task
            except (asyncio.CancelledError, Exception):  # reprolint: disable=no-swallowed-abort -- reader is cancelled; session teardown below must still run
                pass
            self._connections.pop(session.session_id, None)
            try:
                had_txn = await self.run_on_engine(self.sessions.close, session)
            except Error:
                # The rollback of the disconnected session hit a failing
                # device; the engine has already degraded to read-only and
                # there is no client left to surface this to.
                self.metrics.session_close_failures += 1
                had_txn = True
            if had_txn and not conn.said_goodbye:
                self.metrics.disconnects_with_open_txn += 1
            self.metrics.sessions_closed += 1
            if conn.reaped:
                self.metrics.sessions_reaped += 1
            self.metrics.active_sessions = len(self.sessions)
            conn.force_close()

    async def _read_frames(self, conn: _Connection) -> None:
        """Parse frames off the socket into the bounded per-session queue."""
        try:
            while True:
                if self.faults is not None:
                    event = self.faults.fire("server.recv")
                    if event is not None:
                        if event.kind == "stall":
                            await asyncio.sleep(
                                float(event.param("seconds", 0.05)))
                        else:
                            # disconnect / truncate: the inbound stream dies
                            # mid-frame; the session tears down as on EOF.
                            conn.force_close()
                            await conn.queue.put(_EOF)
                            return
                prefix = await conn.reader.readexactly(4)
                length = protocol.parse_frame_length(prefix)
                body = await conn.reader.readexactly(length)
                frame_type, payload = protocol.decode_frame_body(body)
                await conn.queue.put(("frame", frame_type, payload))
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            await conn.queue.put(_EOF)
        except ProtocolError as error:
            await conn.queue.put(("protocol_error", error, None))

    async def _serve_requests(self, conn: _Connection) -> None:
        while True:
            item = await conn.queue.get()
            self.metrics.queue_depth = conn.queue.qsize()
            if item is _EOF:
                return
            kind, first, second = item
            conn.busy = True
            try:
                if kind == "protocol_error":
                    self.metrics.protocol_errors += 1
                    await self._write_error(conn, first)
                    return
                done = await self._dispatch(conn, first, second)
                if done:
                    return
            except ConnectionError:
                return
            finally:
                conn.busy = False

    # -- request dispatch ------------------------------------------------------

    async def _dispatch(self, conn: _Connection, frame_type: int,
                        payload: Any) -> bool:
        """Handle one request; returns True when the connection should end."""
        session = conn.session
        session.touch()
        if frame_type == protocol.HELLO:
            return await self._handle_hello(conn, payload)
        if not conn.greeted:
            self.metrics.protocol_errors += 1
            await self._write_error(conn, ProtocolError(
                "handshake required before any other frame"))
            return True
        if frame_type == protocol.GOODBYE:
            conn.said_goodbye = True
            await self._write_frame(conn.writer, protocol.OK,
                                    {"in_txn": False})
            return True
        if frame_type == protocol.METRICS:
            self.metrics.queue_depth = sum(
                c.queue.qsize() for c in self._connections.values())
            snapshot = self.metrics.snapshot()
            snapshot["in_txn"] = session.in_txn
            await self._write_frame(conn.writer, protocol.OK, snapshot)
            return False
        try:
            handler = _ENGINE_FRAMES[frame_type]
        except KeyError:
            self.metrics.protocol_errors += 1
            await self._write_error(conn, ProtocolError(
                f"unknown frame type 0x{frame_type:02X}"))
            return True
        try:
            if (self.statement_timeout is not None
                    and frame_type in _TIMED_FRAMES):
                reply_type, reply = await asyncio.wait_for(
                    handler(self, session, payload),
                    timeout=self.statement_timeout)
            else:
                reply_type, reply = await handler(self, session, payload)
        except asyncio.TimeoutError:
            # The engine thread cannot be interrupted mid-statement: reply
            # now, close the connection, and let session teardown (queued on
            # the same executor) roll the transaction back once the statement
            # finishes.  Retrying from the transaction start is then safe.
            self.metrics.statement_timeouts += 1
            await self._write_error(conn, StatementTimeoutError(
                f"statement exceeded the {self.statement_timeout:g}s budget; "
                "the session is closed and its transaction rolled back"))
            return True
        except ProtocolError as error:
            self.metrics.protocol_errors += 1
            await self._write_error(conn, error)
            return True
        except InstantDBError as error:
            self.metrics.errors += 1
            await self._write_error(conn, error)
            return False
        except Exception as error:  # engine invariant failure — don't hide it
            self.metrics.errors += 1
            await self._write_error(conn, error)
            return False
        reply["in_txn"] = session.in_txn
        await self._write_frame(conn.writer, reply_type, reply)
        return False

    async def _handle_hello(self, conn: _Connection, payload: Any) -> bool:
        version = payload.get("version") if isinstance(payload, dict) else None
        if version != protocol.PROTOCOL_VERSION:
            self.metrics.protocol_errors += 1
            await self._write_error(conn, ProtocolError(
                f"unsupported protocol version {version!r} "
                f"(server speaks {protocol.PROTOCOL_VERSION})"))
            return True
        conn.greeted = True
        await self._write_frame(conn.writer, protocol.OK, {
            "version": protocol.PROTOCOL_VERSION,
            "session": conn.session.session_id,
            "server": "instantdb",
            "in_txn": False,
        })
        return False

    # -- engine-backed frames (run on the engine executor) ---------------------

    async def _do_execute(self, session: Session,
                          payload: Any) -> Tuple[int, Dict[str, Any]]:
        sql, params = _require(payload, "sql"), payload.get("params")
        started = time.perf_counter()
        self.metrics.in_flight += 1
        try:
            reply = await self.run_on_engine(
                lambda: session.execute(sql, params, payload.get("purpose"),
                                        prefetch=self.prefetch))
        finally:
            self.metrics.in_flight -= 1
            self.metrics.record_statement(time.perf_counter() - started)
        return protocol.RESULT, reply

    async def _do_executemany(self, session: Session,
                              payload: Any) -> Tuple[int, Dict[str, Any]]:
        sql = _require(payload, "sql")
        seq = _require(payload, "params_seq")
        started = time.perf_counter()
        self.metrics.in_flight += 1
        try:
            reply = await self.run_on_engine(
                lambda: session.executemany(sql, seq))
        finally:
            self.metrics.in_flight -= 1
            self.metrics.record_statement(time.perf_counter() - started)
        return protocol.RESULT, reply

    async def _do_fetch(self, session: Session,
                        payload: Any) -> Tuple[int, Dict[str, Any]]:
        cursor_id = _require(payload, "cursor")
        count = payload.get("n", 1)
        reply = await self.run_on_engine(
            lambda: session.fetch(cursor_id, count))
        return protocol.ROWS, reply

    async def _do_close_cursor(self, session: Session,
                               payload: Any) -> Tuple[int, Dict[str, Any]]:
        cursor_id = _require(payload, "cursor")
        await self.run_on_engine(lambda: session.close_cursor(cursor_id))
        return protocol.OK, {}

    async def _do_begin(self, session: Session,
                        payload: Any) -> Tuple[int, Dict[str, Any]]:
        await self.run_on_engine(session.begin)
        return protocol.OK, {}

    async def _do_commit(self, session: Session,
                         payload: Any) -> Tuple[int, Dict[str, Any]]:
        await self.run_on_engine(session.commit)
        return protocol.OK, {}

    async def _do_rollback(self, session: Session,
                           payload: Any) -> Tuple[int, Dict[str, Any]]:
        await self.run_on_engine(session.rollback)
        return protocol.OK, {}

    # -- idle reaper -----------------------------------------------------------

    async def _reap_idle_sessions(self) -> None:
        assert self.sessions.idle_timeout is not None
        interval = max(0.01, self.sessions.idle_timeout / 4.0)
        while True:
            await asyncio.sleep(interval)
            for session in self.sessions.idle_sessions():
                conn = self._connections.get(session.session_id)
                if conn is not None and conn.settled:
                    conn.reaped = True
                    conn.force_close()

    # -- frame output ----------------------------------------------------------

    async def _write_frame(self, writer: asyncio.StreamWriter,
                           frame_type: int, payload: Any) -> None:
        data = protocol.encode_frame(frame_type, payload)
        if self.faults is not None:
            event = self.faults.fire("server.send")
            if event is not None:
                if event.kind == "stall":
                    await asyncio.sleep(float(event.param("seconds", 0.05)))
                elif event.kind == "truncate":
                    # Half a reply frame, then a dead transport: the client
                    # must treat the short read as poison, never resync.
                    writer.write(data[:max(1, len(data) // 2)])
                    writer.close()
                    raise ConnectionResetError("injected: reply truncated")
                else:  # disconnect
                    writer.close()
                    raise ConnectionResetError("injected: connection dropped")
        writer.write(data)
        await writer.drain()

    async def _write_error(self, conn: _Connection, error: Exception) -> None:
        await self._write_frame(conn.writer, protocol.ERROR, {
            "error_class": type(error).__name__,
            "message": str(error),
            "in_txn": conn.session.in_txn,
        })


def _require(payload: Any, key: str) -> Any:
    if not isinstance(payload, dict) or key not in payload:
        raise ProtocolError(f"request payload is missing {key!r}")
    return payload[key]


#: Frames covered by ``statement_timeout`` (the ones that run engine work of
#: unbounded size; BEGIN/COMMIT/ROLLBACK are small and must not be cut short).
_TIMED_FRAMES = frozenset({protocol.EXECUTE, protocol.EXECUTEMANY,
                           protocol.FETCH})

_ENGINE_FRAMES: Dict[int, Callable[..., Awaitable[Tuple[int, Dict[str, Any]]]]] = {
    protocol.EXECUTE: InstantDBServer._do_execute,
    protocol.EXECUTEMANY: InstantDBServer._do_executemany,
    protocol.FETCH: InstantDBServer._do_fetch,
    protocol.CLOSE_CURSOR: InstantDBServer._do_close_cursor,
    protocol.BEGIN: InstantDBServer._do_begin,
    protocol.COMMIT: InstantDBServer._do_commit,
    protocol.ROLLBACK: InstantDBServer._do_rollback,
}


class ServerThread:
    """Run an :class:`InstantDBServer` on a background event-loop thread.

    The test and benchmark harness for the serving layer: ``start()`` blocks
    until the socket is listening, ``address`` is the live ``(host, port)``,
    ``submit(fn)`` runs ``fn`` on the engine executor serialized with client
    statements (e.g. ``advance_time`` to fire a degradation wave mid-load),
    and ``stop()`` performs the drain shutdown.
    """

    def __init__(self, engine: InstantDB, host: str = "127.0.0.1",
                 port: int = 0, **server_kwargs: Any) -> None:
        import threading
        self.server = InstantDBServer(engine, host, port, **server_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="instantdb-server")
        self._stopped = False

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._loop is None:
            raise RuntimeError("server thread failed to start")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop.run_until_complete(self.server.start())
        self._loop = loop
        self._ready.set()
        loop.run_forever()
        loop.close()

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    def submit(self, fn: Callable[..., Any], *args: Any) -> Any:
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(
            self.server.run_on_engine(fn, *args), self._loop)
        return future.result(timeout=30)

    def metrics(self) -> Dict[str, Any]:
        return self.server.metrics.snapshot()

    def stop(self, drain: bool = True) -> None:
        if self._stopped or self._loop is None:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(drain=drain), self._loop)
        future.result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)


__all__ = ["InstantDBServer", "ServerThread", "DEFAULT_QUEUE_SIZE",
           "DEFAULT_WRITE_LIMIT"]
