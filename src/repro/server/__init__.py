"""Network serving subsystem: wire protocol, sessions, and asyncio server.

Serves a lock-based single-writer :class:`~repro.engine.database.InstantDB`
engine — with its degradation daemon running — to many concurrent network
clients.  See :mod:`repro.server.server` for the concurrency model and
:mod:`repro.server.protocol` for the frame formats.  The matching remote
PEP 249 driver lives in :mod:`repro.client`.
"""

from .metrics import LatencyWindow, ServerMetrics
from .protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION, ProtocolError
from .server import (
    DEFAULT_QUEUE_SIZE,
    DEFAULT_WRITE_LIMIT,
    InstantDBServer,
    ServerThread,
)
from .sessions import DEFAULT_PREFETCH, Session, SessionManager

__all__ = [
    "InstantDBServer", "ServerThread", "Session", "SessionManager",
    "ServerMetrics", "LatencyWindow", "ProtocolError",
    "PROTOCOL_VERSION", "MAX_FRAME_BYTES", "DEFAULT_PREFETCH",
    "DEFAULT_QUEUE_SIZE", "DEFAULT_WRITE_LIMIT",
]
