"""Server metrics: session/statement counters and statement-latency quantiles.

Latencies go into a fixed-size ring buffer (the last ``capacity`` statement
timings); quantiles are computed over that window on demand.  The window
keeps the cost O(1) per statement and bounds memory no matter how long the
server runs — a serving-layer analogue of the engine's incremental
statistics.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class LatencyWindow:
    """Ring buffer of the most recent statement latencies (seconds)."""

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._samples: List[float] = []
        self._next = 0
        self.count = 0
        self.total = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if len(self._samples) < self.capacity:
            self._samples.append(seconds)
        else:
            self._samples[self._next] = seconds
            self._next = (self._next + 1) % self.capacity

    def quantile(self, fraction: float) -> Optional[float]:
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    @property
    def p50(self) -> Optional[float]:
        return self.quantile(0.50)

    @property
    def p99(self) -> Optional[float]:
        return self.quantile(0.99)


class ServerMetrics:
    """Counters and gauges exposed over the METRICS frame and Python API."""

    def __init__(self, latency_capacity: int = 4096) -> None:
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.sessions_rejected = 0
        self.sessions_reaped = 0
        self.active_sessions = 0
        self.in_flight = 0
        self.queue_depth = 0
        self.statements = 0
        self.errors = 0
        self.protocol_errors = 0
        self.disconnects_with_open_txn = 0
        self.statement_timeouts = 0
        self.session_close_failures = 0
        self.latency = LatencyWindow(latency_capacity)

    def record_statement(self, seconds: float) -> None:
        self.statements += 1
        self.latency.record(seconds)

    def snapshot(self) -> Dict[str, Any]:
        """A wire-encodable view (floats/ints only; None for empty windows)."""
        return {
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "sessions_rejected": self.sessions_rejected,
            "sessions_reaped": self.sessions_reaped,
            "active_sessions": self.active_sessions,
            "in_flight": self.in_flight,
            "queue_depth": self.queue_depth,
            "statements": self.statements,
            "errors": self.errors,
            "protocol_errors": self.protocol_errors,
            "disconnects_with_open_txn": self.disconnects_with_open_txn,
            "statement_timeouts": self.statement_timeouts,
            "session_close_failures": self.session_close_failures,
            "latency_count": self.latency.count,
            "latency_p50": self.latency.p50,
            "latency_p99": self.latency.p99,
        }


__all__ = ["LatencyWindow", "ServerMetrics"]
