"""Life Cycle Policies (paper §II, Fig. 2 and Fig. 3).

An *attribute LCP* is a deterministic finite automaton over the accuracy
levels of one generalization scheme: a sequence of degradable attribute states
``d0 .. dn`` together with the delay spent in each state before the next
transition fires.  A *tuple LCP* is the product automaton of the attribute
LCPs of a table: each independent attribute transition moves the tuple as a
whole into a new tuple state ``t_k`` until every degradable attribute reached
its final state (Fig. 3).

The paper's simplifying assumptions are the default (transitions triggered by
time only, one LCP per attribute, applied uniformly to every tuple), but the
"future work" extensions are also supported and exercised by the ablation
benchmark: transitions may be triggered by named *events* instead of delays
and policies may be overridden per tuple (paranoid users defining their own
LCP).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .clock import format_duration, parse_duration
from .errors import PolicyError
from .generalization import GeneralizationScheme

#: Value used for transitions that never fire by time (event triggered only).
NEVER = float("inf")


@dataclass(frozen=True)
class Transition:
    """A single LCP transition between two consecutive attribute states.

    Exactly one of ``delay`` (seconds spent in the source state) or ``event``
    (name of the event that fires the transition) must be provided.
    """

    delay: Optional[float] = None
    event: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.delay is None) == (self.event is None):
            raise PolicyError("a transition needs exactly one of delay= or event=")
        if self.delay is not None and self.delay < 0:
            raise PolicyError("transition delay must be non-negative")

    @property
    def timed(self) -> bool:
        return self.delay is not None

    def describe(self) -> str:
        if self.timed:
            return format_duration(float(self.delay))
        return f"on event {self.event!r}"


def _as_transition(spec: Any) -> Transition:
    """Coerce a user friendly transition spec into a :class:`Transition`.

    Accepted specs: a :class:`Transition`, a number of seconds, a duration
    string (``"1 hour"``), or a mapping ``{"event": name}``.
    """
    if isinstance(spec, Transition):
        return spec
    if isinstance(spec, (int, float)):
        return Transition(delay=float(spec))
    if isinstance(spec, str):
        return Transition(delay=parse_duration(spec))
    if isinstance(spec, Mapping):
        if "event" in spec:
            return Transition(event=str(spec["event"]))
        if "delay" in spec:
            return Transition(delay=float(spec["delay"]))
    raise PolicyError(f"cannot interpret transition spec {spec!r}")


class AttributeLCP:
    """Timed (or event triggered) degradation automaton for one attribute.

    Parameters
    ----------
    scheme:
        The generalization scheme of the attribute's domain.
    states:
        Accuracy levels visited, strictly increasing.  Defaults to every level
        of the scheme from 0 to the suppressed root.
    transitions:
        One spec per consecutive state pair (see :func:`_as_transition`).
    name:
        Policy name used by the catalog; defaults to ``"<domain>_lcp"``.

    >>> from repro.core.domains import build_location_tree
    >>> gt = build_location_tree()
    >>> lcp = AttributeLCP(gt, transitions=["1 hour", "1 day", "1 month", "3 months"])
    >>> lcp.state_at(0)
    0
    >>> lcp.state_at(3600)
    1
    """

    def __init__(self, scheme: GeneralizationScheme,
                 states: Optional[Sequence[int]] = None,
                 transitions: Optional[Sequence[Any]] = None,
                 name: Optional[str] = None) -> None:
        self.scheme = scheme
        self.name = name or f"{scheme.name}_lcp"
        if states is None:
            states = list(range(scheme.num_levels))
        self.states: List[int] = [int(s) for s in states]
        self._validate_states()
        if transitions is None:
            raise PolicyError(
                f"policy {self.name!r}: transitions are required "
                f"({len(self.states) - 1} expected)"
            )
        specs = [
            _as_transition(spec) for spec in transitions
        ]
        if len(specs) != len(self.states) - 1:
            raise PolicyError(
                f"policy {self.name!r}: expected {len(self.states) - 1} transitions "
                f"for {len(self.states)} states, got {len(specs)}"
            )
        self.transitions: List[Transition] = specs

    # -- validation ---------------------------------------------------------

    def _validate_states(self) -> None:
        if len(self.states) < 2:
            raise PolicyError(
                f"policy {self.name!r}: an LCP needs at least two states "
                "(initial accuracy and one degraded state)"
            )
        previous = -1
        for state in self.states:
            if not 0 <= state < self.scheme.num_levels:
                raise PolicyError(
                    f"policy {self.name!r}: level {state} outside domain "
                    f"{self.scheme.name!r} (0..{self.scheme.max_level})"
                )
            if state <= previous:
                raise PolicyError(
                    f"policy {self.name!r}: states must be strictly increasing "
                    f"(degradation is irreversible), got {self.states!r}"
                )
            previous = state

    # -- introspection ------------------------------------------------------

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def initial_level(self) -> int:
        return self.states[0]

    @property
    def final_level(self) -> int:
        return self.states[-1]

    @property
    def fully_suppresses(self) -> bool:
        """True when the final state is the scheme's suppressed root."""
        return self.final_level == self.scheme.max_level

    def state_level(self, state_index: int) -> int:
        """Accuracy level of state ``d<state_index>``."""
        try:
            return self.states[state_index]
        except IndexError:
            raise PolicyError(
                f"policy {self.name!r}: no state d{state_index}"
            ) from None

    def level_to_state(self, level: int) -> int:
        """State index whose accuracy level is ``level``."""
        try:
            return self.states.index(level)
        except ValueError:
            raise PolicyError(
                f"policy {self.name!r}: level {level} is not one of its states"
            ) from None

    def state_names(self) -> List[str]:
        return [self.scheme.level_name(level) for level in self.states]

    @property
    def timed_only(self) -> bool:
        return all(t.timed for t in self.transitions)

    @property
    def shortest_delay(self) -> float:
        """Shortest timed delay — the paper's attack-window bound."""
        delays = [t.delay for t in self.transitions if t.timed]
        return min(delays) if delays else NEVER

    @property
    def total_lifetime(self) -> float:
        """Time from insertion until the final state (infinite if any event)."""
        total = 0.0
        for transition in self.transitions:
            if not transition.timed:
                return NEVER
            total += float(transition.delay)
        return total

    # -- temporal evaluation -------------------------------------------------

    def entry_times(self, events: Optional[Mapping[str, float]] = None) -> List[float]:
        """Absolute offsets (since insertion) at which each state is entered.

        ``events`` maps event names to the offset at which they fired; an event
        transition whose event never fired blocks the rest of the chain.
        """
        times = [0.0]
        current = 0.0
        for transition in self.transitions:
            if transition.timed:
                if current == NEVER:
                    times.append(NEVER)
                    continue
                current += float(transition.delay)
            else:
                fired = None if events is None else events.get(transition.event)
                if fired is None:
                    current = NEVER
                else:
                    current = max(current, float(fired))
            times.append(current)
        return times

    def state_at(self, elapsed: float,
                 events: Optional[Mapping[str, float]] = None) -> int:
        """State index reached ``elapsed`` seconds after insertion."""
        if elapsed < 0:
            raise PolicyError("elapsed time cannot be negative")
        entry = self.entry_times(events)
        state = 0
        for index, when in enumerate(entry):
            if when <= elapsed:
                state = index
        return state

    def level_at(self, elapsed: float,
                 events: Optional[Mapping[str, float]] = None) -> int:
        """Accuracy level reached ``elapsed`` seconds after insertion."""
        return self.states[self.state_at(elapsed, events)]

    def next_transition(self, elapsed: float,
                        events: Optional[Mapping[str, float]] = None
                        ) -> Optional[Tuple[float, int]]:
        """``(offset, next_state_index)`` of the next *timed* transition, or
        ``None`` when the attribute reached its final state (or waits on an
        event)."""
        entry = self.entry_times(events)
        for index, when in enumerate(entry):
            if when > elapsed and when != NEVER:
                return when, index
        return None

    def degrade(self, value: Any, from_state: int, to_state: int) -> Any:
        """Degrade ``value`` from state ``d<from_state>`` to ``d<to_state>``."""
        if to_state < from_state:
            raise PolicyError(
                f"policy {self.name!r}: cannot degrade backwards "
                f"(d{from_state} -> d{to_state})"
            )
        return self.scheme.generalize(
            value, self.state_level(to_state), from_level=self.state_level(from_state)
        )

    def describe(self) -> str:
        parts = []
        for index, level in enumerate(self.states):
            parts.append(f"d{index}={self.scheme.level_name(level)}")
            if index < len(self.transitions):
                parts.append(f"--{self.transitions[index].describe()}-->")
        return f"{self.name}: " + " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<AttributeLCP {self.describe()}>"


#: A tuple state is the vector of per-attribute state indices, keyed by
#: attribute name, frozen into a sorted tuple for hashing.
TupleState = Tuple[Tuple[str, int], ...]


def freeze_state(state: Mapping[str, int]) -> TupleState:
    return tuple(sorted(state.items()))


def thaw_state(state: TupleState) -> Dict[str, int]:
    return dict(state)


class TupleLCP:
    """Product automaton of the attribute LCPs of a table (Fig. 3).

    The tuple state at time ``t`` is the vector of the states of each
    degradable attribute.  Because transitions are deterministic offsets, the
    states actually *visited* form a chain ordered by time; the full reachable
    lattice (any interleaving of attribute transitions) is also exposed for
    analysis, matching Fig. 3's combinational view.
    """

    def __init__(self, attribute_lcps: Mapping[str, AttributeLCP]) -> None:
        if not attribute_lcps:
            raise PolicyError("a tuple LCP needs at least one degradable attribute")
        self.attributes: Dict[str, AttributeLCP] = dict(attribute_lcps)

    # -- states --------------------------------------------------------------

    @property
    def initial_state(self) -> TupleState:
        return freeze_state({name: 0 for name in self.attributes})

    @property
    def final_state(self) -> TupleState:
        return freeze_state({
            name: lcp.num_states - 1 for name, lcp in self.attributes.items()
        })

    def is_final(self, state: Mapping[str, int]) -> bool:
        return freeze_state(state) == self.final_state

    def state_at(self, elapsed: float,
                 events: Optional[Mapping[str, float]] = None) -> Dict[str, int]:
        """Per-attribute state indices reached ``elapsed`` seconds after insert."""
        return {
            name: lcp.state_at(elapsed, events) for name, lcp in self.attributes.items()
        }

    def levels_at(self, elapsed: float,
                  events: Optional[Mapping[str, float]] = None) -> Dict[str, int]:
        """Per-attribute accuracy levels reached after ``elapsed`` seconds."""
        return {
            name: lcp.level_at(elapsed, events) for name, lcp in self.attributes.items()
        }

    # -- the visited chain ----------------------------------------------------

    def transition_schedule(self, events: Optional[Mapping[str, float]] = None
                            ) -> List[Tuple[float, TupleState]]:
        """Chronological list of ``(offset, tuple_state_entered)``.

        The first entry is ``(0.0, initial_state)``; later entries are produced
        every time some attribute transitions (the paper: "at each independent
        attribute transition, the tuple as a whole reaches a new tuple state").
        Simultaneous attribute transitions collapse into a single tuple state.
        """
        moments = {0.0}
        for lcp in self.attributes.values():
            for when in lcp.entry_times(events):
                if when != NEVER:
                    moments.add(when)
        schedule = []
        for when in sorted(moments):
            schedule.append((when, freeze_state(self.state_at(when, events))))
        # Collapse duplicates that can appear when a state is entered at 0.
        deduplicated: List[Tuple[float, TupleState]] = []
        for when, state in schedule:
            if deduplicated and deduplicated[-1][1] == state:
                continue
            deduplicated.append((when, state))
        return deduplicated

    def visited_states(self, events: Optional[Mapping[str, float]] = None) -> List[TupleState]:
        """Tuple states actually traversed, in order (the ``t_k`` of the paper)."""
        return [state for _when, state in self.transition_schedule(events)]

    def num_visited_states(self, events: Optional[Mapping[str, float]] = None) -> int:
        return len(self.visited_states(events))

    @property
    def total_lifetime(self) -> float:
        """Offset at which the tuple reaches its final state (max over attributes)."""
        lifetimes = [lcp.total_lifetime for lcp in self.attributes.values()]
        return max(lifetimes)

    @property
    def shortest_delay(self) -> float:
        """Shortest degradation step across all attributes (attack window bound)."""
        return min(lcp.shortest_delay for lcp in self.attributes.values())

    # -- the full lattice ------------------------------------------------------

    def reachable_states(self) -> List[TupleState]:
        """Every combination of per-attribute states (Fig. 3's lattice).

        This is the cross product of the attribute state sets; the visited
        chain is a path through this lattice.
        """
        names = list(self.attributes)
        ranges = [range(self.attributes[name].num_states) for name in names]
        states = []
        for combo in itertools.product(*ranges):
            states.append(freeze_state(dict(zip(names, combo))))
        return states

    def successors(self, state: Mapping[str, int]) -> List[TupleState]:
        """Lattice successors of ``state`` (one attribute advanced by one step)."""
        current = dict(state)
        result = []
        for name, lcp in self.attributes.items():
            if current[name] + 1 < lcp.num_states:
                advanced = dict(current)
                advanced[name] += 1
                result.append(freeze_state(advanced))
        return result

    def describe(self) -> str:
        lines = [f"tuple LCP over {len(self.attributes)} degradable attribute(s):"]
        for name, lcp in self.attributes.items():
            lines.append(f"  {name}: {lcp.describe()}")
        lines.append(
            f"  visited tuple states: {self.num_visited_states()}"
            f" / reachable lattice: {len(self.reachable_states())}"
        )
        return "\n".join(lines)


__all__ = ["Transition", "AttributeLCP", "TupleLCP", "TupleState",
           "freeze_state", "thaw_state", "NEVER"]
