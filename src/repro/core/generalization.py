"""Generalization trees and degradation functions (paper §II, Fig. 1).

A *generalization tree* (GT) gives, for one attribute domain, the values an
attribute can take at every accuracy level of its lifetime.  Level ``0`` is the
most accurate (the GT leaves, the value at collection time); higher levels walk
towards the root; the last level is the fully suppressed root (the paper's
``d4`` in Fig. 2 corresponds to removal, which the engine handles at the tuple
level).

The degradation function ``f_k`` of the paper maps any value whose accuracy is
at least ``k`` (i.e. stored at a level ``j <= k``) to its ancestor at level
``k``.  Three concrete schemes are provided:

* :class:`GeneralizationTree` — an explicit tree given by leaf-to-root paths
  (the location domain of Fig. 1 is the canonical example).
* :class:`NumericRangeGeneralization` — numbers degraded into progressively
  wider ranges (the paper's ``RANGE1000 FOR P.SALARY``).
* :class:`TimestampGeneralization` — timestamps degraded into coarser buckets
  (minute → hour → day → month).

All schemes share the :class:`GeneralizationScheme` interface so life cycle
policies, storage and the query processor never care which kind they handle.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .clock import DAY, HOUR, MINUTE, MONTH, YEAR
from .errors import GeneralizationError, UnknownValueError
from .values import SUPPRESSED


class GeneralizationScheme:
    """Interface of every generalization scheme (one per attribute domain)."""

    #: Human readable name of the domain ("location", "salary"...).
    name: str = "domain"

    @property
    def num_levels(self) -> int:
        """Total number of accuracy levels, including level 0 and the root."""
        raise NotImplementedError

    @property
    def max_level(self) -> int:
        """The level of the fully suppressed root."""
        return self.num_levels - 1

    def level_name(self, level: int) -> str:
        """Human readable name of ``level`` ("city", "country"...)."""
        self._check_level(level)
        return f"level{level}"

    def level_of_name(self, name: str) -> int:
        """Inverse of :meth:`level_name` (case insensitive)."""
        wanted = name.strip().lower()
        for level in range(self.num_levels):
            if self.level_name(level).lower() == wanted:
                return level
        raise GeneralizationError(
            f"domain {self.name!r} has no accuracy level named {name!r}"
        )

    def generalize(self, value: Any, to_level: int, from_level: int = 0) -> Any:
        """Apply the degradation function ``f_{to_level}``.

        ``value`` must be expressed at ``from_level``; the result is the value
        generalized to ``to_level``.  Degradation is monotonic: ``to_level``
        must be greater than or equal to ``from_level``.
        """
        raise NotImplementedError

    def values_at_level(self, level: int) -> Optional[List[Any]]:
        """Enumerate the possible values at ``level`` when the domain is finite,
        ``None`` otherwise."""
        self._check_level(level)
        return None

    def contains(self, value: Any, level: int = 0) -> bool:
        """True when ``value`` is a legal value at ``level``."""
        try:
            self.generalize(value, level, from_level=level)
        except GeneralizationError:
            return False
        return True

    # -- helpers -----------------------------------------------------------

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.num_levels:
            raise GeneralizationError(
                f"domain {self.name!r} has levels 0..{self.max_level}, got {level}"
            )

    def _check_transition(self, from_level: int, to_level: int) -> None:
        self._check_level(from_level)
        self._check_level(to_level)
        if to_level < from_level:
            raise GeneralizationError(
                f"degradation is irreversible: cannot go from level {from_level} "
                f"back to level {to_level} in domain {self.name!r}"
            )

    def describe(self) -> str:
        """One line summary used by ``EXPLAIN`` style output."""
        names = ", ".join(self.level_name(i) for i in range(self.num_levels))
        return f"{self.name}: {names}"


@dataclass
class _Node:
    """Internal node of an explicit generalization tree."""

    value: Any
    level: int
    parent: Optional["_Node"] = None
    children: List["_Node"] = field(default_factory=list)

    def ancestor_at(self, level: int) -> "_Node":
        node = self
        while node.level < level:
            if node.parent is None:
                raise GeneralizationError(
                    f"value {self.value!r} has no ancestor at level {level}"
                )
            node = node.parent
        if node.level != level:
            raise GeneralizationError(
                f"value {self.value!r} cannot be expressed at level {level}"
            )
        return node


class GeneralizationTree(GeneralizationScheme):
    """Explicit generalization tree built from leaf-to-root paths.

    The tree is *uniform*: every leaf sits at the same depth, which is what
    makes the paper's accuracy levels well defined.  The root is always the
    :data:`~repro.core.values.SUPPRESSED` sentinel, added implicitly if the
    provided paths do not end with it.

    >>> gt = GeneralizationTree.from_paths(
    ...     "location",
    ...     [("21 rue X, Paris", "Paris", "Ile-de-France", "France"),
    ...      ("5 av Y, Lyon", "Lyon", "Rhone-Alpes", "France")],
    ...     level_names=["address", "city", "region", "country"])
    >>> gt.generalize("21 rue X, Paris", 1)
    'Paris'
    >>> gt.generalize("5 av Y, Lyon", 3)
    'France'
    >>> gt.generalize("Paris", 2, from_level=1)
    'Ile-de-France'
    """

    def __init__(self, name: str, level_names: Sequence[str], root: _Node,
                 nodes_by_level: Dict[int, Dict[Any, _Node]]) -> None:
        self.name = name
        self._level_names = list(level_names)
        self._root = root
        self._nodes_by_level = nodes_by_level

    # -- construction ------------------------------------------------------

    @classmethod
    def from_paths(cls, name: str, paths: Iterable[Sequence[Any]],
                   level_names: Optional[Sequence[str]] = None) -> "GeneralizationTree":
        """Build a tree from ``paths`` going leaf → root (root excluded).

        Every path must have the same length.  The suppressed root is appended
        automatically, so a 4 element path produces a 5 level domain.
        """
        paths = [tuple(path) for path in paths]
        if not paths:
            raise GeneralizationError(f"domain {name!r}: no generalization paths given")
        depth = len(paths[0])
        if depth < 1:
            raise GeneralizationError(f"domain {name!r}: empty generalization path")
        for path in paths:
            if len(path) != depth:
                raise GeneralizationError(
                    f"domain {name!r}: all generalization paths must have the same "
                    f"length (expected {depth}, got {len(path)} for {path!r})"
                )

        if level_names is None:
            level_names = [f"level{i}" for i in range(depth)] + ["suppressed"]
        else:
            level_names = list(level_names)
            if len(level_names) == depth:
                level_names.append("suppressed")
            elif len(level_names) != depth + 1:
                raise GeneralizationError(
                    f"domain {name!r}: expected {depth} or {depth + 1} level names, "
                    f"got {len(level_names)}"
                )

        root = _Node(value=SUPPRESSED, level=depth)
        nodes_by_level: Dict[int, Dict[Any, _Node]] = {depth: {SUPPRESSED: root}}
        for level in range(depth):
            nodes_by_level[level] = {}

        for path in paths:
            parent = root
            # Walk the path from the root side (last element) down to the leaf.
            for level in range(depth - 1, -1, -1):
                value = path[level]
                existing = nodes_by_level[level].get(value)
                if existing is None:
                    node = _Node(value=value, level=level, parent=parent)
                    parent.children.append(node)
                    nodes_by_level[level][value] = node
                else:
                    if existing.parent is not parent:
                        raise GeneralizationError(
                            f"domain {name!r}: value {value!r} at level {level} has two "
                            f"different parents ({existing.parent.value!r} and "
                            f"{parent.value!r}); a generalization tree must be a tree"
                        )
                    node = existing
                parent = node
        return cls(name, level_names, root, nodes_by_level)

    @classmethod
    def from_nested(cls, name: str, nested: Mapping[Any, Any],
                    level_names: Optional[Sequence[str]] = None) -> "GeneralizationTree":
        """Build a tree from a nested mapping ``{coarse: {finer: {...}}}``.

        Leaves are the keys whose value is an empty mapping, a list of leaf
        values, or ``None``.
        """
        paths: List[Tuple[Any, ...]] = []

        def walk(node: Any, trail: Tuple[Any, ...]) -> None:
            if isinstance(node, Mapping):
                if not node:
                    paths.append(trail)
                    return
                for key, child in node.items():
                    walk(child, (key,) + trail)
            elif isinstance(node, (list, tuple, set)):
                for leaf in node:
                    paths.append((leaf,) + trail)
            elif node is None:
                paths.append(trail)
            else:
                paths.append((node,) + trail)

        for key, child in nested.items():
            walk(child, (key,))
        # ``walk`` produced paths leaf→root already because we prepend.
        return cls.from_paths(name, paths, level_names=level_names)

    # -- GeneralizationScheme ------------------------------------------------

    @property
    def num_levels(self) -> int:
        return len(self._level_names)

    def level_name(self, level: int) -> str:
        self._check_level(level)
        return self._level_names[level]

    def generalize(self, value: Any, to_level: int, from_level: int = 0) -> Any:
        self._check_transition(from_level, to_level)
        if value is SUPPRESSED:
            if from_level != self.max_level:
                raise UnknownValueError(
                    f"domain {self.name!r}: SUPPRESSED is only valid at the root level"
                )
            return SUPPRESSED
        if to_level == self.max_level:
            return SUPPRESSED
        node = self._nodes_by_level.get(from_level, {}).get(value)
        if node is None:
            raise UnknownValueError(
                f"domain {self.name!r}: unknown value {value!r} at level {from_level}"
            )
        return node.ancestor_at(to_level).value

    def values_at_level(self, level: int) -> List[Any]:
        self._check_level(level)
        return list(self._nodes_by_level[level].keys())

    def leaves(self) -> List[Any]:
        """All level-0 values (useful to workload generators)."""
        return self.values_at_level(0)

    def children_of(self, value: Any, level: int) -> List[Any]:
        """Values at ``level - 1`` that generalize to ``value``."""
        self._check_level(level)
        node = self._nodes_by_level.get(level, {}).get(value)
        if node is None:
            raise UnknownValueError(
                f"domain {self.name!r}: unknown value {value!r} at level {level}"
            )
        return [child.value for child in node.children]

    def level_of(self, value: Any) -> int:
        """Infer the level of ``value`` (requires globally unique node values)."""
        matches = [level for level, nodes in self._nodes_by_level.items() if value in nodes]
        if not matches:
            raise UnknownValueError(f"domain {self.name!r}: unknown value {value!r}")
        if len(matches) > 1:
            raise GeneralizationError(
                f"domain {self.name!r}: value {value!r} is ambiguous across levels {matches}"
            )
        return matches[0]


class NumericRangeGeneralization(GeneralizationScheme):
    """Numbers degraded into progressively wider half-open ranges.

    ``widths`` gives the bucket width of each level above level 0; the final
    level is always full suppression.  The paper's ``RANGE1000 FOR P.SALARY``
    corresponds to the level whose width is 1000.

    Degraded values are rendered as ``"lo-hi"`` strings (matching the query
    example ``SALARY = '2000-3000'`` of the paper) but carry their numeric
    bounds for range predicates.
    """

    def __init__(self, name: str, widths: Sequence[float],
                 level_names: Optional[Sequence[str]] = None,
                 origin: float = 0.0, integral: bool = True) -> None:
        if not widths:
            raise GeneralizationError(f"domain {name!r}: at least one range width required")
        previous = 0.0
        for width in widths:
            if width <= 0:
                raise GeneralizationError(f"domain {name!r}: widths must be positive")
            if width < previous:
                raise GeneralizationError(
                    f"domain {name!r}: widths must be non-decreasing to keep degradation "
                    f"monotonic (got {list(widths)!r})"
                )
            previous = width
        self.name = name
        self.widths = [float(w) for w in widths]
        self.origin = float(origin)
        self.integral = integral
        if level_names is None:
            level_names = ["exact"] + [f"range{int(w) if w == int(w) else w}" for w in widths]
            level_names.append("suppressed")
        else:
            level_names = list(level_names)
            expected = len(widths) + 2
            if len(level_names) == expected - 1:
                level_names.append("suppressed")
            elif len(level_names) != expected:
                raise GeneralizationError(
                    f"domain {name!r}: expected {expected - 1} or {expected} level names"
                )
        self._level_names = level_names

    @property
    def num_levels(self) -> int:
        return len(self.widths) + 2

    def level_name(self, level: int) -> str:
        self._check_level(level)
        return self._level_names[level]

    def bucket(self, value: float, level: int) -> Tuple[float, float]:
        """Return the ``[lo, hi)`` bounds of ``value`` at ``level`` (1-based ranges)."""
        self._check_level(level)
        if level == 0 or level == self.max_level:
            raise GeneralizationError("bucket() is only defined for range levels")
        width = self.widths[level - 1]
        lo = self.origin + ((float(value) - self.origin) // width) * width
        return lo, lo + width

    def format_range(self, lo: float, hi: float) -> str:
        if self.integral:
            return f"{int(lo)}-{int(hi)}"
        return f"{lo}-{hi}"

    _RANGE_PATTERN = re.compile(r"^\s*(-?\d+(?:\.\d+)?)-(-?\d+(?:\.\d+)?)\s*$")

    def parse_range(self, text: str) -> Tuple[float, float]:
        """Parse a ``"lo-hi"`` literal back to numeric bounds (negatives allowed)."""
        match = self._RANGE_PATTERN.match(text)
        if match is None:
            raise GeneralizationError(f"not a range literal: {text!r}")
        return float(match.group(1)), float(match.group(2))

    def generalize(self, value: Any, to_level: int, from_level: int = 0) -> Any:
        self._check_transition(from_level, to_level)
        if to_level == self.max_level:
            return SUPPRESSED
        if value is SUPPRESSED:
            if from_level != self.max_level:
                raise UnknownValueError(
                    f"domain {self.name!r}: SUPPRESSED is only valid at the root level"
                )
            return SUPPRESSED
        if from_level == 0:
            numeric = float(value)
        else:
            # A range literal: re-anchor on its lower bound, which is enough
            # because widths are non-decreasing multiples in practice.
            lo, _hi = self.parse_range(value) if isinstance(value, str) else value
            numeric = float(lo)
        if to_level == from_level:
            return value
        if to_level == 0:
            return value
        lo, hi = self.bucket(numeric, to_level)
        return self.format_range(lo, hi)

    def values_at_level(self, level: int) -> Optional[List[Any]]:
        self._check_level(level)
        if level == self.max_level:
            return [SUPPRESSED]
        return None


class TimestampGeneralization(GeneralizationScheme):
    """Timestamps (seconds) degraded into coarser and coarser buckets.

    Default levels follow the paper's LCP example granularity: exact → minute
    → hour → day → month → suppressed.
    """

    DEFAULT_BUCKETS: Tuple[Tuple[str, float], ...] = (
        ("minute", MINUTE),
        ("hour", HOUR),
        ("day", DAY),
        ("month", MONTH),
    )

    def __init__(self, name: str = "timestamp",
                 buckets: Optional[Sequence[Tuple[str, float]]] = None) -> None:
        self.name = name
        self.buckets = list(buckets) if buckets is not None else list(self.DEFAULT_BUCKETS)
        previous = 0.0
        for label, width in self.buckets:
            if width <= previous:
                raise GeneralizationError(
                    f"domain {name!r}: bucket widths must be increasing"
                )
            previous = width
        self._level_names = ["exact"] + [label for label, _ in self.buckets] + ["suppressed"]

    @property
    def num_levels(self) -> int:
        return len(self.buckets) + 2

    def level_name(self, level: int) -> str:
        self._check_level(level)
        return self._level_names[level]

    def generalize(self, value: Any, to_level: int, from_level: int = 0) -> Any:
        self._check_transition(from_level, to_level)
        if to_level == self.max_level:
            return SUPPRESSED
        if value is SUPPRESSED:
            if from_level != self.max_level:
                raise UnknownValueError(
                    f"domain {self.name!r}: SUPPRESSED is only valid at the root level"
                )
            return SUPPRESSED
        if to_level == from_level:
            return value
        numeric = float(value)
        width = self.buckets[to_level - 1][1]
        return (numeric // width) * width

    def values_at_level(self, level: int) -> Optional[List[Any]]:
        self._check_level(level)
        if level == self.max_level:
            return [SUPPRESSED]
        return None


__all__ = [
    "GeneralizationScheme",
    "GeneralizationTree",
    "NumericRangeGeneralization",
    "TimestampGeneralization",
]
