"""Clocks driving timely degradation.

The paper's central promise is that degradation happens *on time*.  To make
that testable and benchmarkable on a laptop, the whole engine reads time from a
:class:`Clock` abstraction.  Two implementations are provided:

* :class:`SimulatedClock` — a deterministic, manually advanced clock.  All
  tests, examples and benchmarks use it so that "one month" of degradation
  runs in microseconds.
* :class:`WallClock` — thin wrapper around :func:`time.monotonic` for callers
  who want real-time degradation daemons.

Durations are plain ``float`` seconds throughout the library; helpers convert
human friendly units (the paper's LCP delays are expressed in minutes, hours,
days and months).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..faults import FaultPlan
from .errors import ConfigurationError

#: Number of seconds in the units used by the paper's example policies.
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY
#: The paper speaks of "1 month" delays; we use the civil average of 30 days.
MONTH = 30 * DAY
YEAR = 365 * DAY

_UNIT_SECONDS = {
    "s": SECOND,
    "sec": SECOND,
    "second": SECOND,
    "seconds": SECOND,
    "min": MINUTE,
    "minute": MINUTE,
    "minutes": MINUTE,
    "h": HOUR,
    "hour": HOUR,
    "hours": HOUR,
    "d": DAY,
    "day": DAY,
    "days": DAY,
    "w": WEEK,
    "week": WEEK,
    "weeks": WEEK,
    "month": MONTH,
    "months": MONTH,
    "y": YEAR,
    "year": YEAR,
    "years": YEAR,
}


def duration(value: float, unit: str = "s") -> float:
    """Convert ``value`` expressed in ``unit`` to seconds.

    >>> duration(1, "hour")
    3600.0
    >>> duration(2, "days")
    172800.0
    """
    try:
        factor = _UNIT_SECONDS[unit.lower()]
    except KeyError:
        raise ConfigurationError(f"unknown time unit: {unit!r}") from None
    return float(value) * factor


def parse_duration(text: str) -> float:
    """Parse a duration such as ``"1 h"``, ``"30 min"`` or ``"2 days"``.

    A bare number is interpreted as seconds.
    """
    text = text.strip()
    if not text:
        raise ConfigurationError("empty duration")
    parts = text.split()
    if len(parts) == 1:
        # Either "30" or "30min".
        token = parts[0]
        number = ""
        for ch in token:
            if ch.isdigit() or ch in ".+-":
                number += ch
            else:
                break
        unit = token[len(number):] or "s"
        if not number:
            raise ConfigurationError(f"cannot parse duration: {text!r}")
        return duration(float(number), unit)
    if len(parts) == 2:
        return duration(float(parts[0]), parts[1])
    raise ConfigurationError(f"cannot parse duration: {text!r}")


def format_duration(seconds: float) -> str:
    """Render ``seconds`` using the largest unit that divides it nicely."""
    for name, factor in (("month", MONTH), ("week", WEEK), ("day", DAY),
                         ("hour", HOUR), ("min", MINUTE)):
        if seconds >= factor:
            value = seconds / factor
            if value == int(value):
                value = int(value)
            else:
                value = round(value, 2)
            return f"{value} {name}"
    if seconds == int(seconds):
        return f"{int(seconds)} s"
    return f"{seconds:.3f} s"


class Clock:
    """Abstract clock interface used by the engine."""

    def now(self) -> float:
        """Return the current time in seconds."""
        raise NotImplementedError

    def sleep_until(self, when: float) -> None:
        """Block (or advance) until ``when``."""
        raise NotImplementedError


@dataclass
class SimulatedClock(Clock):
    """Deterministic clock advanced explicitly by the caller.

    Observers registered with :meth:`on_advance` are notified after every
    advancement; the degradation daemon uses this to fire due steps without
    any background thread.
    """

    start: float = 0.0
    #: Optional fault plan: a ``clock.advance`` rule of kind ``"skip"`` makes
    #: this advancement jump *further* than asked (``seconds`` param, default
    #: six hours) — time leaps straight past wave deadlines, exactly the skew
    #: a suspended VM or an NTP step inflicts on a wall-clock daemon.
    faults: Optional[FaultPlan] = None
    _now: float = field(init=False)
    _observers: List[Callable[[float], None]] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self._now = float(self.start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float = 0.0, **units: float) -> float:
        """Advance the clock by ``seconds`` plus any keyword units.

        >>> clock = SimulatedClock()
        >>> clock.advance(hours=1, minutes=30)
        5400.0
        """
        delta = float(seconds)
        for unit, value in units.items():
            delta += duration(value, unit.rstrip("s") if unit not in _UNIT_SECONDS else unit)
        if delta < 0:
            raise ConfigurationError("cannot move a clock backwards")
        if self.faults is not None:
            event = self.faults.fire("clock.advance")
            if event is not None and event.kind == "skip":
                delta += float(event.param("seconds", 6 * HOUR))
        self._now += delta
        for observer in list(self._observers):
            observer(self._now)
        return self._now

    def advance_to(self, when: float) -> float:
        """Advance the clock to the absolute time ``when``."""
        if when < self._now:
            raise ConfigurationError("cannot move a clock backwards")
        return self.advance(when - self._now)

    def sleep_until(self, when: float) -> None:
        if when > self._now:
            self.advance_to(when)

    def on_advance(self, callback: Callable[[float], None]) -> None:
        """Register ``callback(now)`` to run after every advancement."""
        self._observers.append(callback)

    def remove_observer(self, callback: Callable[[float], None]) -> None:
        if callback in self._observers:
            self._observers.remove(callback)


class WallClock(Clock):
    """Real time clock based on :func:`time.monotonic`."""

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin

    def sleep_until(self, when: float) -> None:
        remaining = when - self.now()
        if remaining > 0:
            time.sleep(remaining)


def make_clock(kind: str = "simulated", start: float = 0.0) -> Clock:
    """Factory used by :class:`repro.engine.database.InstantDB`."""
    kind = kind.lower()
    if kind in ("simulated", "sim", "virtual"):
        return SimulatedClock(start=start)
    if kind in ("wall", "real", "monotonic"):
        return WallClock()
    raise ConfigurationError(f"unknown clock kind: {kind!r}")
