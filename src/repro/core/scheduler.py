"""Degradation scheduler: the machinery that makes degradation *timely*.

The scheduler tracks, for every live record, the next due degradation step of
each of its degradable attributes.  Steps are kept in a priority queue ordered
by due time and can be drained in two ways:

* step-at-a-time — :meth:`DegradationScheduler.run_due` pops every step whose
  due time has passed and hands it to an *applier* callback (provided by the
  engine) which performs the physical degradation in the store, the indexes
  and the log;
* batched — :meth:`DegradationScheduler.due_batches` pops due steps grouped
  by a key (the table name for engine record ids) and
  :meth:`DegradationScheduler.run_due_batched` hands each group to a *batch
  applier* so the engine can amortize one system transaction, one exclusive
  lock and one durable WAL flush over the whole group.  ``max_batch`` bounds
  how many steps are popped per round so a huge backlog (a day's worth of
  inserts expiring in one wave) drains incrementally instead of holding one
  giant lock.

The scheduler also supports the paper's future-work extensions:

* event-triggered transitions — :meth:`fire_event` releases steps waiting on a
  named event; timed steps that follow an event transition are scheduled
  relative to the moment the event fired;
* per-tuple policies — each record is registered with its own
  :class:`~repro.core.lcp.TupleLCP`, so different tuples may follow different
  automata.

Timeliness statistics (lag between the scheduled due time and the time the
step is actually applied) are collected for the C2 benchmark.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import DegradationError
from .lcp import NEVER, TupleLCP


@dataclass(frozen=True)
class DegradationStep:
    """One scheduled attribute transition of one record."""

    record_id: Any
    attribute: str
    from_state: int
    to_state: int
    due: float
    #: Name of the event that releases the step, or ``None`` for timed steps.
    event: Optional[str] = None

    def describe(self) -> str:
        trigger = f"at t={self.due}" if self.event is None else f"on event {self.event!r}"
        return (f"record {self.record_id}: {self.attribute} "
                f"d{self.from_state}->d{self.to_state} {trigger}")


@dataclass
class SchedulerStats:
    """Aggregate timeliness statistics exposed to benchmarks and tests."""

    steps_applied: int = 0
    steps_cancelled: int = 0
    records_completed: int = 0
    total_lag: float = 0.0
    max_lag: float = 0.0
    lags: List[float] = field(default_factory=list)

    def record_lag(self, lag: float) -> None:
        self.steps_applied += 1
        self.total_lag += lag
        self.max_lag = max(self.max_lag, lag)
        self.lags.append(lag)

    @property
    def mean_lag(self) -> float:
        return self.total_lag / self.steps_applied if self.steps_applied else 0.0

    def percentile_lag(self, q: float) -> float:
        """Lag percentile (``q`` in [0, 1])."""
        if not self.lags:
            return 0.0
        ordered = sorted(self.lags)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


@dataclass
class _Registration:
    """Book-keeping for one live record."""

    record_id: Any
    tuple_lcp: TupleLCP
    inserted_at: float
    current_states: Dict[str, int]
    #: When each attribute entered its current state (scheduled time, not wall
    #: time, so catch-up after a long pause keeps the original cadence).
    entered_at: Dict[str, float] = field(default_factory=dict)
    #: Attributes currently blocked on a named event.
    waiting_on: Dict[str, str] = field(default_factory=dict)

    def is_final(self) -> bool:
        return all(
            self.current_states[name] == lcp.num_states - 1
            for name, lcp in self.tuple_lcp.attributes.items()
        )

    def pending_step_count(self) -> int:
        """Pending next steps: one per attribute with a scheduled or waiting
        transition (infinite-delay transitions are never scheduled)."""
        count = 0
        for name, lcp in self.tuple_lcp.attributes.items():
            state = self.current_states[name]
            if state + 1 >= lcp.num_states:
                continue
            if name in self.waiting_on:
                count += 1
                continue
            transition = lcp.transitions[state]
            if transition.timed and float(transition.delay) != NEVER:
                count += 1
        return count


#: Applier callback: receives the step and must perform the physical
#: degradation; it returns True on success (False aborts rescheduling).
StepApplier = Callable[[DegradationStep], bool]

#: Batch applier callback: receives a group key (the table name for engine
#: record ids) and that group's due steps; returns the steps that were applied
#: successfully (steps it dropped or deferred are simply not returned).
BatchApplier = Callable[[Any, List[DegradationStep]], List[DegradationStep]]

#: Callback invoked when a record reaches its final tuple state.
CompletionCallback = Callable[[Any], None]

#: Grouping callback mapping a due step to its batch key.
GroupKey = Callable[[DegradationStep], Any]


def _default_group_key(step: DegradationStep) -> Any:
    """Engine record ids are ``(table, row_key)`` tuples: group by table."""
    if isinstance(step.record_id, tuple) and step.record_id:
        return step.record_id[0]
    return None


@dataclass
class DegradationBatch:
    """Due steps sharing one group key, drained together."""

    key: Any
    steps: List[DegradationStep] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)


class DegradationScheduler:
    """Priority-queue scheduler of degradation steps.

    The scheduler is deliberately independent from the storage engine: the
    engine registers records and provides the applier; tests can drive it with
    plain dictionaries.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, DegradationStep]] = []
        self._registrations: Dict[Any, _Registration] = {}
        self._event_waiters: Dict[str, List[Tuple[Any, str]]] = {}
        self._counter = itertools.count()
        self.stats = SchedulerStats()

    # -- registration ---------------------------------------------------------

    def register(self, record_id: Any, tuple_lcp: TupleLCP, inserted_at: float) -> None:
        """Start tracking ``record_id`` inserted at ``inserted_at`` (most accurate state)."""
        if record_id in self._registrations:
            raise DegradationError(f"record {record_id!r} is already registered")
        registration = _Registration(
            record_id=record_id,
            tuple_lcp=tuple_lcp,
            inserted_at=inserted_at,
            current_states={name: 0 for name in tuple_lcp.attributes},
            entered_at={name: inserted_at for name in tuple_lcp.attributes},
        )
        self._registrations[record_id] = registration
        for attribute in tuple_lcp.attributes:
            self._schedule_next(registration, attribute)

    def cancel(self, record_id: Any) -> int:
        """Stop tracking ``record_id`` (explicit delete).

        Returns the number of pending steps cancelled (one per attribute that
        had not reached its final state).  Pending heap entries become stale
        and are skipped lazily when popped; event-waiter entries are purged
        eagerly so cancelled records do not leak in ``_event_waiters``.
        """
        registration = self._registrations.pop(record_id, None)
        if registration is None:
            return 0
        cancelled = registration.pending_step_count()
        for attribute, event in registration.waiting_on.items():
            waiters = self._event_waiters.get(event)
            if not waiters:
                continue
            remaining = [entry for entry in waiters if entry != (record_id, attribute)]
            if remaining:
                self._event_waiters[event] = remaining
            else:
                del self._event_waiters[event]
        self.stats.steps_cancelled += cancelled
        return cancelled

    def is_registered(self, record_id: Any) -> bool:
        return record_id in self._registrations

    def registered_count(self) -> int:
        return len(self._registrations)

    def current_state(self, record_id: Any) -> Dict[str, int]:
        registration = self._registration(record_id)
        return dict(registration.current_states)

    def _registration(self, record_id: Any) -> _Registration:
        try:
            return self._registrations[record_id]
        except KeyError:
            raise DegradationError(f"record {record_id!r} is not registered") from None

    # -- scheduling internals -------------------------------------------------

    def _schedule_next(self, registration: _Registration, attribute: str) -> None:
        lcp = registration.tuple_lcp.attributes[attribute]
        state = registration.current_states[attribute]
        if state + 1 >= lcp.num_states:
            return
        transition = lcp.transitions[state]
        if transition.timed:
            # Relative to when the current state was entered, so timed steps
            # that follow an event transition fire `delay` after the event.
            due = registration.entered_at.get(attribute, registration.inserted_at) \
                + float(transition.delay)
            if due == NEVER:
                return
            step = DegradationStep(
                record_id=registration.record_id,
                attribute=attribute,
                from_state=state,
                to_state=state + 1,
                due=due,
            )
            heapq.heappush(self._heap, (due, next(self._counter), step))
        else:
            registration.waiting_on[attribute] = transition.event
            self._event_waiters.setdefault(transition.event, []).append(
                (registration.record_id, attribute)
            )

    def defer(self, step: DegradationStep, until: float) -> None:
        """Re-queue a step that could not be applied yet (e.g. lock conflict).

        The step keeps its original transition but becomes due at ``until``.
        """
        registration = self._registrations.get(step.record_id)
        if registration is None:
            return
        if registration.current_states.get(step.attribute) != step.from_state:
            return
        deferred = DegradationStep(
            record_id=step.record_id,
            attribute=step.attribute,
            from_state=step.from_state,
            to_state=step.to_state,
            due=step.due,
            event=step.event,
        )
        heapq.heappush(self._heap, (until, next(self._counter), deferred))

    # -- events ----------------------------------------------------------------

    def fire_event(self, event: str, now: float) -> List[DegradationStep]:
        """Release every step waiting on ``event``; due time is ``now``."""
        released: List[DegradationStep] = []
        for record_id, attribute in self._event_waiters.pop(event, []):
            registration = self._registrations.get(record_id)
            if registration is None:
                continue
            if registration.waiting_on.get(attribute) != event:
                continue
            del registration.waiting_on[attribute]
            state = registration.current_states[attribute]
            step = DegradationStep(
                record_id=record_id,
                attribute=attribute,
                from_state=state,
                to_state=state + 1,
                due=now,
                event=event,
            )
            heapq.heappush(self._heap, (now, next(self._counter), step))
            released.append(step)
        return released

    # -- running ----------------------------------------------------------------

    def peek_next_due(self) -> Optional[float]:
        """Due time of the earliest pending step (stale entries skipped)."""
        while self._heap:
            due, _seq, step = self._heap[0]
            registration = self._registrations.get(step.record_id)
            if registration is None or registration.current_states.get(step.attribute) != step.from_state:
                heapq.heappop(self._heap)
                continue
            return due
        return None

    def due_steps(self, now: float) -> List[DegradationStep]:
        """Pop every step due at or before ``now`` without applying it."""
        steps: List[DegradationStep] = []
        while self._heap and self._heap[0][0] <= now:
            _due, _seq, step = heapq.heappop(self._heap)
            registration = self._registrations.get(step.record_id)
            if registration is None:
                continue
            if registration.current_states.get(step.attribute) != step.from_state:
                continue
            steps.append(step)
        return steps

    def due_batches(self, now: float, max_batch: Optional[int] = None,
                    group_key: Optional[GroupKey] = None) -> List[DegradationBatch]:
        """Pop due steps grouped by key (table name for engine record ids).

        At most ``max_batch`` steps are popped per call (``None`` = no bound);
        the remainder stays queued so callers drain huge backlogs in bounded
        chunks.  Batches preserve first-seen key order and, within a batch,
        due order.
        """
        if group_key is None:
            group_key = _default_group_key
        grouped: Dict[Any, DegradationBatch] = {}
        batches: List[DegradationBatch] = []
        popped = 0
        while self._heap and self._heap[0][0] <= now:
            if max_batch is not None and popped >= max_batch:
                break
            _due, _seq, step = heapq.heappop(self._heap)
            registration = self._registrations.get(step.record_id)
            if registration is None:
                continue
            if registration.current_states.get(step.attribute) != step.from_state:
                continue
            key = group_key(step)
            batch = grouped.get(key)
            if batch is None:
                batch = DegradationBatch(key=key)
                grouped[key] = batch
                batches.append(batch)
            batch.steps.append(step)
            popped += 1
        return batches

    def _mark_applied(self, step: DegradationStep, now: float,
                      applied: List[DegradationStep],
                      on_complete: Optional[CompletionCallback]) -> None:
        """Book-keeping after an applier reported ``step`` as done."""
        registration = self._registrations.get(step.record_id)
        if registration is None:
            return
        registration.current_states[step.attribute] = step.to_state
        registration.entered_at[step.attribute] = step.due
        self.stats.record_lag(max(0.0, now - step.due))
        applied.append(step)
        self._schedule_next(registration, step.attribute)
        if registration.is_final():
            self.stats.records_completed += 1
            del self._registrations[step.record_id]
            if on_complete is not None:
                on_complete(step.record_id)

    def run_due(self, now: float, applier: StepApplier,
                on_complete: Optional[CompletionCallback] = None) -> List[DegradationStep]:
        """Apply every due step through ``applier`` and schedule follow-ups.

        Returns the steps that were applied successfully.  Steps whose applier
        returns ``False`` are dropped (the record keeps its previous state);
        the engine is expected to raise instead for unexpected failures.
        """
        applied: List[DegradationStep] = []
        # Steps released by an applied step (none today, but event cascades may
        # add due steps), so loop until the queue has nothing due.
        while True:
            batch = self.due_steps(now)
            if not batch:
                break
            for step in batch:
                registration = self._registrations.get(step.record_id)
                if registration is None:
                    continue
                if not applier(step):
                    continue
                self._mark_applied(step, now, applied, on_complete)
        return applied

    def run_due_batched(self, now: float, applier: BatchApplier,
                        on_complete: Optional[CompletionCallback] = None,
                        max_batch: Optional[int] = None,
                        group_key: Optional[GroupKey] = None) -> List[DegradationStep]:
        """Drain due steps through a batch applier, group by group.

        Each :class:`DegradationBatch` is handed to ``applier`` whole; the
        applier returns the steps it actually applied (deferring or dropping
        the rest).  Follow-up steps released by an applied batch (next timed
        transitions already overdue during catch-up) are drained in subsequent
        rounds until nothing is due.
        """
        applied: List[DegradationStep] = []
        while True:
            batches = self.due_batches(now, max_batch=max_batch, group_key=group_key)
            if not batches:
                break
            for batch in batches:
                for step in applier(batch.key, batch.steps):
                    self._mark_applied(step, now, applied, on_complete)
        return applied

    def pending_count(self) -> int:
        """Number of non-stale steps currently queued (O(n) scan, test helper)."""
        count = 0
        for _due, _seq, step in self._heap:
            registration = self._registrations.get(step.record_id)
            if registration is None:
                continue
            if registration.current_states.get(step.attribute) != step.from_state:
                continue
            count += 1
        return count

    def overdue_count(self, now: float) -> int:
        """Number of non-stale steps due at or before ``now`` (O(n) scan).

        This is the public backlog measure the daemon reports; it never pops
        or applies anything.
        """
        count = 0
        for due, _seq, step in self._heap:
            if due > now:
                continue
            registration = self._registrations.get(step.record_id)
            if registration is None:
                continue
            if registration.current_states.get(step.attribute) != step.from_state:
                continue
            count += 1
        return count


__all__ = ["DegradationStep", "DegradationBatch", "DegradationScheduler",
           "SchedulerStats", "StepApplier", "BatchApplier", "CompletionCallback"]
