"""Degradation scheduler: the machinery that makes degradation *timely*.

The scheduler tracks, for every live record, the next due degradation step of
each of its degradable attributes.  Steps are kept in a priority queue ordered
by due time; :meth:`DegradationScheduler.run_due` pops every step whose due
time has passed and hands it to an *applier* callback (provided by the engine)
which performs the physical degradation in the store, the indexes and the log.

The scheduler also supports the paper's future-work extensions:

* event-triggered transitions — :meth:`fire_event` releases steps waiting on a
  named event;
* per-tuple policies — each record is registered with its own
  :class:`~repro.core.lcp.TupleLCP`, so different tuples may follow different
  automata.

Timeliness statistics (lag between the scheduled due time and the time the
step is actually applied) are collected for the C2 benchmark.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import DegradationError
from .lcp import NEVER, AttributeLCP, TupleLCP


@dataclass(frozen=True)
class DegradationStep:
    """One scheduled attribute transition of one record."""

    record_id: Any
    attribute: str
    from_state: int
    to_state: int
    due: float
    #: Name of the event that releases the step, or ``None`` for timed steps.
    event: Optional[str] = None

    def describe(self) -> str:
        trigger = f"at t={self.due}" if self.event is None else f"on event {self.event!r}"
        return (f"record {self.record_id}: {self.attribute} "
                f"d{self.from_state}->d{self.to_state} {trigger}")


@dataclass
class SchedulerStats:
    """Aggregate timeliness statistics exposed to benchmarks and tests."""

    steps_applied: int = 0
    steps_cancelled: int = 0
    records_completed: int = 0
    total_lag: float = 0.0
    max_lag: float = 0.0
    lags: List[float] = field(default_factory=list)

    def record_lag(self, lag: float) -> None:
        self.steps_applied += 1
        self.total_lag += lag
        self.max_lag = max(self.max_lag, lag)
        self.lags.append(lag)

    @property
    def mean_lag(self) -> float:
        return self.total_lag / self.steps_applied if self.steps_applied else 0.0

    def percentile_lag(self, q: float) -> float:
        """Lag percentile (``q`` in [0, 1])."""
        if not self.lags:
            return 0.0
        ordered = sorted(self.lags)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


@dataclass
class _Registration:
    """Book-keeping for one live record."""

    record_id: Any
    tuple_lcp: TupleLCP
    inserted_at: float
    current_states: Dict[str, int]
    #: Attributes currently blocked on a named event.
    waiting_on: Dict[str, str] = field(default_factory=dict)

    def is_final(self) -> bool:
        return all(
            self.current_states[name] == lcp.num_states - 1
            for name, lcp in self.tuple_lcp.attributes.items()
        )


#: Applier callback: receives the step and must perform the physical
#: degradation; it returns True on success (False aborts rescheduling).
StepApplier = Callable[[DegradationStep], bool]

#: Callback invoked when a record reaches its final tuple state.
CompletionCallback = Callable[[Any], None]


class DegradationScheduler:
    """Priority-queue scheduler of degradation steps.

    The scheduler is deliberately independent from the storage engine: the
    engine registers records and provides the applier; tests can drive it with
    plain dictionaries.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, DegradationStep]] = []
        self._registrations: Dict[Any, _Registration] = {}
        self._event_waiters: Dict[str, List[Tuple[Any, str]]] = {}
        self._counter = itertools.count()
        self.stats = SchedulerStats()

    # -- registration ---------------------------------------------------------

    def register(self, record_id: Any, tuple_lcp: TupleLCP, inserted_at: float) -> None:
        """Start tracking ``record_id`` inserted at ``inserted_at`` (most accurate state)."""
        if record_id in self._registrations:
            raise DegradationError(f"record {record_id!r} is already registered")
        registration = _Registration(
            record_id=record_id,
            tuple_lcp=tuple_lcp,
            inserted_at=inserted_at,
            current_states={name: 0 for name in tuple_lcp.attributes},
        )
        self._registrations[record_id] = registration
        for attribute in tuple_lcp.attributes:
            self._schedule_next(registration, attribute)

    def cancel(self, record_id: Any) -> None:
        """Stop tracking ``record_id`` (explicit delete).  Pending heap entries
        become stale and are skipped lazily when popped."""
        if record_id in self._registrations:
            del self._registrations[record_id]
            self.stats.steps_cancelled += 1

    def is_registered(self, record_id: Any) -> bool:
        return record_id in self._registrations

    def registered_count(self) -> int:
        return len(self._registrations)

    def current_state(self, record_id: Any) -> Dict[str, int]:
        registration = self._registration(record_id)
        return dict(registration.current_states)

    def _registration(self, record_id: Any) -> _Registration:
        try:
            return self._registrations[record_id]
        except KeyError:
            raise DegradationError(f"record {record_id!r} is not registered") from None

    # -- scheduling internals -------------------------------------------------

    def _schedule_next(self, registration: _Registration, attribute: str) -> None:
        lcp = registration.tuple_lcp.attributes[attribute]
        state = registration.current_states[attribute]
        if state + 1 >= lcp.num_states:
            return
        transition = lcp.transitions[state]
        if transition.timed:
            entry_times = lcp.entry_times()
            due = registration.inserted_at + entry_times[state + 1]
            if due == NEVER:
                return
            step = DegradationStep(
                record_id=registration.record_id,
                attribute=attribute,
                from_state=state,
                to_state=state + 1,
                due=due,
            )
            heapq.heappush(self._heap, (due, next(self._counter), step))
        else:
            registration.waiting_on[attribute] = transition.event
            self._event_waiters.setdefault(transition.event, []).append(
                (registration.record_id, attribute)
            )

    def defer(self, step: DegradationStep, until: float) -> None:
        """Re-queue a step that could not be applied yet (e.g. lock conflict).

        The step keeps its original transition but becomes due at ``until``.
        """
        registration = self._registrations.get(step.record_id)
        if registration is None:
            return
        if registration.current_states.get(step.attribute) != step.from_state:
            return
        deferred = DegradationStep(
            record_id=step.record_id,
            attribute=step.attribute,
            from_state=step.from_state,
            to_state=step.to_state,
            due=step.due,
            event=step.event,
        )
        heapq.heappush(self._heap, (until, next(self._counter), deferred))

    # -- events ----------------------------------------------------------------

    def fire_event(self, event: str, now: float) -> List[DegradationStep]:
        """Release every step waiting on ``event``; due time is ``now``."""
        released: List[DegradationStep] = []
        for record_id, attribute in self._event_waiters.pop(event, []):
            registration = self._registrations.get(record_id)
            if registration is None:
                continue
            if registration.waiting_on.get(attribute) != event:
                continue
            del registration.waiting_on[attribute]
            state = registration.current_states[attribute]
            step = DegradationStep(
                record_id=record_id,
                attribute=attribute,
                from_state=state,
                to_state=state + 1,
                due=now,
                event=event,
            )
            heapq.heappush(self._heap, (now, next(self._counter), step))
            released.append(step)
        return released

    # -- running ----------------------------------------------------------------

    def peek_next_due(self) -> Optional[float]:
        """Due time of the earliest pending step (stale entries skipped)."""
        while self._heap:
            due, _seq, step = self._heap[0]
            registration = self._registrations.get(step.record_id)
            if registration is None or registration.current_states.get(step.attribute) != step.from_state:
                heapq.heappop(self._heap)
                continue
            return due
        return None

    def due_steps(self, now: float) -> List[DegradationStep]:
        """Pop every step due at or before ``now`` without applying it."""
        steps: List[DegradationStep] = []
        while self._heap and self._heap[0][0] <= now:
            _due, _seq, step = heapq.heappop(self._heap)
            registration = self._registrations.get(step.record_id)
            if registration is None:
                continue
            if registration.current_states.get(step.attribute) != step.from_state:
                continue
            steps.append(step)
        return steps

    def run_due(self, now: float, applier: StepApplier,
                on_complete: Optional[CompletionCallback] = None) -> List[DegradationStep]:
        """Apply every due step through ``applier`` and schedule follow-ups.

        Returns the steps that were applied successfully.  Steps whose applier
        returns ``False`` are dropped (the record keeps its previous state);
        the engine is expected to raise instead for unexpected failures.
        """
        applied: List[DegradationStep] = []
        # Steps released by an applied step (none today, but event cascades may
        # add due steps), so loop until the queue has nothing due.
        while True:
            batch = self.due_steps(now)
            if not batch:
                break
            for step in batch:
                registration = self._registrations.get(step.record_id)
                if registration is None:
                    continue
                if not applier(step):
                    continue
                registration.current_states[step.attribute] = step.to_state
                self.stats.record_lag(max(0.0, now - step.due))
                applied.append(step)
                self._schedule_next(registration, step.attribute)
                if registration.is_final():
                    self.stats.records_completed += 1
                    del self._registrations[step.record_id]
                    if on_complete is not None:
                        on_complete(step.record_id)
        return applied

    def pending_count(self) -> int:
        """Number of non-stale steps currently queued (O(n) scan, test helper)."""
        count = 0
        for _due, _seq, step in self._heap:
            registration = self._registrations.get(step.record_id)
            if registration is None:
                continue
            if registration.current_states.get(step.attribute) != step.from_state:
                continue
            count += 1
        return count


__all__ = ["DegradationStep", "DegradationScheduler", "SchedulerStats",
           "StepApplier", "CompletionCallback"]
