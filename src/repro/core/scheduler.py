"""Degradation scheduler: the machinery that makes degradation *timely*.

The scheduler tracks, for every live record, the next due degradation step of
each of its degradable attributes.  Steps are kept in a priority queue ordered
by due time and can be drained in two ways:

* step-at-a-time — :meth:`DegradationScheduler.run_due` pops every step whose
  due time has passed and hands it to an *applier* callback (provided by the
  engine) which performs the physical degradation in the store, the indexes
  and the log;
* batched — :meth:`DegradationScheduler.due_batches` pops due steps grouped
  by a key (the table name for engine record ids) and
  :meth:`DegradationScheduler.run_due_batched` hands each group to a *batch
  applier* so the engine can amortize one system transaction, one exclusive
  lock and one durable WAL flush over the whole group.  ``max_batch`` bounds
  how many steps are popped per round so a huge backlog (a day's worth of
  inserts expiring in one wave) drains incrementally instead of holding one
  giant lock.

The scheduler also supports the paper's future-work extensions:

* event-triggered transitions — :meth:`fire_event` releases steps waiting on a
  named event; timed steps that follow an event transition are scheduled
  relative to the moment the event fired;
* per-tuple policies — each record is registered with its own
  :class:`~repro.core.lcp.TupleLCP`, so different tuples may follow different
  automata.

The schedule is also **durable** (PR 4): :meth:`DegradationScheduler.snapshot`
captures every registration together with its queued steps (including
deferrals and event-released steps, verbatim with their queue positions) as a
:class:`SchedulerSnapshot` that flattens to plain serializable fields, and
:meth:`DegradationScheduler.restore_from` rebuilds a scheduler from one.  The
``replay_applied`` / ``replay_defer`` methods let crash recovery re-apply the
WAL's schedule records on top of a snapshot without touching stats or
completion callbacks.  The scheduler itself stays policy-agnostic: restoring
needs a ``resolve_lcp(record_id)`` callback (provided by the engine) that
returns the record's :class:`~repro.core.lcp.TupleLCP` — or ``None`` to drop
registrations whose row no longer exists.

Timeliness statistics (lag between the scheduled due time and the time the
step is actually applied) are collected for the C2 benchmark.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .errors import DegradationError
from .lcp import NEVER, TupleLCP


@dataclass(frozen=True)
class DegradationStep:
    """One scheduled attribute transition of one record."""

    record_id: Any
    attribute: str
    from_state: int
    to_state: int
    due: float
    #: Name of the event that releases the step, or ``None`` for timed steps.
    event: Optional[str] = None

    def describe(self) -> str:
        trigger = f"at t={self.due}" if self.event is None else f"on event {self.event!r}"
        return (f"record {self.record_id}: {self.attribute} "
                f"d{self.from_state}->d{self.to_state} {trigger}")


@dataclass
class SchedulerStats:
    """Aggregate timeliness statistics exposed to benchmarks and tests."""

    steps_applied: int = 0
    steps_cancelled: int = 0
    records_completed: int = 0
    total_lag: float = 0.0
    max_lag: float = 0.0
    lags: List[float] = field(default_factory=list)

    def record_lag(self, lag: float) -> None:
        self.steps_applied += 1
        self.total_lag += lag
        self.max_lag = max(self.max_lag, lag)
        self.lags.append(lag)

    @property
    def mean_lag(self) -> float:
        return self.total_lag / self.steps_applied if self.steps_applied else 0.0

    def percentile_lag(self, q: float) -> float:
        """Lag percentile (``q`` in [0, 1])."""
        if not self.lags:
            return 0.0
        ordered = sorted(self.lags)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


@dataclass
class _Registration:
    """Book-keeping for one live record."""

    record_id: Any
    tuple_lcp: TupleLCP
    inserted_at: float
    current_states: Dict[str, int]
    #: When each attribute entered its current state (scheduled time, not wall
    #: time, so catch-up after a long pause keeps the original cadence).
    entered_at: Dict[str, float] = field(default_factory=dict)
    #: Attributes currently blocked on a named event.
    waiting_on: Dict[str, str] = field(default_factory=dict)

    def is_final(self) -> bool:
        return all(
            self.current_states[name] == lcp.num_states - 1
            for name, lcp in self.tuple_lcp.attributes.items()
        )

    def pending_step_count(self) -> int:
        """Pending next steps: one per attribute with a scheduled or waiting
        transition (infinite-delay transitions are never scheduled)."""
        count = 0
        for name, lcp in self.tuple_lcp.attributes.items():
            state = self.current_states[name]
            if state + 1 >= lcp.num_states:
                continue
            if name in self.waiting_on:
                count += 1
                continue
            transition = lcp.transitions[state]
            if transition.timed and float(transition.delay) != NEVER:
                count += 1
        return count


#: Resolver callback used when restoring a snapshot or replaying a
#: registration: maps ``(record_id, policy_names)`` back to the record's
#: TupleLCP (or None to drop it from the schedule).  ``policy_names`` is the
#: persisted attribute → policy-name mapping when the log carries one — the
#: reliable way to re-resolve per-tuple overrides, since the row's selector
#: value may have been degraded or updated since registration.
LCPResolver = Callable[[Any, Optional[Dict[str, str]]], Optional[TupleLCP]]


@dataclass
class RegistrationSnapshot:
    """Serializable image of one :class:`_Registration` and its queued steps."""

    record_id: Any
    inserted_at: float
    current_states: Dict[str, int]
    entered_at: Dict[str, float]
    #: Attributes blocked on a named event (attribute -> event name).
    waiting_on: Dict[str, str]
    #: Queued steps captured verbatim: attribute -> (step due time, queue
    #: position).  The two differ for deferred steps (original due, retry at)
    #: and capture event-released steps that have left ``waiting_on``.
    pending: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: Attribute -> policy name, so restoring re-resolves the exact automaton
    #: (per-tuple overrides included) without consulting the stored selector
    #: value, which may have degraded since registration.
    policies: Dict[str, str] = field(default_factory=dict)


@dataclass
class SchedulerSnapshot:
    """Full image of a scheduler's live state (the checkpointed due-queue).

    ``to_fields`` / ``from_fields`` flatten the snapshot to a list of plain
    serializable values (strings, ints, floats, bools) so the storage layer
    can encode it into a single WAL record without this module depending on
    the record codec.
    """

    registrations: List[RegistrationSnapshot] = field(default_factory=list)
    taken_at: float = 0.0

    _MAGIC = "sched-snapshot"
    _VERSION = 1

    def _registration_field_count(self, snap: RegistrationSnapshot) -> int:
        return len(self._record_id_fields(snap.record_id)) + 2 \
            + 8 * len(snap.current_states)

    def chunked(self, max_fields: int = 60000) -> List["SchedulerSnapshot"]:
        """Split into snapshots whose flattened form fits a record codec cap.

        Each chunk is a self-contained snapshot of a subset of registrations
        (same ``taken_at``); restoring every chunk restores the whole queue.
        A 10k-registration queue flattens to well over the storage codec's
        65535-field record limit, so checkpoints write one WAL record per
        chunk.
        """
        chunks: List[SchedulerSnapshot] = []
        current: List[RegistrationSnapshot] = []
        used = 4                     # magic, version, taken_at, count
        for snap in self.registrations:
            needed = self._registration_field_count(snap)
            if current and used + needed > max_fields:
                chunks.append(SchedulerSnapshot(registrations=current,
                                                taken_at=self.taken_at))
                current = []
                used = 4
            current.append(snap)
            used += needed
        chunks.append(SchedulerSnapshot(registrations=current,
                                        taken_at=self.taken_at))
        return chunks

    @staticmethod
    def _record_id_fields(record_id: Any) -> List[Any]:
        if (isinstance(record_id, tuple) and len(record_id) == 2
                and isinstance(record_id[0], str)):
            return [0, record_id[0], int(record_id[1])]
        if isinstance(record_id, str):
            return [1, record_id]
        if isinstance(record_id, int):
            return [2, record_id]
        raise DegradationError(
            f"record id {record_id!r} is not serializable for a schedule "
            "snapshot (expected (table, row_key), str or int)"
        )

    def to_fields(self) -> List[Any]:
        """Flatten to plain values for WAL encoding."""
        fields: List[Any] = [self._MAGIC, self._VERSION, float(self.taken_at),
                             len(self.registrations)]
        for snap in self.registrations:
            fields.extend(self._record_id_fields(snap.record_id))
            fields.append(float(snap.inserted_at))
            fields.append(len(snap.current_states))
            for attribute in sorted(snap.current_states):
                waiting = snap.waiting_on.get(attribute, False)
                pending = snap.pending.get(attribute)
                fields.extend([
                    attribute,
                    snap.policies.get(attribute, False),
                    int(snap.current_states[attribute]),
                    float(snap.entered_at.get(attribute, snap.inserted_at)),
                    waiting if waiting else False,
                    pending is not None,
                    float(pending[0]) if pending else 0.0,
                    float(pending[1]) if pending else 0.0,
                ])
        return fields

    @classmethod
    def from_fields(cls, fields: Sequence[Any]) -> "SchedulerSnapshot":
        """Rebuild a snapshot from :meth:`to_fields` output."""
        if len(fields) < 4 or fields[0] != cls._MAGIC:
            raise DegradationError("malformed scheduler snapshot payload")
        if int(fields[1]) != cls._VERSION:
            raise DegradationError(
                f"unsupported scheduler snapshot version {fields[1]!r}"
            )
        try:
            return cls._parse_fields(fields)
        except (IndexError, ValueError, TypeError) as error:
            # A truncated or corrupted payload fails with the module's typed
            # error, like the magic/version/marker checks above.
            raise DegradationError(
                f"malformed scheduler snapshot payload: {error}"
            ) from error

    @classmethod
    def _parse_fields(cls, fields: Sequence[Any]) -> "SchedulerSnapshot":
        cursor = 2
        taken_at = float(fields[cursor]); cursor += 1
        reg_count = int(fields[cursor]); cursor += 1
        registrations: List[RegistrationSnapshot] = []
        for _ in range(reg_count):
            marker = int(fields[cursor]); cursor += 1
            if marker == 0:
                record_id: Any = (str(fields[cursor]), int(fields[cursor + 1]))
                cursor += 2
            elif marker == 1:
                record_id = str(fields[cursor]); cursor += 1
            elif marker == 2:
                record_id = int(fields[cursor]); cursor += 1
            else:
                raise DegradationError(
                    f"unknown record-id marker {marker} in scheduler snapshot"
                )
            inserted_at = float(fields[cursor]); cursor += 1
            attr_count = int(fields[cursor]); cursor += 1
            current_states: Dict[str, int] = {}
            entered_at: Dict[str, float] = {}
            waiting_on: Dict[str, str] = {}
            pending: Dict[str, Tuple[float, float]] = {}
            policies: Dict[str, str] = {}
            for _ in range(attr_count):
                if cursor + 8 > len(fields):
                    raise DegradationError(
                        "malformed scheduler snapshot payload: truncated "
                        "attribute entry"
                    )
                (attribute, policy_name, state, entered, waiting,
                 has_pending, due, at) = fields[cursor:cursor + 8]
                cursor += 8
                attribute = str(attribute)
                current_states[attribute] = int(state)
                entered_at[attribute] = float(entered)
                if policy_name:
                    policies[attribute] = str(policy_name)
                if waiting:
                    waiting_on[attribute] = str(waiting)
                if has_pending:
                    pending[attribute] = (float(due), float(at))
            registrations.append(RegistrationSnapshot(
                record_id=record_id, inserted_at=inserted_at,
                current_states=current_states, entered_at=entered_at,
                waiting_on=waiting_on, pending=pending, policies=policies,
            ))
        return cls(registrations=registrations, taken_at=taken_at)


#: Applier callback: receives the step and must perform the physical
#: degradation; it returns True on success (False aborts rescheduling).
StepApplier = Callable[[DegradationStep], bool]

#: Batch applier callback: receives a group key (the table name for engine
#: record ids) and that group's due steps; returns the steps that were applied
#: successfully (steps it dropped or deferred are simply not returned).
BatchApplier = Callable[[Any, List[DegradationStep]], List[DegradationStep]]

#: Callback invoked when a record reaches its final tuple state.
CompletionCallback = Callable[[Any], None]

#: Grouping callback mapping a due step to its batch key.
GroupKey = Callable[[DegradationStep], Any]


def _default_group_key(step: DegradationStep) -> Any:
    """Engine record ids are ``(table, row_key)`` tuples: group by table."""
    if isinstance(step.record_id, tuple) and step.record_id:
        return step.record_id[0]
    return None


@dataclass
class DegradationBatch:
    """Due steps sharing one group key, drained together."""

    key: Any
    steps: List[DegradationStep] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)


class DegradationScheduler:
    """Priority-queue scheduler of degradation steps.

    The scheduler is deliberately independent from the storage engine: the
    engine registers records and provides the applier; tests can drive it with
    plain dictionaries.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, DegradationStep]] = []
        self._registrations: Dict[Any, _Registration] = {}
        self._event_waiters: Dict[str, List[Tuple[Any, str]]] = {}
        self._counter = itertools.count()
        self.stats = SchedulerStats()

    # -- registration ---------------------------------------------------------

    def register(self, record_id: Any, tuple_lcp: TupleLCP, inserted_at: float) -> None:
        """Start tracking ``record_id`` inserted at ``inserted_at`` (most accurate state)."""
        if record_id in self._registrations:
            raise DegradationError(f"record {record_id!r} is already registered")
        registration = _Registration(
            record_id=record_id,
            tuple_lcp=tuple_lcp,
            inserted_at=inserted_at,
            current_states={name: 0 for name in tuple_lcp.attributes},
            entered_at={name: inserted_at for name in tuple_lcp.attributes},
        )
        self._registrations[record_id] = registration
        for attribute in tuple_lcp.attributes:
            self._schedule_next(registration, attribute)

    def cancel(self, record_id: Any) -> int:
        """Stop tracking ``record_id`` (explicit delete).

        Returns the number of pending steps cancelled (one per attribute that
        had not reached its final state).  Pending heap entries become stale
        and are skipped lazily when popped; event-waiter entries are purged
        eagerly so cancelled records do not leak in ``_event_waiters``.
        """
        registration = self._registrations.pop(record_id, None)
        if registration is None:
            return 0
        cancelled = registration.pending_step_count()
        for attribute, event in registration.waiting_on.items():
            waiters = self._event_waiters.get(event)
            if not waiters:
                continue
            remaining = [entry for entry in waiters if entry != (record_id, attribute)]
            if remaining:
                self._event_waiters[event] = remaining
            else:
                del self._event_waiters[event]
        self.stats.steps_cancelled += cancelled
        return cancelled

    def is_registered(self, record_id: Any) -> bool:
        """Whether ``record_id`` is currently tracked by the scheduler."""
        return record_id in self._registrations

    def registered_count(self) -> int:
        """Number of live registrations (records not yet in their final state)."""
        return len(self._registrations)

    def current_state(self, record_id: Any) -> Dict[str, int]:
        """Per-attribute state indices of ``record_id``.

        Returns an **empty dict** for ids the scheduler does not track —
        records never registered, already completed, or cancelled.  An empty
        mapping therefore means "no pending degradation", which callers can
        branch on without catching exceptions; use :meth:`is_registered` to
        distinguish "unknown" from "completed" if it matters.
        """
        registration = self._registrations.get(record_id)
        if registration is None:
            return {}
        return dict(registration.current_states)

    # -- scheduling internals -------------------------------------------------

    def _schedule_next(self, registration: _Registration, attribute: str) -> None:
        lcp = registration.tuple_lcp.attributes[attribute]
        state = registration.current_states[attribute]
        if state + 1 >= lcp.num_states:
            return
        transition = lcp.transitions[state]
        if transition.timed:
            # Relative to when the current state was entered, so timed steps
            # that follow an event transition fire `delay` after the event.
            due = registration.entered_at.get(attribute, registration.inserted_at) \
                + float(transition.delay)
            if due == NEVER:
                return
            step = DegradationStep(
                record_id=registration.record_id,
                attribute=attribute,
                from_state=state,
                to_state=state + 1,
                due=due,
            )
            heapq.heappush(self._heap, (due, next(self._counter), step))
        else:
            registration.waiting_on[attribute] = transition.event
            self._event_waiters.setdefault(transition.event, []).append(
                (registration.record_id, attribute)
            )

    def defer(self, step: DegradationStep, until: float) -> None:
        """Re-queue a step that could not be applied yet (e.g. lock conflict).

        The step keeps its original transition but becomes due at ``until``.
        """
        registration = self._registrations.get(step.record_id)
        if registration is None:
            return
        if registration.current_states.get(step.attribute) != step.from_state:
            return
        deferred = DegradationStep(
            record_id=step.record_id,
            attribute=step.attribute,
            from_state=step.from_state,
            to_state=step.to_state,
            due=step.due,
            event=step.event,
        )
        heapq.heappush(self._heap, (until, next(self._counter), deferred))

    # -- events ----------------------------------------------------------------

    def has_waiters(self, event: str) -> bool:
        """Whether any registered attribute is blocked on ``event``."""
        return bool(self._event_waiters.get(event))

    def fire_event(self, event: str, now: float) -> List[DegradationStep]:
        """Release every step waiting on ``event``; due time is ``now``."""
        released: List[DegradationStep] = []
        for record_id, attribute in self._event_waiters.pop(event, []):
            registration = self._registrations.get(record_id)
            if registration is None:
                continue
            if registration.waiting_on.get(attribute) != event:
                continue
            del registration.waiting_on[attribute]
            state = registration.current_states[attribute]
            step = DegradationStep(
                record_id=record_id,
                attribute=attribute,
                from_state=state,
                to_state=state + 1,
                due=now,
                event=event,
            )
            heapq.heappush(self._heap, (now, next(self._counter), step))
            released.append(step)
        return released

    # -- running ----------------------------------------------------------------

    def peek_next_due(self) -> Optional[float]:
        """Due time of the earliest pending step (stale entries skipped)."""
        while self._heap:
            due, _seq, step = self._heap[0]
            registration = self._registrations.get(step.record_id)
            if registration is None or registration.current_states.get(step.attribute) != step.from_state:
                heapq.heappop(self._heap)
                continue
            return due
        return None

    def due_steps(self, now: float) -> List[DegradationStep]:
        """Pop every step due at or before ``now`` without applying it."""
        steps: List[DegradationStep] = []
        while self._heap and self._heap[0][0] <= now:
            _due, _seq, step = heapq.heappop(self._heap)
            registration = self._registrations.get(step.record_id)
            if registration is None:
                continue
            if registration.current_states.get(step.attribute) != step.from_state:
                continue
            steps.append(step)
        return steps

    def due_batches(self, now: float, max_batch: Optional[int] = None,
                    group_key: Optional[GroupKey] = None) -> List[DegradationBatch]:
        """Pop due steps grouped by key (table name for engine record ids).

        At most ``max_batch`` steps are popped per call (``None`` = no bound);
        the remainder stays queued so callers drain huge backlogs in bounded
        chunks.  Batches preserve first-seen key order and, within a batch,
        due order.
        """
        if group_key is None:
            group_key = _default_group_key
        grouped: Dict[Any, DegradationBatch] = {}
        batches: List[DegradationBatch] = []
        popped = 0
        while self._heap and self._heap[0][0] <= now:
            if max_batch is not None and popped >= max_batch:
                break
            _due, _seq, step = heapq.heappop(self._heap)
            registration = self._registrations.get(step.record_id)
            if registration is None:
                continue
            if registration.current_states.get(step.attribute) != step.from_state:
                continue
            key = group_key(step)
            batch = grouped.get(key)
            if batch is None:
                batch = DegradationBatch(key=key)
                grouped[key] = batch
                batches.append(batch)
            batch.steps.append(step)
            popped += 1
        return batches

    def _mark_applied(self, step: DegradationStep, now: float,
                      applied: List[DegradationStep],
                      on_complete: Optional[CompletionCallback]) -> None:
        """Book-keeping after an applier reported ``step`` as done."""
        registration = self._registrations.get(step.record_id)
        if registration is None:
            return
        registration.current_states[step.attribute] = step.to_state
        registration.entered_at[step.attribute] = step.due
        self.stats.record_lag(max(0.0, now - step.due))
        applied.append(step)
        self._schedule_next(registration, step.attribute)
        if registration.is_final():
            self.stats.records_completed += 1
            del self._registrations[step.record_id]
            if on_complete is not None:
                on_complete(step.record_id)

    def predict_complete(self, steps: Sequence[DegradationStep]) -> List[Any]:
        """Record ids that reach their final tuple state once ``steps`` apply.

        Pure prediction — the schedule is not mutated.  A batch applier uses
        this to fold the resulting final removals into the same system
        transaction as the batch's ``DEGRADE`` records; the completion
        callback that runs after the drain then finds the rows already gone
        and no-ops.
        """
        overlay: Dict[Any, Dict[str, int]] = {}
        for step in steps:
            registration = self._registrations.get(step.record_id)
            if registration is None:
                continue
            states = overlay.get(step.record_id)
            if states is None:
                states = dict(registration.current_states)
                overlay[step.record_id] = states
            if states.get(step.attribute) != step.from_state:
                continue  # stale: the drain skips it too
            states[step.attribute] = step.to_state
        completed: List[Any] = []
        for record_id, states in overlay.items():
            tuple_lcp = self._registrations[record_id].tuple_lcp
            if all(states[name] == lcp.num_states - 1
                   for name, lcp in tuple_lcp.attributes.items()):
                completed.append(record_id)
        return completed

    def run_due(self, now: float, applier: StepApplier,
                on_complete: Optional[CompletionCallback] = None) -> List[DegradationStep]:
        """Apply every due step through ``applier`` and schedule follow-ups.

        Returns the steps that were applied successfully.  Steps whose applier
        returns ``False`` are dropped (the record keeps its previous state);
        the engine is expected to raise instead for unexpected failures.
        """
        applied: List[DegradationStep] = []
        # Steps released by an applied step (none today, but event cascades may
        # add due steps), so loop until the queue has nothing due.
        while True:
            batch = self.due_steps(now)
            if not batch:
                break
            for step in batch:
                registration = self._registrations.get(step.record_id)
                if registration is None:
                    continue
                if not applier(step):
                    continue
                self._mark_applied(step, now, applied, on_complete)
        return applied

    def run_due_batched(self, now: float, applier: BatchApplier,
                        on_complete: Optional[CompletionCallback] = None,
                        max_batch: Optional[int] = None,
                        group_key: Optional[GroupKey] = None) -> List[DegradationStep]:
        """Drain due steps through a batch applier, group by group.

        Each :class:`DegradationBatch` is handed to ``applier`` whole; the
        applier returns the steps it actually applied (deferring or dropping
        the rest).  Follow-up steps released by an applied batch (next timed
        transitions already overdue during catch-up) are drained in subsequent
        rounds until nothing is due.
        """
        applied: List[DegradationStep] = []
        while True:
            batches = self.due_batches(now, max_batch=max_batch, group_key=group_key)
            if not batches:
                break
            for batch in batches:
                for step in applier(batch.key, batch.steps):
                    self._mark_applied(step, now, applied, on_complete)
        return applied

    def pending_count(self) -> int:
        """Number of non-stale steps currently queued (O(n) scan, test helper)."""
        count = 0
        for _due, _seq, step in self._heap:
            registration = self._registrations.get(step.record_id)
            if registration is None:
                continue
            if registration.current_states.get(step.attribute) != step.from_state:
                continue
            count += 1
        return count

    def overdue_count(self, now: float) -> int:
        """Number of non-stale steps due at or before ``now`` (O(n) scan).

        This is the public backlog measure the daemon reports; it never pops
        or applies anything.
        """
        count = 0
        for due, _seq, step in self._heap:
            if due > now:
                continue
            registration = self._registrations.get(step.record_id)
            if registration is None:
                continue
            if registration.current_states.get(step.attribute) != step.from_state:
                continue
            count += 1
        return count

    # -- durability: snapshot / restore / replay -------------------------------

    def snapshot(self, now: float = 0.0) -> SchedulerSnapshot:
        """Capture the live schedule (registrations + queued steps) verbatim.

        Queued steps are recorded with both their original due time and their
        current queue position, so deferrals (re-queued at a later retry time)
        and event-released steps survive a round trip exactly.  Stale heap
        entries are skipped.  The snapshot holds no attribute values and no
        policy objects — restoring resolves policies through a callback.
        """
        pending: Dict[Any, Dict[str, Tuple[float, float]]] = {}
        for at, _seq, step in self._heap:
            registration = self._registrations.get(step.record_id)
            if registration is None:
                continue
            if registration.current_states.get(step.attribute) != step.from_state:
                continue
            per_record = pending.setdefault(step.record_id, {})
            existing = per_record.get(step.attribute)
            if existing is None or at < existing[1]:
                per_record[step.attribute] = (step.due, at)
        registrations = [
            RegistrationSnapshot(
                record_id=record_id,
                inserted_at=registration.inserted_at,
                current_states=dict(registration.current_states),
                entered_at=dict(registration.entered_at),
                waiting_on=dict(registration.waiting_on),
                pending=pending.get(record_id, {}),
                policies={
                    attribute: lcp.name
                    for attribute, lcp in registration.tuple_lcp.attributes.items()
                },
            )
            for record_id, registration in self._registrations.items()
        ]
        return SchedulerSnapshot(registrations=registrations, taken_at=now)

    def restore_from(self, snapshot: SchedulerSnapshot,
                     resolve_lcp: LCPResolver) -> int:
        """Rebuild registrations and the due-queue from ``snapshot``.

        ``resolve_lcp(record_id)`` supplies each record's
        :class:`~repro.core.lcp.TupleLCP` (the snapshot carries no policy
        objects); returning ``None`` drops the registration — the engine uses
        this to discard records whose row was deleted before or during
        recovery.  Registrations that no longer fit the resolved policy
        (attribute set or state out of range) and already-final ones are
        skipped.  Existing registrations are kept, not overwritten.  Returns
        the number of registrations restored.
        """
        restored = 0
        for snap in snapshot.registrations:
            if self._restore_registration(snap, resolve_lcp):
                restored += 1
        return restored

    def _restore_registration(self, snap: RegistrationSnapshot,
                              resolve_lcp: LCPResolver) -> bool:
        if snap.record_id in self._registrations:
            return False
        tuple_lcp = resolve_lcp(snap.record_id, snap.policies or None)
        if tuple_lcp is None:
            return False
        if set(tuple_lcp.attributes) != set(snap.current_states):
            return False
        for name, lcp in tuple_lcp.attributes.items():
            if not 0 <= snap.current_states[name] < lcp.num_states:
                return False
        registration = _Registration(
            record_id=snap.record_id,
            tuple_lcp=tuple_lcp,
            inserted_at=snap.inserted_at,
            current_states=dict(snap.current_states),
            entered_at=dict(snap.entered_at),
            waiting_on=dict(snap.waiting_on),
        )
        if registration.is_final():
            return False
        self._registrations[snap.record_id] = registration
        for attribute, lcp in tuple_lcp.attributes.items():
            state = registration.current_states[attribute]
            if state + 1 >= lcp.num_states:
                continue
            queued = snap.pending.get(attribute)
            if queued is not None:
                # Re-queue the captured step verbatim: original due time for
                # lag accounting, captured position for ordering (they differ
                # for deferred steps).
                due, at = queued
                transition = lcp.transitions[state]
                registration.waiting_on.pop(attribute, None)
                step = DegradationStep(
                    record_id=snap.record_id, attribute=attribute,
                    from_state=state, to_state=state + 1, due=due,
                    event=None if transition.timed else transition.event,
                )
                heapq.heappush(self._heap, (at, next(self._counter), step))
            elif attribute in registration.waiting_on:
                self._event_waiters.setdefault(
                    registration.waiting_on[attribute], []
                ).append((snap.record_id, attribute))
            else:
                self._schedule_next(registration, attribute)
        return True

    def replay_applied(self, record_id: Any, attribute: str, to_state: int,
                       due: float) -> bool:
        """Recovery replay of a logged step application.

        Advances ``attribute`` to ``to_state`` exactly like
        :meth:`_mark_applied` — enters the new state at the step's ``due``
        time and schedules the follow-up transition — but records no lag
        statistics and fires no completion callback (the physical effects
        were already redone from the data log records).  Registrations that
        reach their final tuple state are dropped.  Returns whether the
        replay applied (``False`` when the registration is unknown or not in
        the expected source state — the step was already replayed or the
        record moved on).
        """
        registration = self._registrations.get(record_id)
        if registration is None:
            return False
        if registration.current_states.get(attribute) != to_state - 1:
            return False
        event = registration.waiting_on.pop(attribute, None)
        if event is not None:
            waiters = self._event_waiters.get(event)
            if waiters:
                remaining = [entry for entry in waiters
                             if entry != (record_id, attribute)]
                if remaining:
                    self._event_waiters[event] = remaining
                else:
                    del self._event_waiters[event]
        registration.current_states[attribute] = to_state
        registration.entered_at[attribute] = due
        self._schedule_next(registration, attribute)
        if registration.is_final():
            del self._registrations[record_id]
        return True

    def replay_defer(self, record_id: Any, attribute: str, from_state: int,
                     due: float, until: float) -> bool:
        """Recovery replay of one logged deferral (see :meth:`replay_defers`)."""
        return self.replay_defers(
            [(record_id, attribute, from_state, due, until)]) == 1

    def replay_defers(self,
                      entries: List[Tuple[Any, str, int, float, float]]) -> int:
        """Recovery replay of a batch of logged deferrals.

        Each ``(record_id, attribute, from_state, due, until)`` entry moves
        the queued step for ``(record_id, attribute)`` to retry at ``until``
        while keeping its original ``due`` for lag accounting — mirroring
        :meth:`defer`, which operates on steps already popped from the queue,
        whereas replay must first displace the reconstructed entries.  The
        whole batch pays one queue rebuild (a SCHED_DEFER record covers a
        whole conflict-deferred table batch).  Returns the number of
        deferrals applied.
        """
        valid: List[Tuple[Any, str, int, float, float]] = []
        for record_id, attribute, from_state, due, until in entries:
            registration = self._registrations.get(record_id)
            if registration is None:
                continue
            if registration.current_states.get(attribute) != from_state:
                continue
            valid.append((record_id, attribute, from_state, due, until))
        if not valid:
            return 0
        displaced = {(record_id, attribute)
                     for record_id, attribute, *_rest in valid}
        self._heap = [
            entry for entry in self._heap
            if (entry[2].record_id, entry[2].attribute) not in displaced
        ]
        for record_id, attribute, from_state, due, until in valid:
            step = DegradationStep(
                record_id=record_id, attribute=attribute,
                from_state=from_state, to_state=from_state + 1, due=due,
            )
            self._heap.append((until, next(self._counter), step))
        heapq.heapify(self._heap)
        return len(valid)


__all__ = ["DegradationStep", "DegradationBatch", "DegradationScheduler",
           "SchedulerStats", "SchedulerSnapshot", "RegistrationSnapshot",
           "StepApplier", "BatchApplier", "CompletionCallback", "LCPResolver"]
