"""Typed values and the sentinels used by the degradation model.

Degradation introduces two special values that a traditional type system does
not have:

* :data:`SUPPRESSED` — the value reached at the *root* of a generalization
  tree: the attribute still exists but carries no information anymore (the
  paper's ``d4`` / "any" state).
* :data:`REMOVED` — the tuple as a whole has disappeared from the database.

Both are singletons that compare equal only to themselves, serialize
unambiguously and sort after every regular value so that ordered indexes keep
a stable total order while data degrades.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional

from .errors import SchemaError


class _Sentinel:
    """Singleton marker value with a stable repr and ordering."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{self._name}>"

    def __str__(self) -> str:
        return self._name

    def __bool__(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return other is self

    def __hash__(self) -> int:
        return hash(self._name)

    def __lt__(self, other: object) -> bool:
        # Sentinels sort after every ordinary value and among themselves by name.
        if isinstance(other, _Sentinel):
            return self._name < other._name
        return False

    def __gt__(self, other: object) -> bool:
        if isinstance(other, _Sentinel):
            return self._name > other._name
        return True


#: Value of a degradable attribute that reached the root of its generalization
#: tree: still present, but informationless.
SUPPRESSED = _Sentinel("SUPPRESSED")

#: Marker for a tuple that was physically removed by the final degradation step.
REMOVED = _Sentinel("REMOVED")

#: SQL NULL.
NULL = _Sentinel("NULL")

SENTINELS = (SUPPRESSED, REMOVED, NULL)


class ValueType(Enum):
    """Column types supported by the engine."""

    INT = "INT"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOL = "BOOL"
    TIMESTAMP = "TIMESTAMP"

    @classmethod
    def from_name(cls, name: str) -> "ValueType":
        normalized = name.strip().upper()
        aliases = {
            "INTEGER": "INT",
            "BIGINT": "INT",
            "REAL": "FLOAT",
            "DOUBLE": "FLOAT",
            "STRING": "TEXT",
            "VARCHAR": "TEXT",
            "CHAR": "TEXT",
            "BOOLEAN": "BOOL",
            "DATETIME": "TIMESTAMP",
        }
        normalized = aliases.get(normalized, normalized)
        try:
            return cls(normalized)
        except ValueError:
            raise SchemaError(f"unknown column type: {name!r}") from None

    @property
    def python_type(self) -> type:
        return {
            ValueType.INT: int,
            ValueType.FLOAT: float,
            ValueType.TEXT: str,
            ValueType.BOOL: bool,
            ValueType.TIMESTAMP: float,
        }[self]


def coerce(value: Any, value_type: ValueType) -> Any:
    """Coerce ``value`` to ``value_type``, passing sentinels through untouched.

    Raises :class:`SchemaError` when the value cannot be represented.
    """
    if value is None:
        return NULL
    if any(value is sentinel for sentinel in SENTINELS):
        return value
    try:
        if value_type is ValueType.INT:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float) and not value.is_integer():
                raise SchemaError(f"cannot store non-integral {value!r} in INT column")
            return int(value)
        if value_type is ValueType.FLOAT:
            return float(value)
        if value_type is ValueType.TEXT:
            if isinstance(value, (bytes, bytearray)):
                return value.decode("utf-8")
            return str(value)
        if value_type is ValueType.BOOL:
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1", "yes"):
                    return True
                if lowered in ("false", "f", "0", "no"):
                    return False
                raise SchemaError(f"cannot interpret {value!r} as BOOL")
            return bool(value)
        if value_type is ValueType.TIMESTAMP:
            return float(value)
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"cannot coerce {value!r} to {value_type.value}") from exc
    raise SchemaError(f"unsupported value type {value_type!r}")  # pragma: no cover


def is_missing(value: Any) -> bool:
    """True when ``value`` carries no usable information."""
    return value is NULL or value is SUPPRESSED or value is REMOVED or value is None


@dataclass(frozen=True)
class AccuracyTagged:
    """A value annotated with the accuracy level it was produced at.

    Query results expose these when the caller asks for provenance; the plain
    value is returned otherwise.
    """

    value: Any
    level: int
    level_name: Optional[str] = None

    def __str__(self) -> str:
        suffix = self.level_name or f"level {self.level}"
        return f"{self.value} @{suffix}"


def sort_key(value: Any) -> tuple:
    """Total order over heterogeneous values used by ORDER BY and B+-trees.

    Regular values sort within their type class; sentinels sort last.
    """
    if value is NULL:
        return (3, 0, "NULL")
    if value is SUPPRESSED:
        return (3, 1, "SUPPRESSED")
    if value is REMOVED:
        return (3, 2, "REMOVED")
    if isinstance(value, bool):
        return (1, 0, int(value))
    if isinstance(value, (int, float)):
        return (0, 0, float(value))
    if isinstance(value, str):
        return (2, 0, value)
    return (2, 1, repr(value))
