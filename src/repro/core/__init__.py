"""Core degradation model: generalization trees, life cycle policies, scheduling."""

from .clock import (
    DAY,
    HOUR,
    MINUTE,
    MONTH,
    SECOND,
    WEEK,
    YEAR,
    Clock,
    SimulatedClock,
    WallClock,
    duration,
    format_duration,
    make_clock,
    parse_duration,
)
from .errors import (
    AccuracyError,
    BindingError,
    CatalogError,
    ConfigurationError,
    DegradationError,
    ExecutionError,
    GeneralizationError,
    InstantDBError,
    IrreversibilityError,
    ParseError,
    PolicyError,
    QueryError,
    RecoveryError,
    SchemaError,
    StorageError,
    TransactionAborted,
    TransactionError,
    UnknownValueError,
)
from .generalization import (
    GeneralizationScheme,
    GeneralizationTree,
    NumericRangeGeneralization,
    TimestampGeneralization,
)
from .lcp import NEVER, AttributeLCP, Transition, TupleLCP, freeze_state, thaw_state
from .policy import AccuracyRequirement, PolicyRegistry, Purpose, TablePolicy
from .scheduler import (
    DegradationScheduler,
    DegradationStep,
    SchedulerSnapshot,
    SchedulerStats,
)
from .schema import Column, TableSchema
from .values import NULL, REMOVED, SUPPRESSED, AccuracyTagged, ValueType, coerce, is_missing, sort_key

__all__ = [
    # clock
    "SECOND", "MINUTE", "HOUR", "DAY", "WEEK", "MONTH", "YEAR",
    "Clock", "SimulatedClock", "WallClock", "duration", "parse_duration",
    "format_duration", "make_clock",
    # errors
    "InstantDBError", "ConfigurationError", "GeneralizationError",
    "UnknownValueError", "PolicyError", "IrreversibilityError", "SchemaError",
    "CatalogError", "StorageError", "TransactionError", "TransactionAborted",
    "QueryError", "ParseError", "BindingError", "ExecutionError",
    "AccuracyError", "DegradationError", "RecoveryError",
    # generalization
    "GeneralizationScheme", "GeneralizationTree", "NumericRangeGeneralization",
    "TimestampGeneralization",
    # lcp
    "AttributeLCP", "Transition", "TupleLCP", "NEVER", "freeze_state", "thaw_state",
    # policy
    "Purpose", "AccuracyRequirement", "PolicyRegistry", "TablePolicy",
    # scheduler
    "DegradationScheduler", "DegradationStep", "SchedulerSnapshot", "SchedulerStats",
    # schema
    "Column", "TableSchema",
    # values
    "NULL", "SUPPRESSED", "REMOVED", "ValueType", "AccuracyTagged",
    "coerce", "is_missing", "sort_key",
]
