"""Table schemas with stable and degradable attributes (paper §II).

A tuple is "a composition of stable attributes which do not participate in the
degradation process and degradable attributes".  A :class:`Column` therefore
carries, besides its name and type, whether it is degradable and, if so, which
domain (generalization scheme) and life cycle policy govern it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import SchemaError
from .values import NULL, ValueType, coerce


@dataclass
class Column:
    """One column of a table schema."""

    name: str
    value_type: ValueType
    degradable: bool = False
    domain: Optional[str] = None
    policy: Optional[str] = None
    nullable: bool = True
    primary_key: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.value_type, str):
            self.value_type = ValueType.from_name(self.value_type)
        self.name = self.name.lower()
        if self.degradable and self.domain is None:
            raise SchemaError(
                f"degradable column {self.name!r} must name its generalization domain"
            )
        if self.primary_key and self.degradable:
            raise SchemaError(
                f"column {self.name!r}: a primary key cannot be degradable "
                "(the paper keeps the donor identity stable)"
            )

    def coerce(self, value: Any) -> Any:
        if value is None or value is NULL:
            if not self.nullable or self.primary_key:
                raise SchemaError(f"column {self.name!r} does not accept NULL")
            return NULL
        return coerce(value, self.value_type)

    def describe(self) -> str:
        parts = [self.name, self.value_type.value]
        if self.primary_key:
            parts.append("PRIMARY KEY")
        if self.degradable:
            parts.append(f"DEGRADABLE DOMAIN {self.domain}")
            if self.policy:
                parts.append(f"POLICY {self.policy}")
        if not self.nullable:
            parts.append("NOT NULL")
        return " ".join(parts)


class TableSchema:
    """Ordered collection of columns plus the degradation-relevant views on it."""

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        self.name = name.lower()
        if not columns:
            raise SchemaError(f"table {self.name!r} needs at least one column")
        self.columns: List[Column] = list(columns)
        self._by_name: Dict[str, Column] = {}
        for column in self.columns:
            if column.name in self._by_name:
                raise SchemaError(
                    f"table {self.name!r}: duplicate column {column.name!r}"
                )
            self._by_name[column.name] = column
        primary_keys = [c.name for c in self.columns if c.primary_key]
        if len(primary_keys) > 1:
            raise SchemaError(
                f"table {self.name!r}: at most one primary key column is supported"
            )
        self.primary_key: Optional[str] = primary_keys[0] if primary_keys else None

    # -- lookups -------------------------------------------------------------

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def column_index(self, name: str) -> int:
        name = name.lower()
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def degradable_columns(self) -> List[Column]:
        return [column for column in self.columns if column.degradable]

    def stable_columns(self) -> List[Column]:
        return [column for column in self.columns if not column.degradable]

    @property
    def has_degradable_columns(self) -> bool:
        return any(column.degradable for column in self.columns)

    # -- row handling ----------------------------------------------------------

    def coerce_row(self, row: Any) -> Tuple[Any, ...]:
        """Coerce ``row`` (mapping or sequence) into a value tuple in column order."""
        if isinstance(row, dict):
            unknown = set(key.lower() for key in row) - set(self._by_name)
            if unknown:
                raise SchemaError(
                    f"table {self.name!r}: unknown columns {sorted(unknown)!r}"
                )
            values = []
            lowered = {key.lower(): value for key, value in row.items()}
            for column in self.columns:
                values.append(column.coerce(lowered.get(column.name)))
            return tuple(values)
        values = list(row)
        if len(values) != len(self.columns):
            raise SchemaError(
                f"table {self.name!r}: expected {len(self.columns)} values, "
                f"got {len(values)}"
            )
        return tuple(
            column.coerce(value) for column, value in zip(self.columns, values)
        )

    def row_dict(self, values: Sequence[Any]) -> Dict[str, Any]:
        """Inverse of :meth:`coerce_row` — a name → value mapping."""
        if len(values) != len(self.columns):
            raise SchemaError(
                f"table {self.name!r}: expected {len(self.columns)} values, "
                f"got {len(values)}"
            )
        return {column.name: value for column, value in zip(self.columns, values)}

    def describe(self) -> str:
        body = ",\n  ".join(column.describe() for column in self.columns)
        return f"CREATE TABLE {self.name} (\n  {body}\n)"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<TableSchema {self.name} ({len(self.columns)} columns)>"


__all__ = ["Column", "TableSchema"]
