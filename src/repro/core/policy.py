"""Purposes, policy bindings and per-table degradation policies.

The paper binds queries to *purposes*: a declared purpose fixes, per
degradable attribute, the accuracy level at which the query observes the data
(``DECLARE PURPOSE STAT SET ACCURACY LEVEL COUNTRY FOR P.LOCATION ...``).
This module provides:

* :class:`Purpose` — a named mapping ``(table, column) -> accuracy level``.
* :class:`TablePolicy` — the set of attribute LCPs of one table, from which the
  tuple LCP is derived, plus optional per-tuple policy overrides (the paper's
  "paranoid users defining their own LCP" future-work extension).
* :class:`PolicyRegistry` — name → :class:`AttributeLCP` registry shared by the
  catalog and the DDL layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Tuple

from .errors import CatalogError, PolicyError
from .generalization import GeneralizationScheme
from .lcp import AttributeLCP, TupleLCP


@dataclass(frozen=True)
class AccuracyRequirement:
    """One ``SET ACCURACY LEVEL <level> FOR <table>.<column>`` clause."""

    table: str
    column: str
    level: Any  # level name (str) or level index (int)

    def resolve(self, scheme: GeneralizationScheme) -> int:
        """Resolve the requirement to a numeric accuracy level for ``scheme``."""
        if isinstance(self.level, int):
            if not 0 <= self.level < scheme.num_levels:
                raise PolicyError(
                    f"accuracy level {self.level} outside domain {scheme.name!r}"
                )
            return self.level
        return scheme.level_of_name(str(self.level))


class Purpose:
    """A declared purpose and the accuracy levels it grants.

    Attributes not mentioned by the purpose are observed at their *stored*
    accuracy (i.e. no extra degradation is applied on read, but the query still
    only sees whatever the LCP left behind).
    """

    def __init__(self, name: str,
                 requirements: Optional[Iterable[AccuracyRequirement]] = None,
                 description: str = "") -> None:
        self.name = name
        self.description = description
        self._requirements: Dict[Tuple[str, str], AccuracyRequirement] = {}
        for req in requirements or ():
            self.add_requirement(req)

    def add_requirement(self, requirement: AccuracyRequirement) -> None:
        key = (requirement.table.lower(), requirement.column.lower())
        self._requirements[key] = requirement

    def require(self, table: str, column: str, level: Any) -> "Purpose":
        """Fluent helper: ``purpose.require("person", "location", "country")``."""
        self.add_requirement(AccuracyRequirement(table, column, level))
        return self

    def requirement_for(self, table: str, column: str) -> Optional[AccuracyRequirement]:
        return self._requirements.get((table.lower(), column.lower()))

    def requirements(self) -> Iterable[AccuracyRequirement]:
        return self._requirements.values()

    def accuracy_for(self, table: str, column: str,
                     scheme: GeneralizationScheme) -> Optional[int]:
        """Numeric accuracy level demanded for ``table.column`` or ``None``."""
        requirement = self.requirement_for(table, column)
        if requirement is None:
            return None
        return requirement.resolve(scheme)

    def describe(self) -> str:
        clauses = ", ".join(
            f"{req.level} FOR {req.table}.{req.column}" for req in self._requirements.values()
        )
        return f"PURPOSE {self.name} SET ACCURACY LEVEL {clauses}" if clauses else \
            f"PURPOSE {self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Purpose {self.describe()}>"


class PolicyRegistry:
    """Registry of named attribute LCPs and generalization schemes."""

    def __init__(self) -> None:
        self._schemes: Dict[str, GeneralizationScheme] = {}
        self._policies: Dict[str, AttributeLCP] = {}

    # -- domains ------------------------------------------------------------

    def register_domain(self, scheme: GeneralizationScheme,
                        name: Optional[str] = None) -> GeneralizationScheme:
        key = (name or scheme.name).lower()
        if key in self._schemes:
            raise CatalogError(f"domain {key!r} already registered")
        self._schemes[key] = scheme
        return scheme

    def domain(self, name: str) -> GeneralizationScheme:
        try:
            return self._schemes[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown domain {name!r}") from None

    def has_domain(self, name: str) -> bool:
        return name.lower() in self._schemes

    def domains(self) -> Dict[str, GeneralizationScheme]:
        return dict(self._schemes)

    # -- policies -----------------------------------------------------------

    def register_policy(self, policy: AttributeLCP,
                        name: Optional[str] = None) -> AttributeLCP:
        key = (name or policy.name).lower()
        if key in self._policies:
            raise CatalogError(f"policy {key!r} already registered")
        self._policies[key] = policy
        return policy

    def policy(self, name: str) -> AttributeLCP:
        try:
            return self._policies[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown life cycle policy {name!r}") from None

    def has_policy(self, name: str) -> bool:
        return name.lower() in self._policies

    def policies(self) -> Dict[str, AttributeLCP]:
        return dict(self._policies)


@dataclass
class TablePolicy:
    """Degradation policy of one table: one LCP per degradable column.

    ``remove_on_final`` implements the end of the paper's life cycle: when the
    tuple reaches its final tuple state the record is physically removed from
    the data store (and its index entries and log traces scrubbed).

    ``per_tuple_policies`` optionally selects an alternative set of attribute
    LCPs for a given tuple (keyed on a selector column, e.g. a user id whose
    owner registered a stricter policy).  This is the future-work extension
    evaluated by the A1 ablation benchmark.
    """

    table: str
    column_policies: Dict[str, AttributeLCP] = field(default_factory=dict)
    remove_on_final: bool = True
    selector_column: Optional[str] = None
    per_tuple_policies: Dict[Any, Dict[str, AttributeLCP]] = field(default_factory=dict)

    def add_column(self, column: str, policy: AttributeLCP) -> None:
        self.column_policies[column.lower()] = policy

    def has_degradable_columns(self) -> bool:
        return bool(self.column_policies)

    def degradable_columns(self) -> Tuple[str, ...]:
        return tuple(self.column_policies)

    def policy_for(self, column: str, selector_value: Any = None) -> AttributeLCP:
        column = column.lower()
        if selector_value is not None and selector_value in self.per_tuple_policies:
            override = self.per_tuple_policies[selector_value]
            if column in override:
                return override[column]
        try:
            return self.column_policies[column]
        except KeyError:
            raise PolicyError(
                f"table {self.table!r}: column {column!r} is not degradable"
            ) from None

    def register_override(self, selector_value: Any,
                          policies: Mapping[str, AttributeLCP]) -> None:
        """Register a per-tuple policy override (paranoid-user extension)."""
        if self.selector_column is None:
            raise PolicyError(
                f"table {self.table!r}: set selector_column before registering "
                "per-tuple policy overrides"
            )
        self.per_tuple_policies[selector_value] = {
            column.lower(): policy for column, policy in policies.items()
        }

    def tuple_lcp(self, selector_value: Any = None) -> TupleLCP:
        """Tuple LCP applying to a tuple (honouring per-tuple overrides)."""
        policies = {
            column: self.policy_for(column, selector_value)
            for column in self.column_policies
        }
        return TupleLCP(policies)

    def scheme_for(self, column: str) -> GeneralizationScheme:
        return self.policy_for(column).scheme

    def describe(self) -> str:
        lines = [f"table {self.table!r} degradation policy "
                 f"(remove_on_final={self.remove_on_final}):"]
        for column, policy in self.column_policies.items():
            lines.append(f"  {column}: {policy.describe()}")
        if self.per_tuple_policies:
            lines.append(
                f"  per-tuple overrides on {self.selector_column!r}: "
                f"{len(self.per_tuple_policies)}"
            )
        return "\n".join(lines)


#: Signature of functions evaluating predicate-conditioned transitions
#: (future-work extension): given the tuple's visible values, return True when
#: the transition may fire.
TransitionGuard = Callable[[Mapping[str, Any]], bool]


__all__ = [
    "AccuracyRequirement",
    "Purpose",
    "PolicyRegistry",
    "TablePolicy",
    "TransitionGuard",
]
