"""Exception hierarchy for the InstantDB reproduction.

Every error raised by the library derives from :class:`InstantDBError` so that
callers can catch library failures with a single ``except`` clause while still
being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class InstantDBError(Exception):
    """Base class of every exception raised by the library."""


class ConfigurationError(InstantDBError):
    """A component was configured inconsistently (bad policy, bad schema...)."""


class GeneralizationError(InstantDBError):
    """A generalization tree is malformed or a value cannot be generalized."""


class UnknownValueError(GeneralizationError):
    """A value does not belong to the domain covered by a generalization tree."""


class PolicyError(InstantDBError):
    """A life cycle policy is malformed or violated."""


class IrreversibilityError(PolicyError):
    """An operation attempted to move data towards a *more* accurate state."""


class SchemaError(InstantDBError):
    """Table or domain schema violation."""


class CatalogError(InstantDBError):
    """Unknown table, column, domain, policy or purpose."""


class StorageError(InstantDBError):
    """Low level storage failure (page, heap file, buffer pool...)."""


class PageFullError(StorageError):
    """A record does not fit in the target page."""


class RecordNotFoundError(StorageError):
    """A record id does not resolve to a live record."""


class WALError(StorageError):
    """Write-ahead log corruption or protocol violation."""


class CryptoError(StorageError):
    """Key-store failure; typically a key was already destroyed."""


class KeyDestroyedError(CryptoError):
    """Data was requested whose encryption key has been destroyed (degraded)."""


class IndexError_(InstantDBError):
    """Index structure violation (named with a trailing underscore to avoid
    shadowing the builtin :class:`IndexError`)."""


class TransactionError(InstantDBError):
    """Transaction protocol violation."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (deadlock victim, explicit rollback...)."""


class DeadlockError(TransactionAborted):
    """The transaction was chosen as a deadlock victim."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the configured timeout."""


class QueryError(InstantDBError):
    """SQL front-end failure."""


class ParseError(QueryError):
    """The SQL text could not be parsed."""


class BindingError(QueryError):
    """Name resolution / accuracy-level binding failure."""


class ExecutionError(QueryError):
    """Runtime failure while executing a query plan."""


class AccuracyError(QueryError):
    """A query demanded an accuracy level that is not computable."""


class DegradationError(InstantDBError):
    """The degradation engine failed to apply a scheduled step."""


class RecoveryError(InstantDBError):
    """Crash recovery failed or would resurrect degraded data."""
