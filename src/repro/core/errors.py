"""Exception hierarchy for the InstantDB reproduction.

Two hierarchies are woven together here:

* the **DB-API 2.0 (PEP 249)** classes — :class:`Warning`, :class:`Error`,
  :class:`InterfaceError`, :class:`DatabaseError` and its five standard
  subclasses — which driver-level callers (``repro.connect()`` /
  :class:`~repro.api.Connection`) are expected to catch;
* the library's **subsystem hierarchy** rooted at :class:`InstantDBError`,
  which discriminates *which* component failed (storage, policy, query
  front-end, transactions...).

Every subsystem error multiply inherits from both roots, so legacy callers
catching :class:`InstantDBError` (or a specific subsystem error) keep working
while PEP 249 clients can uniformly write ``except repro.DatabaseError``.
For example :class:`ParseError` is both a :class:`QueryError` and a
:class:`ProgrammingError`, and :class:`DeadlockError` is both a
:class:`TransactionError` and an :class:`OperationalError`.
"""

from __future__ import annotations


# ---------------------------------------------------------------- PEP 249 roots


class Warning(Exception):  # noqa: A001 - name mandated by PEP 249
    """Important warnings (data truncated on insert, ...) — PEP 249."""


class Error(Exception):
    """Base class of all PEP 249 error exceptions."""


class InterfaceError(Error):
    """Error related to the database *interface* rather than the database
    itself (operation on a closed cursor, unbindable parameter value, ...)."""


class DatabaseError(Error):
    """Error related to the database itself."""


class DataError(DatabaseError):
    """Problem with the processed data (value out of domain, bad cast, ...)."""


class OperationalError(DatabaseError):
    """Error related to the database's operation, not necessarily under the
    programmer's control (lost storage, lock timeout, crash recovery, ...)."""


class IntegrityError(DatabaseError):
    """The relational integrity of the database is affected (constraint or
    life-cycle-policy violation)."""


class InternalError(DatabaseError):
    """The database encountered an internal error (corrupt page, invalid
    degradation state, ...)."""


class ProgrammingError(DatabaseError):
    """Programming error: table not found, SQL syntax error, wrong number of
    parameters, ..."""


class NotSupportedError(DatabaseError):
    """A method or API was used which is not supported by the engine."""


# ------------------------------------------------------------ subsystem errors


class InstantDBError(Error):
    """Base class of every exception raised by the library."""


class ConfigurationError(InstantDBError, ProgrammingError):
    """A component was configured inconsistently (bad policy, bad schema...)."""


class GeneralizationError(InstantDBError, DataError):
    """A generalization tree is malformed or a value cannot be generalized."""


class UnknownValueError(GeneralizationError):
    """A value does not belong to the domain covered by a generalization tree."""


class PolicyError(InstantDBError, IntegrityError):
    """A life cycle policy is malformed or violated."""


class IrreversibilityError(PolicyError):
    """An operation attempted to move data towards a *more* accurate state."""


class SchemaError(InstantDBError, ProgrammingError):
    """Table or domain schema violation."""


class CatalogError(InstantDBError, ProgrammingError):
    """Unknown table, column, domain, policy or purpose."""


class StorageError(InstantDBError, OperationalError):
    """Low level storage failure (page, heap file, buffer pool...)."""


class PageFullError(StorageError):
    """A record does not fit in the target page."""


class RecordNotFoundError(StorageError):
    """A record id does not resolve to a live record."""


class WALError(StorageError):
    """Write-ahead log corruption or protocol violation."""


class CryptoError(StorageError):
    """Key-store failure; typically a key was already destroyed."""


class KeyDestroyedError(CryptoError):
    """Data was requested whose encryption key has been destroyed (degraded)."""


class IndexError_(InstantDBError, InternalError):
    """Index structure violation (named with a trailing underscore to avoid
    shadowing the builtin :class:`IndexError`)."""


class TransactionError(InstantDBError, OperationalError):
    """Transaction protocol violation."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (deadlock victim, explicit rollback...)."""


class DeadlockError(TransactionAborted):
    """The transaction was chosen as a deadlock victim."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the configured timeout."""


class QueryError(InstantDBError, ProgrammingError):
    """SQL front-end failure."""


class ParseError(QueryError):
    """The SQL text could not be parsed."""


class BindingError(QueryError):
    """Name resolution / accuracy-level binding failure."""


class ParameterError(InstantDBError, InterfaceError, ProgrammingError):
    """Statement parameters do not match the statement's placeholders
    (wrong count, unsupported Python type, unbound placeholder).

    PEP 249 files wrong-parameter-count under :class:`ProgrammingError` while
    drivers conventionally raise :class:`InterfaceError` for unbindable value
    types, so this error is catchable as either (and hence also as
    :class:`DatabaseError`)."""


class ExecutionError(QueryError):
    """Runtime failure while executing a query plan."""


class AccuracyError(QueryError):
    """A query demanded an accuracy level that is not computable."""


class DegradationError(InstantDBError, OperationalError):
    """The degradation engine failed to apply a scheduled step."""


class RecoveryError(InstantDBError, OperationalError):
    """Crash recovery failed or would resurrect degraded data."""


class DurabilityError(StorageError):
    """A durability-critical I/O operation failed (fsync error, torn write,
    ENOSPC on a WAL append or pager sync).

    The in-flight transaction is aborted cleanly and the engine flips into a
    read-only degraded mode (see :class:`ReadOnlyModeError`); reads keep
    working, but nothing further is promised durable until the database is
    reopened and recovered.  The on-disk WAL prefix up to the last successful
    flush stays valid — recovery never replays past it."""


class ReadOnlyModeError(DurabilityError):
    """A write was attempted while the engine is in read-only degraded mode
    (entered after a :class:`DurabilityError`; cleared by reopen + recover)."""


class RetryableError(InstantDBError, OperationalError):
    """Transient server-side condition; the *same* request may succeed if
    retried after a backoff.  The remote driver retries these automatically
    at transaction boundaries."""

    #: Drivers inspect this instead of the class so the flag survives the
    #: wire protocol's by-name exception mapping.
    retryable = True


class OverloadError(RetryableError):
    """The server shed the request at admission (session table full or queue
    saturated).  Retry after a backoff."""


class StatementTimeoutError(RetryableError):
    """A statement exceeded the server's per-statement timeout budget.  The
    session is closed (the engine thread cannot be interrupted mid-statement);
    reconnect and retry."""


class ConnectionPoisonedError(InterfaceError):
    """The remote connection consumed part of a frame and can no longer
    delimit the byte stream (mid-frame timeout or short read).  Every
    subsequent call on the connection raises this; reconnect to continue."""


#: The PEP 249 names re-exported by :mod:`repro` and :mod:`repro.api`.
PEP249_EXCEPTIONS = (
    "Warning", "Error", "InterfaceError", "DatabaseError", "DataError",
    "OperationalError", "IntegrityError", "InternalError", "ProgrammingError",
    "NotSupportedError",
)
