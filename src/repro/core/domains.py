"""Ready-made attribute domains used across examples, tests and benchmarks.

The paper motivates degradation with location traces (cell phones), salaries,
web-search queries and medical events.  This module builds the corresponding
generalization schemes once so that every example and benchmark degrades the
same way.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .generalization import (
    GeneralizationScheme,
    GeneralizationTree,
    NumericRangeGeneralization,
    TimestampGeneralization,
)

# ---------------------------------------------------------------------------
# Location domain (Fig. 1 of the paper): address → city → region → country.
# ---------------------------------------------------------------------------

#: (city, region, country) triples; street addresses are generated per city.
_CITIES: Tuple[Tuple[str, str, str], ...] = (
    ("Paris", "Ile-de-France", "France"),
    ("Versailles", "Ile-de-France", "France"),
    ("Lyon", "Auvergne-Rhone-Alpes", "France"),
    ("Grenoble", "Auvergne-Rhone-Alpes", "France"),
    ("Marseille", "Provence-Alpes-Cote d'Azur", "France"),
    ("Nice", "Provence-Alpes-Cote d'Azur", "France"),
    ("Lille", "Hauts-de-France", "France"),
    ("Bordeaux", "Nouvelle-Aquitaine", "France"),
    ("Toulouse", "Occitanie", "France"),
    ("Nantes", "Pays de la Loire", "France"),
    ("Amsterdam", "North Holland", "Netherlands"),
    ("Haarlem", "North Holland", "Netherlands"),
    ("Enschede", "Overijssel", "Netherlands"),
    ("Zwolle", "Overijssel", "Netherlands"),
    ("Rotterdam", "South Holland", "Netherlands"),
    ("The Hague", "South Holland", "Netherlands"),
    ("Utrecht", "Utrecht", "Netherlands"),
    ("Eindhoven", "North Brabant", "Netherlands"),
    ("Brussels", "Brussels-Capital", "Belgium"),
    ("Antwerp", "Flanders", "Belgium"),
    ("Ghent", "Flanders", "Belgium"),
    ("Liege", "Wallonia", "Belgium"),
    ("Berlin", "Berlin", "Germany"),
    ("Munich", "Bavaria", "Germany"),
    ("Nuremberg", "Bavaria", "Germany"),
    ("Hamburg", "Hamburg", "Germany"),
    ("Cologne", "North Rhine-Westphalia", "Germany"),
    ("Dusseldorf", "North Rhine-Westphalia", "Germany"),
    ("Madrid", "Community of Madrid", "Spain"),
    ("Barcelona", "Catalonia", "Spain"),
    ("Girona", "Catalonia", "Spain"),
    ("Seville", "Andalusia", "Spain"),
    ("Milan", "Lombardy", "Italy"),
    ("Bergamo", "Lombardy", "Italy"),
    ("Rome", "Lazio", "Italy"),
    ("Turin", "Piedmont", "Italy"),
)

#: Streets used to mint level-0 addresses for every city.
_STREETS: Tuple[str, ...] = (
    "1 Main Street",
    "2 Station Road",
    "3 Church Lane",
    "4 Market Square",
    "5 River Walk",
    "6 Castle Hill",
    "7 University Avenue",
    "8 Harbour View",
)

LOCATION_LEVEL_NAMES: Tuple[str, ...] = ("address", "city", "region", "country", "suppressed")


def addresses_for_city(city: str) -> List[str]:
    """The synthetic level-0 addresses attached to ``city``."""
    return [f"{street}, {city}" for street in _STREETS]


def build_location_tree(cities: Sequence[Tuple[str, str, str]] = _CITIES) -> GeneralizationTree:
    """Build the Fig. 1 location GT: address → city → region → country → ∅."""
    paths = []
    for city, region, country in cities:
        for address in addresses_for_city(city):
            paths.append((address, city, region, country))
    return GeneralizationTree.from_paths(
        "location", paths, level_names=list(LOCATION_LEVEL_NAMES)
    )


# ---------------------------------------------------------------------------
# Salary domain: exact → 100-range → 1000-range → 10000-range → suppressed.
# ---------------------------------------------------------------------------

SALARY_LEVEL_NAMES: Tuple[str, ...] = (
    "exact", "range100", "range1000", "range10000", "suppressed"
)


def build_salary_ranges() -> NumericRangeGeneralization:
    """Salary degraded into progressively wider ranges (paper's RANGE1000)."""
    return NumericRangeGeneralization(
        "salary", widths=[100, 1000, 10000], level_names=list(SALARY_LEVEL_NAMES)
    )


# ---------------------------------------------------------------------------
# Web search domain (AOL-style logs mentioned in the paper's introduction):
# query string → topic → category → suppressed.
# ---------------------------------------------------------------------------

_WEB_TOPICS: Dict[str, Dict[str, List[str]]] = {
    "Health": {
        "symptoms": ["persistent cough remedy", "migraine triggers", "back pain stretches"],
        "conditions": ["diabetes diet plan", "hypertension medication", "asthma inhaler types"],
        "providers": ["cardiologist near me", "dermatologist reviews", "pediatrician opening hours"],
    },
    "Finance": {
        "banking": ["open savings account", "compare credit cards", "mortgage rates today"],
        "investing": ["index fund basics", "dividend stocks list", "retirement portfolio mix"],
        "taxes": ["income tax brackets", "deduct home office", "capital gains calculator"],
    },
    "Travel": {
        "flights": ["cheap flights to rome", "baggage allowance economy", "red eye flight tips"],
        "hotels": ["boutique hotel paris", "hostel amsterdam centre", "late checkout policy"],
        "destinations": ["things to do in lyon", "best beaches spain", "alps hiking routes"],
    },
    "Shopping": {
        "electronics": ["noise cancelling headphones", "mirrorless camera deals", "laptop for students"],
        "clothing": ["running shoes sale", "winter coat warm", "linen shirt summer"],
        "groceries": ["organic vegetables delivery", "sourdough starter kit", "fair trade coffee beans"],
    },
}

WEBSEARCH_LEVEL_NAMES: Tuple[str, ...] = ("query", "topic", "category", "suppressed")


def build_websearch_tree() -> GeneralizationTree:
    """Web search queries degraded to topics then categories."""
    paths = []
    for category, topics in _WEB_TOPICS.items():
        for topic, queries in topics.items():
            for query in queries:
                paths.append((query, topic, category))
    return GeneralizationTree.from_paths(
        "websearch", paths, level_names=list(WEBSEARCH_LEVEL_NAMES)
    )


# ---------------------------------------------------------------------------
# Medical diagnosis domain: diagnosis → disease group → specialty → suppressed.
# ---------------------------------------------------------------------------

_DIAGNOSES: Tuple[Tuple[str, str, str], ...] = (
    ("type 2 diabetes", "metabolic disorders", "endocrinology"),
    ("type 1 diabetes", "metabolic disorders", "endocrinology"),
    ("hyperthyroidism", "thyroid disorders", "endocrinology"),
    ("hypothyroidism", "thyroid disorders", "endocrinology"),
    ("asthma", "obstructive airway disease", "pulmonology"),
    ("copd", "obstructive airway disease", "pulmonology"),
    ("pneumonia", "respiratory infection", "pulmonology"),
    ("bronchitis", "respiratory infection", "pulmonology"),
    ("hypertension", "vascular disease", "cardiology"),
    ("atrial fibrillation", "arrhythmia", "cardiology"),
    ("heart failure", "vascular disease", "cardiology"),
    ("angina", "ischemic heart disease", "cardiology"),
    ("migraine", "headache disorders", "neurology"),
    ("epilepsy", "seizure disorders", "neurology"),
    ("multiple sclerosis", "demyelinating disease", "neurology"),
    ("anxiety disorder", "mood and anxiety", "psychiatry"),
    ("depression", "mood and anxiety", "psychiatry"),
    ("eczema", "inflammatory skin disease", "dermatology"),
    ("psoriasis", "inflammatory skin disease", "dermatology"),
    ("melanoma", "skin cancer", "dermatology"),
)

DIAGNOSIS_LEVEL_NAMES: Tuple[str, ...] = ("diagnosis", "disease_group", "specialty", "suppressed")


def build_diagnosis_tree() -> GeneralizationTree:
    """Hospital diagnosis GT used by the medical example workload."""
    return GeneralizationTree.from_paths(
        "diagnosis", list(_DIAGNOSES), level_names=list(DIAGNOSIS_LEVEL_NAMES)
    )


def build_timestamp_scheme() -> TimestampGeneralization:
    """Event timestamps degraded minute → hour → day → month."""
    return TimestampGeneralization("event_time")


def standard_domains() -> Dict[str, GeneralizationScheme]:
    """All ready-made domains keyed by name, as registered by quickstart code."""
    return {
        "location": build_location_tree(),
        "salary": build_salary_ranges(),
        "websearch": build_websearch_tree(),
        "diagnosis": build_diagnosis_tree(),
        "event_time": build_timestamp_scheme(),
    }


__all__ = [
    "LOCATION_LEVEL_NAMES",
    "SALARY_LEVEL_NAMES",
    "WEBSEARCH_LEVEL_NAMES",
    "DIAGNOSIS_LEVEL_NAMES",
    "addresses_for_city",
    "build_location_tree",
    "build_salary_ranges",
    "build_websearch_tree",
    "build_diagnosis_tree",
    "build_timestamp_scheme",
    "standard_domains",
]
