"""Traditional (no-degradation) baseline store.

The comparator the paper argues against implicitly: a conventional DBMS that
keeps collected data accurate until somebody explicitly deletes it.  It shares
the row format of the degradation-aware engine so the privacy metrics and the
usability benchmarks can run the same workloads against both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass
class BaselineRow:
    """One stored row with its insertion time."""

    row_key: int
    values: Dict[str, Any]
    inserted_at: float


class TraditionalStore:
    """Keeps every inserted row accurate forever (until explicit delete)."""

    name = "traditional"

    def __init__(self) -> None:
        self._rows: Dict[int, BaselineRow] = {}
        self._next_key = 1
        self.total_inserted = 0

    def insert(self, values: Dict[str, Any], now: float) -> int:
        row_key = self._next_key
        self._next_key += 1
        self._rows[row_key] = BaselineRow(row_key=row_key, values=dict(values),
                                          inserted_at=now)
        self.total_inserted += 1
        return row_key

    def delete(self, row_key: int) -> bool:
        return self._rows.pop(row_key, None) is not None

    def tick(self, now: float) -> int:
        """Advance time; a traditional store never expires anything."""
        return 0

    def rows(self, now: Optional[float] = None) -> List[BaselineRow]:
        return list(self._rows.values())

    def visible_values(self, column: str, now: Optional[float] = None) -> List[Any]:
        return [row.values[column] for row in self._rows.values() if column in row.values]

    def accurate_rows(self, now: Optional[float] = None) -> List[BaselineRow]:
        """Rows whose sensitive attributes are still accurate (all of them here)."""
        return self.rows(now)

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def select(self, predicate: Callable[[Dict[str, Any]], bool],
               now: Optional[float] = None) -> List[BaselineRow]:
        return [row for row in self.rows(now) if predicate(row.values)]


__all__ = ["TraditionalStore", "BaselineRow"]
