"""k-anonymity baseline.

The paper contrasts data degradation with anonymization: anonymization removes
the link to the donor's identity (and degrades quasi-identifiers until groups
of at least *k* records become indistinguishable), whereas degradation keeps
the identity intact but makes the *event* attributes progressively coarser.

This module implements a global-recoding k-anonymizer over the same
generalization schemes used by the degradation engine: every quasi-identifier
column is generalized uniformly, one level at a time (choosing the column that
currently has the most distinct values), until every equivalence class reaches
size ``k`` or every column is fully suppressed.  It is intentionally simple —
optimal k-anonymity is NP-hard [Meyerson & Williams, PODS'04], which the paper
cites as one argument for degradation — but it exercises the comparison the
B3 usability benchmark needs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.generalization import GeneralizationScheme
from ..core.values import SUPPRESSED


@dataclass
class AnonymizationResult:
    """Outcome of a k-anonymization pass."""

    rows: List[Dict[str, Any]]
    levels: Dict[str, int]
    k: int
    satisfied: bool
    equivalence_classes: int
    smallest_class: int
    suppressed_identifiers: bool = True

    def level_of(self, column: str) -> int:
        return self.levels[column]


class KAnonymizer:
    """Global-recoding k-anonymizer over generalization schemes."""

    def __init__(self, schemes: Mapping[str, GeneralizationScheme],
                 identifier_columns: Sequence[str] = ()) -> None:
        if not schemes:
            raise ConfigurationError("at least one quasi-identifier scheme is required")
        self.schemes = {column.lower(): scheme for column, scheme in schemes.items()}
        self.identifier_columns = tuple(column.lower() for column in identifier_columns)

    # -- helpers -----------------------------------------------------------------

    def _generalize_rows(self, rows: Sequence[Mapping[str, Any]],
                         levels: Mapping[str, int]) -> List[Dict[str, Any]]:
        result = []
        for row in rows:
            generalized = dict(row)
            for column in self.identifier_columns:
                if column in generalized:
                    generalized[column] = SUPPRESSED
            for column, scheme in self.schemes.items():
                if column not in generalized:
                    continue
                value = generalized[column]
                if value is SUPPRESSED:
                    continue
                generalized[column] = scheme.generalize(value, levels[column], from_level=0)
            result.append(generalized)
        return result

    def _class_sizes(self, rows: Sequence[Mapping[str, Any]]) -> Counter:
        keys = []
        for row in rows:
            keys.append(tuple(
                (column, _key(row.get(column))) for column in sorted(self.schemes)
            ))
        return Counter(keys)

    # -- main entry point ------------------------------------------------------------

    def anonymize(self, rows: Sequence[Mapping[str, Any]], k: int) -> AnonymizationResult:
        """Generalize ``rows`` until every equivalence class has at least ``k`` members."""
        if k < 1:
            raise ConfigurationError("k must be at least 1")
        levels = {column: 0 for column in self.schemes}
        rows = list(rows)
        if not rows:
            return AnonymizationResult(rows=[], levels=levels, k=k, satisfied=True,
                                       equivalence_classes=0, smallest_class=0)
        while True:
            generalized = self._generalize_rows(rows, levels)
            sizes = self._class_sizes(generalized)
            smallest = min(sizes.values())
            if smallest >= k:
                return AnonymizationResult(
                    rows=generalized, levels=dict(levels), k=k, satisfied=True,
                    equivalence_classes=len(sizes), smallest_class=smallest,
                )
            candidate = self._next_column_to_generalize(generalized, levels)
            if candidate is None:
                return AnonymizationResult(
                    rows=generalized, levels=dict(levels), k=k, satisfied=False,
                    equivalence_classes=len(sizes), smallest_class=smallest,
                )
            levels[candidate] += 1

    def _next_column_to_generalize(self, rows: Sequence[Mapping[str, Any]],
                                   levels: Mapping[str, int]) -> Any:
        """Pick the non-exhausted column with the most distinct values."""
        best_column = None
        best_distinct = -1
        for column, scheme in self.schemes.items():
            if levels[column] >= scheme.max_level:
                continue
            distinct = len({_key(row.get(column)) for row in rows})
            if distinct > best_distinct:
                best_column = column
                best_distinct = distinct
        return best_column

    # -- utility metrics ----------------------------------------------------------------

    def information_loss(self, levels: Mapping[str, int]) -> float:
        """Average normalized generalization height (0 = accurate, 1 = suppressed)."""
        if not levels:
            return 0.0
        total = 0.0
        for column, level in levels.items():
            scheme = self.schemes[column]
            total += level / scheme.max_level
        return total / len(levels)


def _key(value: Any) -> Any:
    if isinstance(value, str):
        return value.lower()
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


__all__ = ["KAnonymizer", "AnonymizationResult"]
