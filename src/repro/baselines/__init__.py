"""Baseline comparators: traditional storage, limited retention, k-anonymity."""

from .anonymization import AnonymizationResult, KAnonymizer
from .retention import LimitedRetentionStore
from .traditional import BaselineRow, TraditionalStore

__all__ = [
    "TraditionalStore", "BaselineRow",
    "LimitedRetentionStore",
    "KAnonymizer", "AnonymizationResult",
]
