"""Limited-retention baseline (all-or-nothing TTL).

The paper's main point of comparison: attach a retention limit to every tuple;
before the limit the tuple is fully accurate, after the limit it is withdrawn
entirely.  The store below implements exactly that, on the same row format as
:class:`~repro.baselines.traditional.TraditionalStore`, and exposes the same
inspection hooks used by the exposure and usability benchmarks (B1, B3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..core.errors import ConfigurationError
from .traditional import BaselineRow, TraditionalStore


class LimitedRetentionStore(TraditionalStore):
    """Keeps rows accurate for ``retention_limit`` seconds, then deletes them."""

    name = "limited_retention"

    def __init__(self, retention_limit: float) -> None:
        super().__init__()
        if retention_limit <= 0:
            raise ConfigurationError("retention limit must be positive")
        self.retention_limit = float(retention_limit)
        self.expired_count = 0

    def tick(self, now: float) -> int:
        """Withdraw every row older than the retention limit.  Returns the count."""
        victims = [
            row_key for row_key, row in self._rows.items()
            if now - row.inserted_at >= self.retention_limit
        ]
        for row_key in victims:
            del self._rows[row_key]
        self.expired_count += len(victims)
        return len(victims)

    def rows(self, now: Optional[float] = None) -> List[BaselineRow]:
        if now is not None:
            self.tick(now)
        return super().rows(now)

    def accurate_rows(self, now: Optional[float] = None) -> List[BaselineRow]:
        """Every surviving row is fully accurate (all-or-nothing retention)."""
        return self.rows(now)

    def accurate_lifetime(self) -> float:
        """Time a tuple spends fully accurate — the whole retention window."""
        return self.retention_limit


__all__ = ["LimitedRetentionStore"]
