"""InstantDB reproduction: a data-degradation-aware DBMS.

Reproduction of *InstantDB: Enforcing Timely Degradation of Sensitive Data*
(Anciaux, Bouganim, van Heerde, Pucheral, Apers — ICDE 2008).

The public API is re-exported here; see :class:`repro.engine.InstantDB` for the
engine facade and ``DESIGN.md`` for the full system inventory.
"""

from .core import (
    DAY,
    HOUR,
    MINUTE,
    MONTH,
    NULL,
    SECOND,
    SUPPRESSED,
    WEEK,
    YEAR,
    AttributeLCP,
    Column,
    GeneralizationScheme,
    GeneralizationTree,
    InstantDBError,
    NumericRangeGeneralization,
    Purpose,
    SimulatedClock,
    TableSchema,
    TimestampGeneralization,
    Transition,
    TupleLCP,
    ValueType,
    duration,
)
from .engine import InstantDB
from .query.executor import QueryResult

__version__ = "1.0.0"

__all__ = [
    "InstantDB",
    "QueryResult",
    "GeneralizationScheme",
    "GeneralizationTree",
    "NumericRangeGeneralization",
    "TimestampGeneralization",
    "AttributeLCP",
    "TupleLCP",
    "Transition",
    "Purpose",
    "Column",
    "TableSchema",
    "ValueType",
    "SimulatedClock",
    "InstantDBError",
    "SUPPRESSED",
    "NULL",
    "duration",
    "SECOND", "MINUTE", "HOUR", "DAY", "WEEK", "MONTH", "YEAR",
    "__version__",
]
