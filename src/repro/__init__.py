"""InstantDB reproduction: a data-degradation-aware DBMS.

Reproduction of *InstantDB: Enforcing Timely Degradation of Sensitive Data*
(Anciaux, Bouganim, van Heerde, Pucheral, Apers — ICDE 2008).

Quickstart (the PEP 249 / DB-API 2.0 surface)
---------------------------------------------
The recommended entry point is :func:`repro.connect`, which returns a
context-managed :class:`~repro.api.Connection` with cursors, qmark (``?``)
parameter binding, prepared statements and batched ``executemany``:

>>> import repro
>>> with repro.connect() as conn:
...     cur = conn.cursor()
...     _ = cur.execute("CREATE TABLE person (id INT PRIMARY KEY, name TEXT)")
...     _ = cur.executemany("INSERT INTO person VALUES (?, ?)",
...                         [(1, 'alice'), (2, 'bob')])
...     conn.commit()
...     cur.execute("SELECT name FROM person WHERE id = ?", (1,)).fetchall()
[('alice',)]

Degradation-specific features (generalization domains, life cycle policies,
purposes) are configured on the engine and scoped per connection:

>>> from repro.core.domains import build_location_tree
>>> db = repro.InstantDB()
>>> _ = db.register_domain(build_location_tree())
>>> _ = db.register_policy(domain="location",
...                        transitions=["1 h", "1 day", "1 month", "3 months"])
>>> conn = repro.connect(engine=db)      # wraps, does not own, the engine
>>> cur = conn.cursor()
>>> _ = cur.execute("CREATE TABLE trace (id INT PRIMARY KEY, location TEXT "
...                 "DEGRADABLE DOMAIN location POLICY location_lcp)")
>>> _ = cur.execute("INSERT INTO trace VALUES (?, ?)",
...                 (1, '1 Main Street, Paris'))
>>> conn.commit()
>>> _ = cur.execute("DECLARE PURPOSE stats SET ACCURACY LEVEL city "
...                 "FOR trace.location")
>>> _ = db.advance_time(hours=2)         # the address degrades to city level
>>> conn.set_purpose("stats")
>>> cur.execute("SELECT location FROM trace", ).fetchall()
[('Paris',)]

Compatibility shim
------------------
The original single-call facade — ``InstantDB.execute(sql)`` returning a
:class:`~repro.query.executor.QueryResult` / rowcount — is kept as a thin
shim over the same prepared-statement path and now also accepts ``params=``.
It is intended for scripts and the benchmark harness; new code should prefer
``connect()``, and the facade may be deprecated once the driver API has
settled.

The PEP 249 module globals (``apilevel``, ``threadsafety``, ``paramstyle``)
and exception hierarchy (:class:`Error`, :class:`InterfaceError`,
:class:`DatabaseError`, :class:`OperationalError`, :class:`IntegrityError`,
...) are re-exported here; see ``DESIGN.md`` for the full system inventory.
"""

from .api import (
    Connection,
    Cursor,
    DatabaseError,
    DataError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    Warning,
    apilevel,
    connect,
    paramstyle,
    threadsafety,
)
from .core.errors import (
    ConnectionPoisonedError,
    DurabilityError,
    OverloadError,
    ReadOnlyModeError,
    RetryableError,
    StatementTimeoutError,
)
from .core import (
    DAY,
    HOUR,
    MINUTE,
    MONTH,
    NULL,
    SECOND,
    SUPPRESSED,
    WEEK,
    YEAR,
    AttributeLCP,
    Column,
    GeneralizationScheme,
    GeneralizationTree,
    InstantDBError,
    NumericRangeGeneralization,
    Purpose,
    SimulatedClock,
    TableSchema,
    TimestampGeneralization,
    Transition,
    TupleLCP,
    ValueType,
    duration,
)
from .engine import InstantDB
from .faults import FaultPlan
from .query.executor import QueryResult

__version__ = "1.1.0"

__all__ = [
    # PEP 249 driver surface
    "connect",
    "Connection",
    "Cursor",
    "apilevel",
    "threadsafety",
    "paramstyle",
    "Warning",
    "Error",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
    # engine facade and core model
    "InstantDB",
    "QueryResult",
    "GeneralizationScheme",
    "GeneralizationTree",
    "NumericRangeGeneralization",
    "TimestampGeneralization",
    "AttributeLCP",
    "TupleLCP",
    "Transition",
    "Purpose",
    "Column",
    "TableSchema",
    "ValueType",
    "SimulatedClock",
    "InstantDBError",
    # fault injection and hardening (docs/faults.md)
    "FaultPlan",
    "DurabilityError",
    "ReadOnlyModeError",
    "RetryableError",
    "OverloadError",
    "StatementTimeoutError",
    "ConnectionPoisonedError",
    "SUPPRESSED",
    "NULL",
    "duration",
    "SECOND", "MINUTE", "HOUR", "DAY", "WEEK", "MONTH", "YEAR",
    "__version__",
]
