"""Engine variants the scenario suite runs (and differences) against.

One scenario op stream replays against four engines that must be
behaviourally identical:

* ``interpreted`` — ``InstantDB(read_path_optimizations=False)``: the
  tree-walking reference read path, the ground truth.
* ``compiled`` — the default engine: compiled predicates, column pruning,
  cost-based plans, index-only scans.
* ``columnar`` — compiled engine with every scenario table columnarized:
  vectorized scans, zone-map pruning, segment-wise degradation waves.
* ``remote`` — a compiled engine behind the asyncio wire server, driven
  through the remote PEP 249 driver: sentinels must round-trip the socket
  by identity.

Every variant exposes the same tiny surface (``execute`` / ``commit`` /
``advance`` / ``engine_call`` / ``close``), so the driver and the
differential oracle never branch on transport.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..api.connection import connect as local_connect
from ..client import connect as remote_connect
from ..engine.database import InstantDB
from ..faults import FaultPlan
from ..server import ServerThread
from .inclusion import InclusionScenario

#: Canonical variant order (the first one is the reference engine).
VARIANT_NAMES: Tuple[str, ...] = ("interpreted", "compiled", "columnar", "remote")


class ScenarioVariant:
    """One engine variant wired with the scenario schema, behind PEP 249."""

    def __init__(self, name: str, scenario: InclusionScenario,
                 data_dir: Optional[str] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 server_kwargs: Optional[Dict[str, Any]] = None,
                 connect_kwargs: Optional[Dict[str, Any]] = None) -> None:
        if name not in VARIANT_NAMES:
            raise ValueError(f"unknown variant {name!r} "
                             f"(expected one of {VARIANT_NAMES})")
        self.name = name
        self.scenario = scenario
        self.fault_plan = fault_plan
        self._connect_kwargs = dict(connect_kwargs or {})
        self.engine = InstantDB(
            data_dir=data_dir,
            read_path_optimizations=(name != "interpreted"),
            fault_plan=fault_plan,
        )
        scenario.install(self.engine)
        if name == "columnar":
            scenario.columnarize(self.engine)
        self.server: Optional[ServerThread] = None
        if name == "remote":
            self.server = ServerThread(self.engine,
                                       **(server_kwargs or {})).start()
            host, port = self.server.address
            self.connection = remote_connect(host, port,
                                             **self._connect_kwargs)
        else:
            self.connection = local_connect(engine=self.engine)
        self._closed = False

    # -- uniform driver surface ----------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = (), *,
                purpose: Optional[str] = None) -> Any:
        """Execute one statement; returns the (fetched) cursor."""
        return self.connection.execute(sql, params, purpose=purpose)

    def commit(self) -> None:
        self.connection.commit()

    def rollback(self) -> None:
        self.connection.rollback()

    def advance(self, seconds: float) -> float:
        """Advance the simulated clock (degradation waves fire inline)."""
        if self.server is not None:
            return self.server.submit(
                functools.partial(self.engine.advance_time, seconds))
        return self.engine.advance_time(seconds)

    def engine_call(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(engine, *args)`` on the engine's executor thread.

        While an engine is being served it is pinned to the server's
        executor (enforced under ``REPRO_DEBUG_INVARIANTS=1``); unserved
        engines run the callable inline.
        """
        if self.server is not None:
            return self.server.submit(functools.partial(fn, self.engine, *args))
        return fn(self.engine, *args)

    def reconnect(self) -> None:
        """Replace a dead or poisoned remote connection with a fresh session.

        A no-op for in-process variants: their connection is a thin wrapper
        over the engine and survives engine-side faults.
        """
        if self.server is None:
            return
        self.connection.close()
        host, port = self.server.address
        self.connection = remote_connect(host, port, **self._connect_kwargs)

    def steps_applied(self) -> int:
        """Degradation steps applied so far (comparable across variants)."""
        return self.engine.stats.degradation_steps_applied

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.connection.close()
        finally:
            if self.server is not None:
                self.server.stop()
                self.engine.close()
            # the local connection owns no engine (engine= was passed), but
            # closing it leaves the engine open — close it ourselves.
            elif not getattr(self.connection, "_owns_engine", False):
                self.engine.close()

    def __enter__(self) -> "ScenarioVariant":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def build_variants(scenario: InclusionScenario,
                   names: Sequence[str] = VARIANT_NAMES,
                   data_dirs: Optional[Dict[str, str]] = None
                   ) -> Dict[str, ScenarioVariant]:
    """Build the requested variants over one shared scenario definition."""
    data_dirs = data_dirs or {}
    return {name: ScenarioVariant(name, scenario, data_dir=data_dirs.get(name))
            for name in names}


__all__ = ["ScenarioVariant", "build_variants", "VARIANT_NAMES"]
