"""The inclusion-platform scenario: schema + policy pack.

Models a les-emplois-style job-inclusion platform — the kind of production
system whose personal data a GDPR retention schedule must erode on time:

* ``users`` — job seekers; home address and a health/social note degrade on
  different cadences.  The address policy stops at ``country`` (pure
  generalization), so user rows are never physically removed: the platform
  keeps a pseudonymous profile forever while exposure shrinks.
* ``companies`` — stable dimension table (no personal data), join target.
* ``job_applications`` — the hot table: written during the op stream, carries
  the applicant's address under the fastest policy.  The table keeps rows
  after full suppression (``remove_on_final=False``): an application record
  with a ``SUPPRESSED`` address is still a countable business fact.
  ``user_id`` is the policy *selector*: a deterministic subset of "paranoid"
  users override the address policy with a much stricter cadence (the
  paper's per-tuple extension under macro load).
* ``approvals`` — stable administrative records (join/range target).
* ``employee_records`` — salary and address both degrade and both end at
  full suppression, so finished records are physically *removed*
  (``remove_on_final=True``), WAL traces scrubbed.

Every policy is timed-only, so the retention invariant checker can compute
the exact accuracy floor any attribute must have reached at the simulated
clock (:mod:`repro.scenarios.retention`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.domains import build_diagnosis_tree, build_location_tree, build_salary_ranges
from ..core.lcp import AttributeLCP
from ..engine import ddl
from ..engine.database import InstantDB
from ..query.parser import parse_script

#: Tables of the scenario, in load order (dimension tables first so foreign
#: keys always resolve).
TABLES: Tuple[str, ...] = (
    "companies", "users", "approvals", "employee_records", "job_applications",
)

#: user_id % PARANOID_MODULUS == PARANOID_RESIDUE selects the paranoid users.
PARANOID_MODULUS = 23
PARANOID_RESIDUE = 5

#: Per-policy transition cadences (kept short enough that a few simulated
#: months of op stream traverses every life cycle end to end).
USER_ADDRESS_TRANSITIONS = ["3 days", "14 days", "60 days"]
HEALTH_NOTE_TRANSITIONS = ["5 days", "20 days", "60 days"]
APP_ADDRESS_TRANSITIONS = ["1 day", "6 days", "21 days", "60 days"]
APP_ADDRESS_PARANOID_TRANSITIONS = ["4 hours", "1 day", "3 days", "10 days"]
EMPLOYEE_TRANSITIONS = ["2 days", "7 days", "21 days", "45 days"]

_CREATE_COMPANIES = (
    "CREATE TABLE companies ("
    "  id INT PRIMARY KEY,"
    "  name TEXT,"
    "  city TEXT,"
    "  sector TEXT"
    ")"
)

_CREATE_USERS = (
    "CREATE TABLE users ("
    "  id INT PRIMARY KEY,"
    "  name TEXT,"
    "  address TEXT DEGRADABLE DOMAIN location POLICY user_address_lcp,"
    "  health_note TEXT DEGRADABLE DOMAIN diagnosis POLICY health_note_lcp,"
    "  signup_day INT"
    ")"
)

_CREATE_APPROVALS = (
    "CREATE TABLE approvals ("
    "  id INT PRIMARY KEY,"
    "  user_id INT,"
    "  number TEXT,"
    "  granted_day INT,"
    "  status TEXT"
    ")"
)

_CREATE_EMPLOYEE_RECORDS = (
    "CREATE TABLE employee_records ("
    "  id INT PRIMARY KEY,"
    "  user_id INT,"
    "  company_id INT,"
    "  salary INT DEGRADABLE DOMAIN salary POLICY emp_salary_lcp,"
    "  address TEXT DEGRADABLE DOMAIN location POLICY emp_address_lcp,"
    "  hired_day INT"
    ")"
)

#: Created through the Python API so the table can keep fully-suppressed rows
#: (remove_on_final=False) and carry the per-tuple policy selector.
_CREATE_JOB_APPLICATIONS = (
    "CREATE TABLE job_applications ("
    "  id INT PRIMARY KEY,"
    "  user_id INT,"
    "  company_id INT,"
    "  status TEXT,"
    "  applicant_address TEXT DEGRADABLE DOMAIN location POLICY app_address_lcp,"
    "  applied_day INT"
    ")"
)

#: The three purposes the mixed workload runs under: fine-grained casework,
#: service-level placement, and coarse statistics.
PURPOSES_SQL: Tuple[str, ...] = (
    ("DECLARE PURPOSE casework SET ACCURACY LEVEL "
     "address FOR users.address, diagnosis FOR users.health_note, "
     "address FOR job_applications.applicant_address, "
     "exact FOR employee_records.salary, address FOR employee_records.address"),
    ("DECLARE PURPOSE placement SET ACCURACY LEVEL "
     "city FOR users.address, disease_group FOR users.health_note, "
     "city FOR job_applications.applicant_address, "
     "range100 FOR employee_records.salary, city FOR employee_records.address"),
    ("DECLARE PURPOSE statistics SET ACCURACY LEVEL "
     "country FOR users.address, specialty FOR users.health_note, "
     "country FOR job_applications.applicant_address, "
     "range10000 FOR employee_records.salary, "
     "country FOR employee_records.address"),
)


def paranoid_user(user_id: int) -> bool:
    """Whether ``user_id`` registered the stricter per-tuple address policy."""
    return user_id % PARANOID_MODULUS == PARANOID_RESIDUE


class InclusionScenario:
    """Installs the inclusion-platform schema/policy pack on an engine.

    ``install`` is deterministic and idempotent across process restarts: a
    reopened database directory re-runs the same DDL (the catalog is
    code-defined, the data is log-defined), after which
    :meth:`InstantDB.recover` can replay the heap and the schedule.
    """

    name = "inclusion"

    def __init__(self, scale: int = 1000) -> None:
        if scale < 1:
            raise ValueError("scale must be at least 1")
        self.scale = scale

    # -- derived sizes (shared with the generator) ---------------------------

    @property
    def num_users(self) -> int:
        return self.scale

    @property
    def num_companies(self) -> int:
        return max(6, self.scale // 40)

    @property
    def num_applications(self) -> int:
        return self.scale * 2

    @property
    def num_approvals(self) -> int:
        return max(1, self.scale // 2)

    @property
    def num_employees(self) -> int:
        return max(1, self.scale // 3)

    def paranoid_users(self) -> List[int]:
        return [user_id for user_id in range(1, self.num_users + 1)
                if paranoid_user(user_id)]

    # -- installation --------------------------------------------------------

    def install(self, db: InstantDB) -> InstantDB:
        """Register domains, policies, tables, purposes and overrides."""
        location = db.register_domain(build_location_tree())
        diagnosis = db.register_domain(build_diagnosis_tree())
        salary = db.register_domain(build_salary_ranges())
        db.register_policy(AttributeLCP(
            location, states=[0, 1, 2, 3],
            transitions=USER_ADDRESS_TRANSITIONS, name="user_address_lcp"))
        db.register_policy(AttributeLCP(
            diagnosis, transitions=HEALTH_NOTE_TRANSITIONS,
            name="health_note_lcp"))
        db.register_policy(AttributeLCP(
            location, transitions=APP_ADDRESS_TRANSITIONS,
            name="app_address_lcp"))
        paranoid = db.register_policy(AttributeLCP(
            location, transitions=APP_ADDRESS_PARANOID_TRANSITIONS,
            name="app_address_paranoid_lcp"))
        db.register_policy(AttributeLCP(
            salary, transitions=EMPLOYEE_TRANSITIONS, name="emp_salary_lcp"))
        db.register_policy(AttributeLCP(
            location, transitions=EMPLOYEE_TRANSITIONS, name="emp_address_lcp"))

        for sql in (_CREATE_COMPANIES, _CREATE_USERS, _CREATE_APPROVALS,
                    _CREATE_EMPLOYEE_RECORDS):
            db.execute(sql)
        # job_applications keeps fully-suppressed rows and resolves per-tuple
        # overrides on user_id, so it goes through the Python surface.
        statement = parse_script(_CREATE_JOB_APPLICATIONS)[0]
        schema = ddl.build_schema(statement, db.registry)
        db.create_table(schema, remove_on_final=False, selector_column="user_id")
        for user_id in self.paranoid_users():
            db.register_user_policy("job_applications", user_id,
                                    {"applicant_address": paranoid})
        for sql in PURPOSES_SQL:
            db.execute(sql)
        return db

    def columnarize(self, db: InstantDB) -> None:
        """Attach columnar segment mirrors to every scenario table."""
        for table in TABLES:
            db.columnarize(table)

    def describe(self) -> str:
        lines = [f"scenario {self.name!r} @ scale {self.scale}:"]
        lines.append(f"  users={self.num_users} companies={self.num_companies} "
                     f"applications={self.num_applications} "
                     f"approvals={self.num_approvals} "
                     f"employees={self.num_employees}")
        lines.append(f"  paranoid users: {len(self.paranoid_users())} "
                     f"(user_id % {PARANOID_MODULUS} == {PARANOID_RESIDUE})")
        return "\n".join(lines)


__all__ = [
    "InclusionScenario", "TABLES", "PURPOSES_SQL", "paranoid_user",
    "PARANOID_MODULUS", "PARANOID_RESIDUE",
]
