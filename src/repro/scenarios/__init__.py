"""GDPR-retention scenario suite: macro-workloads over the whole engine.

Models a les-emplois-style labour-inclusion platform — job seekers, employer
companies, work approvals, employment records, applications — with per-
attribute retention policies (generalize, suppress, remove), seeded data
generators and a mixed op-stream driver.  A differential oracle replays the
same stream against every engine variant (interpreted, compiled, columnar,
remote) and demands identical results; a retention checker independently
re-derives each attribute's mandated accuracy floor from the policy automaton
and asserts the stores never exceed it.  Chaos mode replays the same streams
under a seeded fault schedule (I/O errors, dropped sockets, clock skips) and
demands the healed victim still matches an unfaulted twin.
"""

from .chaos import (
    ENGINE_FAULT_SITES,
    NETWORK_FAULT_SITES,
    ChaosGaveUp,
    ChaosReport,
    ChaosRunner,
    arm_schedule,
    run_chaos,
)
from .driver import DEFAULT_MIX, Op, OpResult, OpStream, ReplayReport, replay, run_op
from .generator import InclusionGenerator, TableBatch, employee_salary
from .inclusion import InclusionScenario, paranoid_user
from .oracle import DifferentialOracle, Mismatch, OracleReport, format_failure, minimize_trace
from .retention import (
    RetentionViolation,
    check_engine,
    expired_employee_salaries,
    forensic_leaks,
    retention_report,
)
from .variants import VARIANT_NAMES, ScenarioVariant, build_variants

__all__ = [
    "InclusionScenario", "paranoid_user",
    "InclusionGenerator", "TableBatch", "employee_salary",
    "Op", "OpStream", "OpResult", "ReplayReport", "replay", "run_op",
    "DEFAULT_MIX",
    "DifferentialOracle", "Mismatch", "OracleReport", "minimize_trace",
    "format_failure",
    "RetentionViolation", "check_engine", "forensic_leaks",
    "expired_employee_salaries", "retention_report",
    "ScenarioVariant", "build_variants", "VARIANT_NAMES",
    "ChaosGaveUp", "ChaosReport", "ChaosRunner", "arm_schedule", "run_chaos",
    "ENGINE_FAULT_SITES", "NETWORK_FAULT_SITES",
]
