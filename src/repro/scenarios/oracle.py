"""Cross-engine differential oracle.

The oracle replays one seeded op stream across several engine variants in
lockstep and demands **identical canonical results for every op** — same rows
(sentinel identity included), same rowcounts, same retention/forensic
counters.  The interpreted engine is the reference; any disagreement is an
engine bug by definition, because all variants implement one semantics.

On disagreement the oracle reports the seed and a *minimized* op trace: the
failing stream is first restricted to ops touching the tables involved (plus
all clock waves, which change visibility globally), then greedily shrunk
while the disagreement still reproduces on fresh engine pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .driver import Op, OpResult, run_op
from .variants import ScenarioVariant


@dataclass(frozen=True)
class Mismatch:
    """One op on which a variant disagreed with the reference engine."""

    op: Op
    reference: str
    variant: str
    expected: OpResult
    actual: OpResult

    def describe(self) -> str:
        return (f"{self.op.describe()}\n"
                f"  {self.reference} (reference): {self.expected.payload!r}\n"
                f"  {self.variant}: {self.actual.payload!r}")


@dataclass
class OracleReport:
    """Outcome of one lockstep run."""

    reference: str
    variants: Tuple[str, ...]
    ops_run: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)
    retention_checks: int = 0
    retention_violations: int = 0
    #: op kind -> count, for sanity-checking mix coverage.
    kind_counts: Dict[str, int] = field(default_factory=dict)
    #: variant -> per-op latencies (seconds), for benchmark reporting.
    latencies: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.mismatches and self.retention_violations == 0


class DifferentialOracle:
    """Lockstep replay of one op stream across variants, with invariants armed.

    ``variants`` maps name -> built, *loaded* variant; the first entry is the
    reference.  With ``check_retention`` the retention invariant checker runs
    on every variant after every wave op.
    """

    def __init__(self, variants: Dict[str, ScenarioVariant],
                 salaries: Optional[Dict[int, int]] = None,
                 check_retention: bool = True) -> None:
        if len(variants) < 2:
            raise ValueError("differential oracle needs at least two variants")
        self.variants = variants
        self.salaries = salaries or {}
        self.check_retention = check_retention
        self.reference = next(iter(variants))

    def run(self, ops: Sequence[Op], fail_fast: bool = True) -> OracleReport:
        from .retention import check_engine
        names = tuple(self.variants)
        report = OracleReport(reference=self.reference, variants=names,
                              latencies={name: [] for name in names})
        for op in ops:
            report.kind_counts[op.kind] = report.kind_counts.get(op.kind, 0) + 1
            results: Dict[str, OpResult] = {}
            for name, variant in self.variants.items():
                result = run_op(variant, op, salaries=self.salaries)
                results[name] = result
                report.latencies[name].append(result.seconds)
            report.ops_run += 1
            expected = results[self.reference]
            for name in names[1:]:
                if not results[name].matches(expected):
                    report.mismatches.append(Mismatch(
                        op=op, reference=self.reference, variant=name,
                        expected=expected, actual=results[name]))
            if self.check_retention and op.kind == "wave":
                for name, variant in self.variants.items():
                    violations = variant.engine_call(check_engine)
                    report.retention_checks += 1
                    report.retention_violations += len(violations)
            if fail_fast and not report.ok:
                break
        return report


# ----------------------------------------------------------------- minimization

#: A factory producing a *fresh, loaded* (reference, suspect) variant pair.
PairFactory = Callable[[], Tuple[ScenarioVariant, ScenarioVariant]]


def _reproduces(build_pair: PairFactory, ops: Sequence[Op],
                salaries: Dict[int, int]) -> bool:
    """Does this op subset still produce any disagreement on a fresh pair?"""
    reference, suspect = build_pair()
    try:
        for op in ops:
            expected = run_op(reference, op, salaries=salaries)
            actual = run_op(suspect, op, salaries=salaries)
            if not actual.matches(expected):
                return True
        return False
    finally:
        reference.close()
        suspect.close()


def minimize_trace(build_pair: PairFactory, ops: Sequence[Op],
                   failing: Mismatch,
                   salaries: Optional[Dict[int, int]] = None,
                   budget: int = 16) -> List[Op]:
    """Shrink ``ops`` to a small prefix-closed trace that still disagrees.

    Re-running costs a fresh engine pair per candidate, so the shrink is a
    bounded greedy pass, not ddmin: (1) drop everything after the failing op,
    (2) drop ops touching unrelated tables (waves always stay — the clock is
    global state), (3) try dropping surviving ops one chunk at a time while
    the budget lasts.  Each step keeps the candidate only if the disagreement
    still reproduces from scratch.
    """
    salaries = salaries or {}
    trace = [op for op in ops if op.index <= failing.op.index]
    relevant = set(failing.op.tables)
    if relevant:
        filtered = [op for op in trace
                    if op.kind in ("wave", "forensic")
                    or op.index == failing.op.index
                    or (set(op.tables) & relevant)]
        if filtered != trace and _reproduces(build_pair, filtered, salaries):
            trace = filtered
            budget -= 1
    # Greedy chunked removal (never the final op — it is the witness).
    chunk = max(1, len(trace) // 8)
    while budget > 0 and chunk >= 1:
        removed_any = False
        start = 0
        while start < len(trace) - 1 and budget > 0:
            candidate = trace[:start] + trace[start + chunk:]
            if failing.op not in candidate:
                candidate.append(failing.op)
            budget -= 1
            if len(candidate) < len(trace) and \
                    _reproduces(build_pair, candidate, salaries):
                trace = candidate
                removed_any = True
            else:
                start += chunk
        if not removed_any:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return trace


def format_failure(seed: int, mismatches: Sequence[Mismatch],
                   trace: Optional[Sequence[Op]] = None) -> str:
    """Human-oriented failure text: seed first, then the (minimized) trace."""
    lines = [f"differential oracle failure (seed={seed}, "
             f"{len(mismatches)} mismatching op(s))"]
    for mismatch in mismatches:
        lines.append(mismatch.describe())
    if trace is not None:
        lines.append(f"minimized trace ({len(trace)} ops):")
        for op in trace:
            lines.append("  " + op.describe())
    return "\n".join(lines)


__all__ = ["Mismatch", "OracleReport", "DifferentialOracle",
           "minimize_trace", "format_failure", "PairFactory"]
