"""Chaos mode: the scenario oracle under a seeded fault schedule.

A :class:`ChaosRunner` replays one seeded C7 op stream on a *victim* engine
whose I/O seams are armed with a seeded :class:`~repro.faults.FaultPlan` —
WAL flush failures, torn writes, ENOSPC, pager sync errors, dropped and
stalled sockets, clock skips — while an identical unfaulted *twin* applies
the same logical stream.  The victim heals the way a real client would:
bounded per-op retries, transparent reconnects, and a ``recover()`` call
whenever a durability fault flips the engine into read-only degraded mode.

At the end the victim's data directory is reopened **cold** (one-call
``InstantDB.recover`` — the catalog comes back from the WAL, no DDL re-run),
both clocks are aligned, and the oracle demands:

* zero retention violations on the recovered victim,
* zero forensic leaks (expired plaintexts unrecoverable from raw bytes),
* canonical read-back equality against the unfaulted twin,
* every armed ``(site, kind)`` fault fired at least once.

Everything derives from two printed seeds (data/stream seed + fault seed),
so any failure is reproducible from its report alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..api.connection import connect as local_connect
from ..core import errors as _errors
from ..engine.database import InstantDB
from ..faults import FaultPlan
from .driver import Op, OpStream, canonical_rows, run_op
from .generator import InclusionGenerator
from .inclusion import InclusionScenario
from .retention import check_engine, retention_report
from .variants import ScenarioVariant

DAY = 86400.0

#: Engine-side fault sites, armable on every variant.
ENGINE_FAULT_SITES: Dict[str, Tuple[str, ...]] = {
    "wal.flush": ("enospc", "torn_write", "fsync"),
    "wal.rewrite": ("enospc", "fsync"),
    "pager.sync": ("enospc", "fsync"),
    "clock.advance": ("skip",),
}

#: Wire fault sites, armable only when the variant crosses a socket.
NETWORK_FAULT_SITES: Dict[str, Tuple[str, ...]] = {
    "server.recv": ("stall", "disconnect"),
    "server.send": ("stall", "truncate", "disconnect"),
    "client.send": ("stall", "truncate", "disconnect"),
    "client.recv": ("stall", "disconnect"),
}

#: Rough per-site call budget over one stream, bounding the nth offsets the
#: schedule may pick so every deterministic rule actually gets to fire.
_SITE_CALL_CEILING: Dict[str, int] = {
    "wal.flush": 40,
    "wal.rewrite": 2,
    "pager.sync": 2,
    "clock.advance": 5,
    "server.recv": 30,
    "server.send": 30,
    "client.send": 30,
    "client.recv": 30,
}


def arm_schedule(plan: FaultPlan, fault_seed: int,
                 remote: bool) -> Tuple[Tuple[str, str], ...]:
    """Arm ``plan`` with a seeded schedule; returns the armed (site, kind) set.

    One deterministic ``fail_nth`` per (site, kind) — offsets drawn from the
    fault seed within each site's call budget — plus a low-probability
    background rule per site with a bounded blast radius.  Anything the
    stream fails to trigger is mopped up by the runner afterwards.
    """
    rng = random.Random(fault_seed * 52361 + 7)
    sites = dict(ENGINE_FAULT_SITES)
    if remote:
        sites.update(NETWORK_FAULT_SITES)
    armed: List[Tuple[str, str]] = []
    for site in sorted(sites):
        kinds = sites[site]
        ceiling = _SITE_CALL_CEILING.get(site, 10)
        offsets = rng.sample(range(1, max(len(kinds), ceiling) + 1),
                             len(kinds))
        for kind, nth in zip(kinds, sorted(offsets)):
            plan.fail_nth(site, kind, nth)
            armed.append((site, kind))
        plan.fail_with_probability(site, kinds[0], 0.01, max_fires=2)
    return tuple(armed)


def fired_pairs(plan: FaultPlan) -> Set[Tuple[str, str]]:
    return {(event.site, event.kind) for event in plan.fired}


class ChaosGaveUp(Exception):
    """An op kept failing past the retry budget — the healing contract broke."""


@dataclass
class ChaosReport:
    """Outcome of one chaos run (victim variant vs unfaulted twin)."""

    variant: str
    seed: int
    fault_seed: int
    armed: Tuple[Tuple[str, str], ...] = ()
    ops_run: int = 0
    retries: int = 0
    reconnects: int = 0
    reconnect_failures: int = 0
    recoveries: int = 0
    recovery_faults: int = 0
    rollback_failures: int = 0
    insert_reconciliations: int = 0
    steps_deferred_by_fault: int = 0
    fired: Tuple[Tuple[str, str], ...] = ()
    unfired: Tuple[Tuple[str, str], ...] = ()
    retention: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (not self.mismatches and not self.violations
                and not self.unfired
                and self.retention == {"violations": 0, "leaks": 0})

    def describe(self) -> str:
        lines = [f"chaos[{self.variant}] seed={self.seed} "
                 f"fault_seed={self.fault_seed}: "
                 f"{'OK' if self.ok else 'FAILED'}",
                 f"  ops={self.ops_run} retries={self.retries} "
                 f"recoveries={self.recoveries} reconnects={self.reconnects} "
                 f"deferred_steps={self.steps_deferred_by_fault}",
                 f"  faults fired: {len(self.fired)}/{len(self.armed)} armed"]
        for site, kind in self.unfired:
            lines.append(f"  NEVER FIRED: {site} -> {kind}")
        for text in self.violations[:5]:
            lines.append(f"  retention: {text}")
        for text in self.mismatches[:5]:
            lines.append(f"  mismatch: {text}")
        return "\n".join(lines)


class ChaosRunner:
    """One victim-vs-twin chaos run over one variant.

    ``data_dir`` must be a fresh directory the victim can be cold-reopened
    from; the twin lives in ``data_dir + '-twin'`` unless given its own.
    """

    #: Per-op retry budget.  Every armed rule is finite (nth / bounded
    #: probability), so a healthy engine always gets a clean attempt.
    MAX_ATTEMPTS = 10

    def __init__(self, variant: str, scenario: InclusionScenario,
                 seed: int, fault_seed: int, data_dir: str,
                 twin_dir: Optional[str] = None, ops: int = 200,
                 checkpoint_every: int = 60) -> None:
        self.variant_name = variant
        self.scenario = scenario
        self.seed = seed
        self.fault_seed = fault_seed
        self.data_dir = data_dir
        self.twin_dir = twin_dir or (data_dir.rstrip("/") + "-twin")
        self.ops = ops
        self.checkpoint_every = checkpoint_every
        self.plan = FaultPlan(seed=fault_seed)
        self.report = ChaosReport(variant=variant, seed=seed,
                                  fault_seed=fault_seed)
        self.victim: Optional[ScenarioVariant] = None
        self.twin: Optional[ScenarioVariant] = None
        self.salaries: Dict[int, int] = {}

    # -- plumbing -------------------------------------------------------------

    def _build(self) -> None:
        remote = self.variant_name == "remote"
        server_kwargs = {"fault_plan": self.plan} if remote else None
        connect_kwargs = None
        if remote:
            connect_kwargs = {
                "retries": 3,
                "retry_backoff": 0.005,
                "retry_seed": self.fault_seed,
                "fault_plan": self.plan,
            }
        self.victim = ScenarioVariant(
            self.variant_name, self.scenario, data_dir=self.data_dir,
            fault_plan=self.plan, server_kwargs=server_kwargs,
            connect_kwargs=connect_kwargs)
        self.twin = ScenarioVariant(self.variant_name, self.scenario,
                                    data_dir=self.twin_dir)
        generator = InclusionGenerator(self.scenario, seed=self.seed)
        generator.load(self.victim.connection)
        generator.load(self.twin.connection)
        self.salaries = generator.sensitive_salaries()

    def _victim_now(self) -> float:
        assert self.victim is not None
        return self.victim.engine_call(lambda db: db.clock.now())

    def _twin_now(self) -> float:
        assert self.twin is not None
        return self.twin.engine_call(lambda db: db.clock.now())

    def _sync_twin_clock(self) -> None:
        """Clock skips fault only the victim; pull the twin level again."""
        delta = self._victim_now() - self._twin_now()
        if delta > 0:
            self.twin.advance(delta)

    # -- healing --------------------------------------------------------------

    def _heal(self) -> None:
        assert self.victim is not None
        if self.victim.server is not None:
            # The wire connection may be poisoned or mid-frame dead; a fresh
            # session is always safe (the server rolled back its open txn).
            try:
                self.victim.reconnect()
                self.report.reconnects += 1
            except _errors.Error:
                # The fresh dial's handshake hit an armed wire fault itself.
                # The dead connection stays in place; the next attempt fails
                # fast on it and heals again (armed rules are finite).
                self.report.reconnect_failures += 1
        else:
            try:
                self.victim.connection.rollback()
            except _errors.Error:
                self.report.rollback_failures += 1
        if self.victim.engine_call(lambda db: db.read_only):
            try:
                self.victim.engine_call(lambda db: db.recover(drain=True))
                self.report.recoveries += 1
            except _errors.Error:
                # Recovery itself hit an armed rule and the engine fell back
                # into read-only mode; the next attempt's heal retries it.
                self.report.recovery_faults += 1

    def _insert_applied(self, op: Op) -> bool:
        """Reconcile an ambiguous insert: did an earlier attempt commit?

        A transport failure during COMMIT leaves the outcome unknown; the
        schema has no uniqueness enforcement, so a blind replay would leave
        the victim with a duplicate row the twin does not have.
        """
        assert self.victim is not None and op.params
        cursor = self.victim.execute(
            "SELECT COUNT(*) AS n FROM job_applications WHERE id = ?",
            (op.params[0],))
        count = cursor.fetchall()[0][0]
        self.victim.commit()
        return bool(count)

    def _apply(self, op: Op) -> None:
        """Run one op on the victim to completion, healing between attempts."""
        assert self.victim is not None
        if op.kind == "wave":
            self._apply_wave(op)
            return
        for attempt in range(self.MAX_ATTEMPTS):
            try:
                run_op(self.victim, op, salaries=self.salaries)
                return
            except _errors.Error:
                self.report.retries += 1
                self._heal()
                if op.kind == "insert":
                    try:
                        applied = self._insert_applied(op)
                    except _errors.Error:
                        self._heal()   # reconcile on the next attempt
                        continue
                    if applied:
                        self.report.insert_reconciliations += 1
                        return
        raise ChaosGaveUp(f"{op.describe()} still failing after "
                          f"{self.MAX_ATTEMPTS} attempts\n"
                          + self.plan.describe())

    def _apply_wave(self, op: Op) -> None:
        """Advance to an absolute target so retries never double-advance.

        A faulted wave may die after the clock already moved; replaying the
        relative advance would leave the victim ahead of the twin forever.
        Injected clock *skips* legitimately overshoot the target — the twin
        is pulled level afterwards by :meth:`_sync_twin_clock`.
        """
        assert self.victim is not None
        target = self._victim_now() + op.advance
        for attempt in range(self.MAX_ATTEMPTS):
            remaining = target - self._victim_now()
            if remaining <= 0:
                return
            try:
                self.victim.advance(remaining)
                return
            except _errors.Error:
                self.report.retries += 1
                self._heal()
        raise ChaosGaveUp(f"{op.describe()} still failing after "
                          f"{self.MAX_ATTEMPTS} attempts\n"
                          + self.plan.describe())

    def _checkpoint_both(self) -> None:
        """Periodic checkpoints drive the pager.sync / wal.rewrite seams."""
        assert self.victim is not None and self.twin is not None
        for attempt in range(self.MAX_ATTEMPTS):
            try:
                self.victim.engine_call(InstantDB.checkpoint)
                break
            except _errors.Error:
                self.report.retries += 1
                self._heal()
        self.twin.engine_call(InstantDB.checkpoint)

    # -- the run --------------------------------------------------------------

    def _replay_stream(self) -> None:
        assert self.twin is not None
        stream = OpStream(self.scenario, seed=self.seed, count=self.ops)
        ops = stream.ops() + stream.epilogue(self.ops)
        for op in ops:
            self._apply(op)
            run_op(self.twin, op, salaries=self.salaries)
            if op.kind == "wave":
                self._sync_twin_clock()
            self.report.ops_run += 1
            if (op.index + 1) % self.checkpoint_every == 0:
                self._checkpoint_both()

    def _mop_up(self, armed: Sequence[Tuple[str, str]]) -> None:
        """Force any never-fired armed fault through a targeted nudge op.

        Keeps the coverage guarantee ("each armed kind fired at least once")
        independent of how the sampled stream happened to exercise each
        site.  Nudge writes are mirrored on the twin so read-back equality
        survives.
        """
        assert self.victim is not None and self.twin is not None
        next_id = self.scenario.num_applications + self.ops + 1000
        for round_index in range(8):
            missing = [pair for pair in armed if pair not in
                       fired_pairs(self.plan)]
            if not missing:
                return
            for site, kind in missing:
                self.plan.fail_once(site, kind)
            nudges = [
                Op(index=-1, kind="insert",
                   sql="INSERT INTO job_applications (id, user_id, "
                       "company_id, status, applicant_address, applied_day) "
                       "VALUES (?, ?, ?, ?, ?, ?)",
                   params=(next_id + round_index, 1, 1, "new",
                           "12 Rue de la Paix, Paris", 0),
                   tables=("job_applications",)),
                Op(index=-1, kind="point_read",
                   sql="SELECT id, status FROM job_applications WHERE id = ?",
                   params=(next_id + round_index,),
                   tables=("job_applications",)),
                Op(index=-1, kind="delete",
                   sql="DELETE FROM job_applications WHERE id = ?",
                   params=(next_id + round_index,),
                   tables=("job_applications",)),
                Op(index=-1, kind="wave", advance=3600.0),
            ]
            for op in nudges:
                self._apply(op)
                run_op(self.twin, op, salaries=self.salaries)
                if op.kind == "wave":
                    self._sync_twin_clock()
            self._checkpoint_both()
        self.report.unfired = tuple(
            pair for pair in armed if pair not in fired_pairs(self.plan))

    def _final_oracle(self) -> None:
        """Cold-reopen the victim, align clocks, and difference the twins."""
        assert self.victim is not None and self.twin is not None
        # Coverage is measured; teardown and the final recovery run clean.
        self.plan.disarm()
        self.report.steps_deferred_by_fault = self.victim.engine_call(
            lambda db: db.daemon.stats.steps_deferred_by_fault)
        if self.victim.engine_call(lambda db: db.read_only):
            self.victim.engine_call(lambda db: db.recover(drain=True))
            self.report.recoveries += 1
        self.victim.close()

        recovered = InstantDB(
            data_dir=self.data_dir,
            read_path_optimizations=(self.variant_name != "interpreted"))
        recovery = recovered.recover(drain=True)
        try:
            if recovery.registrations == 0 and not recovered.catalog.tables():
                self.report.violations.append(
                    "cold reopen restored nothing — catalog persistence "
                    "through the WAL is broken")
                return
            # Align clocks, then push both a day past the last deferral
            # backoff so every faulted wave has retried and drained.
            twin_now = self._twin_now()
            if recovered.clock.now() < twin_now:
                recovered.advance_time(twin_now - recovered.clock.now())
            elif twin_now < recovered.clock.now():
                self.twin.advance(recovered.clock.now() - twin_now)
            recovered.advance_time(DAY)
            self.twin.advance(DAY)

            self.report.retention = retention_report(recovered, self.salaries)
            self.report.violations.extend(
                violation.describe() for violation in
                check_engine(recovered)[:10])

            read_backs = [op for op in
                          OpStream(self.scenario, seed=self.seed + 13,
                                   count=60).ops()
                          if op.kind in ("point_read", "range_scan", "join",
                                         "aggregate")]
            connection = local_connect(engine=recovered)
            try:
                for op in read_backs:
                    expected = self.twin.execute(
                        op.sql, op.params, purpose=op.purpose).fetchall()
                    self.twin.commit()
                    actual = connection.execute(
                        op.sql, op.params, purpose=op.purpose).fetchall()
                    connection.commit()
                    if canonical_rows(actual, op.ordered) != \
                            canonical_rows(expected, op.ordered):
                        self.report.mismatches.append(op.describe())
            finally:
                connection.close()
        finally:
            recovered.close()

    def run(self) -> ChaosReport:
        self._build()
        try:
            armed = arm_schedule(self.plan, self.fault_seed,
                                 remote=(self.variant_name == "remote"))
            self.report.armed = armed
            self._replay_stream()
            self._mop_up(armed)
            self._final_oracle()
            self.report.fired = tuple(sorted(fired_pairs(self.plan)))
            self.report.unfired = tuple(
                pair for pair in armed if pair not in fired_pairs(self.plan))
            return self.report
        finally:
            # On the failure path rules may still be armed; teardown must not
            # trip them (close() checkpoints through pager.sync / wal.flush).
            self.plan.disarm()
            if self.victim is not None:
                try:
                    self.victim.close()
                except _errors.Error:  # reprolint: disable=no-swallowed-abort -- best-effort teardown of an already-failed victim; the twin below must still close
                    pass
            if self.twin is not None:
                self.twin.close()


def run_chaos(variant: str, seed: int, fault_seed: int, data_dir: str,
              scale: int = 30, ops: int = 200) -> ChaosReport:
    """One-call chaos run: build, replay, mop up, recover, difference."""
    runner = ChaosRunner(variant, InclusionScenario(scale), seed=seed,
                         fault_seed=fault_seed, data_dir=data_dir, ops=ops)
    return runner.run()


__all__ = [
    "ENGINE_FAULT_SITES", "NETWORK_FAULT_SITES",
    "ChaosGaveUp", "ChaosReport", "ChaosRunner",
    "arm_schedule", "fired_pairs", "run_chaos",
]
