"""YCSB-style mixed-workload driver over the inclusion scenario.

A seeded :class:`OpStream` turns ``(scenario, seed, mix)`` into a
deterministic sequence of operations — point reads, range scans, equi-joins,
aggregates, inserts, status updates, GDPR erasure deletes, forensic scans and
live expiry *waves* (simulated-clock advances that fire degradation inline).
The same stream replays against every engine variant; each op's outcome is
reduced to a transport-independent canonical form so the differential oracle
can compare variants op by op (sentinel identity included).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.values import NULL, REMOVED, SUPPRESSED
from ..workloads.distributions import Distributions
from .generator import InclusionGenerator
from .inclusion import InclusionScenario
from .retention import retention_report
from .variants import ScenarioVariant

#: Default op mix (weights are relative, not normalized).
DEFAULT_MIX: Dict[str, float] = {
    "point_read": 0.30,
    "range_scan": 0.14,
    "join": 0.12,
    "aggregate": 0.08,
    "insert": 0.12,
    "update": 0.08,
    "delete": 0.05,
    "wave": 0.08,
    "forensic": 0.03,
}

_STATUSES = ("new", "processing", "accepted", "refused")

#: Wave advances are sampled from this window (seconds): long enough that a
#: couple of hundred ops traverse several policy transitions, short enough
#: that consecutive reads see partially-degraded tables.
WAVE_MIN_S = 6 * 3600.0
WAVE_MAX_S = 2.5 * 86400.0


@dataclass(frozen=True)
class Op:
    """One operation of the stream (pure data; rendering is variant-free)."""

    index: int
    kind: str
    sql: Optional[str] = None
    params: Tuple[Any, ...] = ()
    purpose: Optional[str] = None
    #: Compare results order-sensitively (the query has a total ORDER BY).
    ordered: bool = False
    #: Clock advance in seconds (wave ops only).
    advance: float = 0.0
    #: Tables the op touches (drives trace minimization).
    tables: Tuple[str, ...] = ()

    def describe(self) -> str:
        if self.kind == "wave":
            return f"[{self.index}] wave: advance {self.advance / 3600.0:.1f} h"
        if self.kind == "forensic":
            return f"[{self.index}] forensic scan"
        purpose = f" purpose={self.purpose}" if self.purpose else ""
        params = f" params={self.params!r}" if self.params else ""
        return f"[{self.index}] {self.kind}: {self.sql}{params}{purpose}"


class OpStream:
    """Deterministic op sequence for one ``(scenario, seed, mix)`` triple."""

    def __init__(self, scenario: InclusionScenario, seed: int = 7,
                 mix: Optional[Dict[str, float]] = None,
                 count: int = 200) -> None:
        self.scenario = scenario
        self.seed = seed
        self.count = count
        self.mix = dict(mix or DEFAULT_MIX)
        self.generator = InclusionGenerator(scenario, seed=seed)
        self._kinds = tuple(self.mix)
        self._weights = tuple(self.mix[kind] for kind in self._kinds)

    def ops(self) -> List[Op]:
        dist = Distributions(self.seed * 1009 + 17)
        scenario = self.scenario
        next_app_id = scenario.num_applications + 1
        max_app_id = scenario.num_applications
        ops: List[Op] = []
        for index in range(self.count):
            kind = dist.weighted_choice(self._kinds, self._weights)
            if kind == "point_read":
                ops.append(self._point_read(index, dist, max_app_id))
            elif kind == "range_scan":
                ops.append(self._range_scan(index, dist))
            elif kind == "join":
                ops.append(self._join(index, dist))
            elif kind == "aggregate":
                ops.append(self._aggregate(index, dist))
            elif kind == "insert":
                app_id = next_app_id
                next_app_id += 1
                max_app_id = app_id
                ops.append(self._insert(index, dist, app_id))
            elif kind == "update":
                ops.append(Op(
                    index=index, kind="update",
                    sql="UPDATE job_applications SET status = ? WHERE id = ?",
                    params=(dist.uniform_choice(_STATUSES),
                            dist.uniform_int(1, max_app_id)),
                    tables=("job_applications",),
                ))
            elif kind == "delete":
                ops.append(Op(
                    index=index, kind="delete",
                    sql="DELETE FROM job_applications WHERE id = ?",
                    params=(dist.uniform_int(1, max_app_id),),
                    tables=("job_applications",),
                ))
            elif kind == "wave":
                ops.append(Op(
                    index=index, kind="wave",
                    advance=dist.uniform(WAVE_MIN_S, WAVE_MAX_S),
                    tables=(),
                ))
            else:
                ops.append(Op(index=index, kind="forensic", tables=()))
        return ops

    def epilogue(self, start_index: int) -> List[Op]:
        """Long-horizon tail: two big clock jumps (+30 d, +60 d) that push every
        policy to its terminal state, each followed by read-backs and a
        forensic scan — the oracle then differences full-lifecycle outcomes
        (suppression, physical removal, WAL scrubbing) too."""
        ops: List[Op] = []
        index = start_index
        for days in (30, 60):
            ops.append(Op(index=index, kind="wave", advance=days * 86400.0))
            index += 1
            ops.append(Op(
                index=index, kind="range_scan",
                sql="SELECT id, user_id, salary, address FROM employee_records "
                    "ORDER BY id",
                purpose="statistics", ordered=True,
                tables=("employee_records",)))
            index += 1
            ops.append(Op(
                index=index, kind="aggregate",
                sql="SELECT applicant_address, COUNT(*) AS n "
                    "FROM job_applications GROUP BY applicant_address",
                purpose="statistics",
                tables=("job_applications",)))
            index += 1
            ops.append(Op(
                index=index, kind="aggregate",
                sql="SELECT address, COUNT(*) AS n FROM users GROUP BY address",
                purpose="statistics",
                tables=("users",)))
            index += 1
            ops.append(Op(index=index, kind="forensic"))
            index += 1
        return ops

    # -- op builders ---------------------------------------------------------

    def _point_read(self, index: int, dist: Distributions,
                    max_app_id: int) -> Op:
        roll = dist.uniform(0, 1)
        if roll < 0.45:
            return Op(
                index=index, kind="point_read",
                sql="SELECT id, name, address, health_note FROM users "
                    "WHERE id = ?",
                params=(dist.uniform_int(1, self.scenario.num_users),),
                purpose=dist.uniform_choice(("placement", "casework")),
                tables=("users",),
            )
        if roll < 0.8:
            return Op(
                index=index, kind="point_read",
                sql="SELECT id, user_id, status, applicant_address "
                    "FROM job_applications WHERE id = ?",
                params=(dist.uniform_int(1, max_app_id),),
                purpose="placement",
                tables=("job_applications",),
            )
        return Op(
            index=index, kind="point_read",
            sql="SELECT id, user_id, number, status FROM approvals "
                "WHERE id = ?",
            params=(dist.uniform_int(1, self.scenario.num_approvals),),
            tables=("approvals",),
        )

    def _range_scan(self, index: int, dist: Distributions) -> Op:
        roll = dist.uniform(0, 1)
        if roll < 0.4:
            low = dist.uniform_int(0, 300)
            return Op(
                index=index, kind="range_scan",
                sql="SELECT id, name, signup_day FROM users "
                    "WHERE signup_day >= ? AND signup_day <= ? "
                    "ORDER BY id LIMIT 25",
                params=(low, low + 30),
                purpose="statistics",
                ordered=True,
                tables=("users",),
            )
        if roll < 0.7:
            # Exact-salary band: under the casework purpose rows degraded
            # past the exact level are excluded, so the comparison stays
            # int-vs-int on every variant.
            from .generator import SALARY_BASE, SALARY_STEP
            span = self.scenario.num_employees * SALARY_STEP
            low = SALARY_BASE + dist.uniform_int(0, max(1, span - 200))
            return Op(
                index=index, kind="range_scan",
                sql="SELECT id, user_id, salary FROM employee_records "
                    "WHERE salary >= ? AND salary <= ? ORDER BY id",
                params=(low, low + 200),
                purpose="casework",
                ordered=True,
                tables=("employee_records",),
            )
        low = dist.uniform_int(0, 300)
        return Op(
            index=index, kind="range_scan",
            sql="SELECT id, user_id, status FROM approvals "
                "WHERE granted_day >= ? AND granted_day <= ? ORDER BY id",
            params=(low, low + 45),
            tables=("approvals",),
        )

    def _join(self, index: int, dist: Distributions) -> Op:
        if dist.uniform(0, 1) < 0.6:
            return Op(
                index=index, kind="join",
                sql="SELECT job_applications.id, users.name, users.address "
                    "FROM job_applications JOIN users "
                    "ON job_applications.user_id = users.id "
                    "WHERE job_applications.company_id = ?",
                params=(dist.uniform_int(1, self.scenario.num_companies),),
                purpose="placement",
                tables=("job_applications", "users"),
            )
        return Op(
            index=index, kind="join",
            sql="SELECT employee_records.id, companies.name, "
                "employee_records.address FROM employee_records "
                "JOIN companies "
                "ON employee_records.company_id = companies.id "
                "WHERE companies.id = ?",
            params=(dist.uniform_int(1, self.scenario.num_companies),),
            purpose="statistics",
            tables=("employee_records", "companies"),
        )

    def _aggregate(self, index: int, dist: Distributions) -> Op:
        roll = dist.uniform(0, 1)
        if roll < 0.4:
            return Op(
                index=index, kind="aggregate",
                sql="SELECT status, COUNT(*) AS n FROM job_applications "
                    "GROUP BY status ORDER BY status",
                ordered=True,
                tables=("job_applications",),
            )
        if roll < 0.7:
            return Op(
                index=index, kind="aggregate",
                sql="SELECT address, COUNT(*) AS n FROM users "
                    "GROUP BY address",
                purpose="statistics",
                tables=("users",),
            )
        return Op(
            index=index, kind="aggregate",
            sql="SELECT applicant_address, COUNT(*) AS n "
                "FROM job_applications GROUP BY applicant_address",
            purpose="statistics",
            tables=("job_applications",),
        )

    def _insert(self, index: int, dist: Distributions, app_id: int) -> Op:
        return Op(
            index=index, kind="insert",
            sql="INSERT INTO job_applications "
                "(id, user_id, company_id, status, applicant_address, "
                "applied_day) VALUES (?, ?, ?, ?, ?, ?)",
            params=(app_id,
                    dist.zipf_index(self.scenario.num_users, 0.8) + 1,
                    dist.uniform_int(1, self.scenario.num_companies),
                    "new",
                    self.generator.sample_address(dist),
                    dist.uniform_int(0, 365)),
            tables=("job_applications",),
        )


# ---------------------------------------------------------------------- replay

def canonical_value(value: Any) -> Any:
    """Transport-independent token for one cell value.

    The degradation sentinels are identity singletons on both transports
    (the wire codec round-trips them by identity); canonicalization keeps
    them distinguishable from the equal-looking strings a buggy codec might
    produce instead.
    """
    if value is SUPPRESSED:
        return "\x00SUPPRESSED"
    if value is REMOVED:
        return "\x00REMOVED"
    if value is NULL or value is None:
        return "\x00NULL"
    return value


def canonical_rows(rows: Sequence[Sequence[Any]], ordered: bool) -> List[Tuple[Any, ...]]:
    canonical = [tuple(canonical_value(value) for value in row) for row in rows]
    if not ordered:
        canonical.sort(key=repr)
    return canonical


@dataclass
class OpResult:
    """Canonical outcome of one op on one variant (plus its latency)."""

    kind: str
    payload: Any
    seconds: float = 0.0

    def matches(self, other: "OpResult") -> bool:
        return self.kind == other.kind and self.payload == other.payload


@dataclass
class ReplayReport:
    """Everything one variant produced for one stream."""

    variant: str
    results: List[OpResult] = field(default_factory=list)
    retention_checks: int = 0
    retention_violations: int = 0

    @property
    def latencies(self) -> List[float]:
        return [result.seconds for result in self.results]


def run_op(variant: ScenarioVariant, op: Op,
           salaries: Optional[Dict[int, int]] = None) -> OpResult:
    """Execute one op on one variant and canonicalize the outcome."""
    started = time.perf_counter()
    if op.kind == "wave":
        variant.advance(op.advance)
        payload = {"clock": variant.engine_call(lambda db: db.clock.now()),
                   "steps": variant.steps_applied()}
        return OpResult("wave", payload, time.perf_counter() - started)
    if op.kind == "forensic":
        payload = variant.engine_call(retention_report, salaries or {})
        return OpResult("forensic", payload, time.perf_counter() - started)
    assert op.sql is not None
    cursor = variant.execute(op.sql, op.params, purpose=op.purpose)
    if op.sql.lstrip().upper().startswith("SELECT"):
        rows = cursor.fetchall()
        columns = tuple(d[0] for d in cursor.description) \
            if cursor.description else ()
        variant.commit()
        payload = {"columns": columns,
                   "rows": canonical_rows(rows, op.ordered)}
        return OpResult("rows", payload, time.perf_counter() - started)
    rowcount = cursor.rowcount
    variant.commit()
    return OpResult("rowcount", rowcount, time.perf_counter() - started)


def replay(variant: ScenarioVariant, ops: Sequence[Op],
           salaries: Optional[Dict[int, int]] = None,
           check_retention_on_waves: bool = False) -> ReplayReport:
    """Run a whole stream on one variant.

    With ``check_retention_on_waves`` the retention invariant checker runs
    after every wave op (the armed mode CI uses); violations are counted in
    the report rather than raised, so the caller chooses the failure mode.
    """
    from .retention import check_engine
    report = ReplayReport(variant=variant.name)
    for op in ops:
        report.results.append(run_op(variant, op, salaries=salaries))
        if check_retention_on_waves and op.kind == "wave":
            violations = variant.engine_call(check_engine)
            report.retention_checks += 1
            report.retention_violations += len(violations)
    return report


__all__ = [
    "Op", "OpStream", "OpResult", "ReplayReport", "DEFAULT_MIX",
    "canonical_value", "canonical_rows", "run_op", "replay",
    "WAVE_MIN_S", "WAVE_MAX_S",
]
