"""Deterministic seeded data generators for the inclusion scenario.

Built on the same :class:`~repro.workloads.distributions.Distributions`
substrate as the micro-workloads: every row of every table is a pure function
of ``(scale, seed)``, so the four engine variants (and a crashed twin after
recovery) load byte-identical data.  Scales from CI smoke (hundreds of rows)
to millions — generation is streaming, nothing is materialized beyond one
executemany batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Sequence, Tuple

from ..core.domains import build_diagnosis_tree, build_location_tree
from ..workloads.distributions import Distributions
from .inclusion import InclusionScenario

_SECTORS = ("construction", "hospitality", "logistics", "retail",
            "agriculture", "services", "industry", "care")

_APPLICATION_STATUSES = ("new", "processing", "accepted", "refused")
_APPLICATION_STATUS_WEIGHTS = (0.35, 0.3, 0.2, 0.15)

_APPROVAL_STATUSES = ("valid", "expired", "suspended")
_APPROVAL_STATUS_WEIGHTS = (0.7, 0.2, 0.1)

#: Salary base keeping every employee salary unique — the forensic scan
#: can then attribute a residual plaintext to exactly one row.
SALARY_BASE = 1_000_000
SALARY_STEP = 17


def employee_salary(employee_id: int) -> int:
    """The unique exact salary of ``employee_id`` (forensic-traceable)."""
    return SALARY_BASE + SALARY_STEP * employee_id


@dataclass
class TableBatch:
    """One executemany-sized slice of a table's rows."""

    table: str
    columns: Tuple[str, ...]
    rows: List[Tuple[Any, ...]]

    @property
    def insert_sql(self) -> str:
        placeholders = ", ".join("?" for _ in self.columns)
        return (f"INSERT INTO {self.table} ({', '.join(self.columns)}) "
                f"VALUES ({placeholders})")


class InclusionGenerator:
    """Generates the scenario's five tables deterministically from a seed."""

    def __init__(self, scenario: InclusionScenario, seed: int = 7,
                 zipf_skew: float = 0.8) -> None:
        self.scenario = scenario
        self.seed = seed
        self.zipf_skew = zipf_skew
        self.dist = Distributions(seed)
        location = build_location_tree()
        self._addresses: Sequence[str] = location.values_at_level(0) or ()
        self._diagnoses: Sequence[str] = \
            build_diagnosis_tree().values_at_level(0) or ()

    # -- samplers shared with the op stream ----------------------------------

    def sample_address(self, dist: Distributions) -> str:
        return dist.zipf_choice(self._addresses, self.zipf_skew)

    def sample_diagnosis(self, dist: Distributions) -> str:
        return dist.zipf_choice(self._diagnoses, self.zipf_skew)

    # -- per-table row generators --------------------------------------------

    def companies(self) -> TableBatch:
        dist = Distributions(self.seed * 31 + 1)
        rows = [
            (company_id, f"company_{company_id}",
             self.sample_address(dist).split(", ", 1)[1],
             dist.uniform_choice(_SECTORS))
            for company_id in range(1, self.scenario.num_companies + 1)
        ]
        return TableBatch("companies", ("id", "name", "city", "sector"), rows)

    def users(self) -> TableBatch:
        dist = Distributions(self.seed * 31 + 2)
        rows = [
            (user_id, f"user_{user_id}", self.sample_address(dist),
             self.sample_diagnosis(dist), dist.uniform_int(0, 365))
            for user_id in range(1, self.scenario.num_users + 1)
        ]
        return TableBatch(
            "users", ("id", "name", "address", "health_note", "signup_day"), rows)

    def approvals(self) -> TableBatch:
        dist = Distributions(self.seed * 31 + 3)
        rows = [
            (approval_id, dist.uniform_int(1, self.scenario.num_users),
             f"PASS-{100000 + approval_id}", dist.uniform_int(0, 365),
             dist.weighted_choice(_APPROVAL_STATUSES, _APPROVAL_STATUS_WEIGHTS))
            for approval_id in range(1, self.scenario.num_approvals + 1)
        ]
        return TableBatch(
            "approvals", ("id", "user_id", "number", "granted_day", "status"),
            rows)

    def employee_records(self) -> TableBatch:
        dist = Distributions(self.seed * 31 + 4)
        rows = [
            (employee_id, dist.uniform_int(1, self.scenario.num_users),
             dist.uniform_int(1, self.scenario.num_companies),
             employee_salary(employee_id), self.sample_address(dist),
             dist.uniform_int(0, 365))
            for employee_id in range(1, self.scenario.num_employees + 1)
        ]
        return TableBatch(
            "employee_records",
            ("id", "user_id", "company_id", "salary", "address", "hired_day"),
            rows)

    def job_applications(self) -> TableBatch:
        dist = Distributions(self.seed * 31 + 5)
        rows = [
            (app_id,
             dist.zipf_index(self.scenario.num_users, self.zipf_skew) + 1,
             dist.uniform_int(1, self.scenario.num_companies),
             dist.weighted_choice(_APPLICATION_STATUSES,
                                  _APPLICATION_STATUS_WEIGHTS),
             self.sample_address(dist), dist.uniform_int(0, 365))
            for app_id in range(1, self.scenario.num_applications + 1)
        ]
        return TableBatch(
            "job_applications",
            ("id", "user_id", "company_id", "status", "applicant_address",
             "applied_day"),
            rows)

    def batches(self, batch_size: int = 500) -> Iterator[TableBatch]:
        """Every table's rows, in FK-safe load order, chunked for executemany."""
        for whole in (self.companies(), self.users(), self.approvals(),
                      self.employee_records(), self.job_applications()):
            for start in range(0, len(whole.rows), batch_size):
                yield TableBatch(whole.table, whole.columns,
                                 whole.rows[start:start + batch_size])

    def load(self, connection: Any, batch_size: int = 500) -> Dict[str, int]:
        """Load the whole scenario through a PEP 249 connection.

        One executemany per batch (parse once, bind N, one commit) keeps the
        load path identical for the in-process and the remote driver.
        Returns rows loaded per table.
        """
        counts: Dict[str, int] = {}
        for batch in self.batches(batch_size):
            cursor = connection.cursor()
            cursor.executemany(batch.insert_sql, batch.rows)
            connection.commit()
            counts[batch.table] = counts.get(batch.table, 0) + len(batch.rows)
        return counts

    def sensitive_salaries(self) -> Dict[int, int]:
        """employee_id → exact salary, the forensic scan's target set."""
        return {employee_id: employee_salary(employee_id)
                for employee_id in range(1, self.scenario.num_employees + 1)}


__all__ = ["InclusionGenerator", "TableBatch", "employee_salary",
           "SALARY_BASE", "SALARY_STEP"]
