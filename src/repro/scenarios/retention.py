"""Retention invariant checker: is anything more accurate than allowed?

The paper's promise, stated as a checkable invariant: **for every live row and
every degradable attribute, the stored accuracy level is at least the level
the attribute's life cycle policy mandates at the current (simulated) clock.**
A violation means a query — or a forensic attacker — could read data at an
accuracy its retention schedule already forbids.

The checker recomputes the mandated floor from first principles (the policy
automaton's ``level_at`` over ``now - inserted_at``), deliberately *not*
through the scheduler: it cross-checks the entire degradation pipeline
(scheduler, daemon, batch applier, segment waves, recovery catch-up) against
the declarative policy.

A second, byte-level check drives the same invariant down to the forensic
surface: once an attribute's accurate plaintext is past its first transition,
it must no longer be recoverable from heap pages, WAL images or index keys
(:mod:`repro.privacy.forensic`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..engine.database import InstantDB
from ..privacy.forensic import scan_engine


@dataclass(frozen=True)
class RetentionViolation:
    """One attribute readable above (more accurate than) its mandated floor."""

    table: str
    row_key: int
    column: str
    stored_level: int
    required_level: int
    elapsed: float

    def describe(self) -> str:
        return (f"{self.table}[row {self.row_key}].{self.column}: stored at "
                f"level {self.stored_level}, policy mandates >= "
                f"{self.required_level} after {self.elapsed / 86400:.2f} days")


def check_engine(db: InstantDB) -> List[RetentionViolation]:
    """Scan every table for attributes lagging their policy's accuracy floor.

    Event-triggered policies have no time-derivable floor and are skipped;
    every scenario policy is timed-only so nothing is skipped here.
    """
    violations: List[RetentionViolation] = []
    now = db.clock.now()
    for info in db.catalog.tables():
        policy = info.policy
        if policy is None or not policy.has_degradable_columns():
            continue
        store = db.stores.get(info.name)
        if store is None:
            continue
        for stored in store.scan():
            selector_value = None
            if policy.selector_column is not None:
                selector_value = stored.values.get(policy.selector_column)
            tuple_lcp = policy.tuple_lcp(selector_value)
            elapsed = max(0.0, now - stored.inserted_at)
            for column, lcp in tuple_lcp.attributes.items():
                if not lcp.timed_only:
                    continue
                required = lcp.level_at(elapsed)
                stored_level = stored.levels.get(column, 0)
                if stored_level < required:
                    violations.append(RetentionViolation(
                        table=info.name, row_key=stored.row_key, column=column,
                        stored_level=stored_level, required_level=required,
                        elapsed=elapsed,
                    ))
    return violations


def forensic_leaks(db: InstantDB, expired_values: Sequence[Any]) -> int:
    """How many of ``expired_values`` are still recoverable from raw bytes.

    ``expired_values`` must be plaintexts unique to rows whose degradation
    deadline has passed (shared values would produce false positives from
    younger rows that legitimately still carry them).
    """
    if not expired_values:
        return 0
    return len(scan_engine(db, list(expired_values)).residual_values)


def expired_employee_salaries(db: InstantDB,
                              salaries: Dict[int, int],
                              grace: float = 0.0,
                              limit: int = 50) -> List[int]:
    """The subset of unique employee salaries already past their exact-level
    deadline at the engine's clock (capped at ``limit`` for scan cost).

    Works from insert timestamps still present in the store; employees whose
    rows were already *removed* outlived their whole policy, so their exact
    salary is expired by definition.
    """
    info = db.catalog.table("employee_records")
    policy = info.policy
    if policy is None:
        return []
    lcp = policy.policy_for("salary")
    first_delay = lcp.entry_times()[1]
    now = db.clock.now()
    live_inserted: Dict[int, float] = {}
    store = db.stores.get("employee_records")
    if store is not None:
        for stored in store.scan():
            employee_id = stored.values.get("id")
            if isinstance(employee_id, int):
                live_inserted[employee_id] = stored.inserted_at
    expired: List[int] = []
    for employee_id, salary in sorted(salaries.items()):
        inserted_at = live_inserted.get(employee_id)
        if inserted_at is None:
            # Row gone: either removed by policy (expired for sure) or never
            # loaded; both ways its plaintext must not be recoverable.
            expired.append(salary)
        elif now - inserted_at > first_delay:
            expired.append(salary)
        if len(expired) >= limit:
            break
    return expired


def retention_report(db: InstantDB,
                     salaries: Optional[Dict[int, int]] = None) -> Dict[str, int]:
    """The checker's two counters, as one comparable dictionary.

    This is what the differential oracle records for a ``forensic`` op: the
    invariant must hold (both zero) on *every* variant, so the dictionaries
    must also be equal across variants.
    """
    violations = check_engine(db)
    leaks = 0
    if salaries:
        leaks = forensic_leaks(db, expired_employee_salaries(db, salaries))
    return {"violations": len(violations), "leaks": leaks}


__all__ = ["RetentionViolation", "check_engine", "forensic_leaks",
           "expired_employee_salaries", "retention_report"]
