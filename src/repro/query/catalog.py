"""Catalog: tables, domains, life cycle policies, purposes and indexes.

The catalog is pure metadata — the engine owns the runtime objects (table
stores, index instances) and registers them here so the planner and executor
can find them by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import CatalogError
from ..core.generalization import GeneralizationScheme
from ..core.lcp import AttributeLCP
from ..core.policy import PolicyRegistry, Purpose, TablePolicy
from ..core.schema import TableSchema
from ..index.base import Index


@dataclass
class IndexInfo:
    """Metadata of one secondary index."""

    name: str
    table: str
    column: str
    method: str
    index: Index


@dataclass
class TableInfo:
    """Metadata of one table."""

    schema: TableSchema
    policy: Optional[TablePolicy] = None
    indexes: Dict[str, IndexInfo] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.schema.name

    def indexes_on(self, column: str) -> List[IndexInfo]:
        column = column.lower()
        return [info for info in self.indexes.values() if info.column == column]


class Catalog:
    """Name → metadata registry shared by the DDL layer, planner and executor."""

    def __init__(self, registry: Optional[PolicyRegistry] = None) -> None:
        self.registry = registry or PolicyRegistry()
        self._tables: Dict[str, TableInfo] = {}
        self._purposes: Dict[str, Purpose] = {}
        #: Bumped on every metadata change; cached query plans are only valid
        #: for the version they were built against.
        self.version = 0
        #: Optional :class:`~repro.query.statistics.StatisticsRegistry` the
        #: engine attaches so the planner can cost access paths; ``None``
        #: keeps the stats-free heuristic planner.
        self.statistics = None
        #: Read-path optimizations toggle (column pruning, index-only scans);
        #: the engine sets this False in baseline/benchmark-comparison mode.
        self.read_optimized = True
        #: Tables with a columnar segment mirror attached: sequential scans
        #: over them are planned as vectorized ColumnarScans (when
        #: ``read_optimized`` — the baseline never sees columnar plans).
        self._columnar_tables: set = set()

    # -- columnar registration -------------------------------------------------

    def set_columnar(self, table: str) -> None:
        """Record that ``table`` has columnar segments; invalidates cached
        plans (version bump) so they re-plan onto ColumnarScan."""
        name = self.table(table).name
        if name not in self._columnar_tables:
            self._columnar_tables.add(name)
            self.version += 1

    def clear_columnar(self, table: str) -> None:
        name = table.lower()
        if name in self._columnar_tables:
            self._columnar_tables.discard(name)
            self.version += 1

    def is_columnar(self, table: str) -> bool:
        return table.lower() in self._columnar_tables

    # -- tables ----------------------------------------------------------------

    def add_table(self, schema: TableSchema, policy: Optional[TablePolicy] = None) -> TableInfo:
        name = schema.name
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        info = TableInfo(schema=schema, policy=policy)
        self._tables[name] = info
        self.version += 1
        return info

    def drop_table(self, name: str) -> TableInfo:
        try:
            info = self._tables.pop(name.lower())
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None
        self._columnar_tables.discard(name.lower())
        self.version += 1
        return info

    def table(self, name: str) -> TableInfo:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> List[TableInfo]:
        return list(self._tables.values())

    # -- indexes ---------------------------------------------------------------

    def add_index(self, info: IndexInfo) -> None:
        table = self.table(info.table)
        if info.name in table.indexes:
            raise CatalogError(f"index {info.name!r} already exists on {info.table!r}")
        table.schema.column(info.column)   # validates the column exists
        table.indexes[info.name] = info
        self.version += 1

    def index(self, table: str, name: str) -> IndexInfo:
        info = self.table(table).indexes.get(name)
        if info is None:
            raise CatalogError(f"unknown index {name!r} on table {table!r}")
        return info

    # -- purposes ----------------------------------------------------------------

    def add_purpose(self, purpose: Purpose, replace: bool = True) -> Purpose:
        key = purpose.name.lower()
        if not replace and key in self._purposes:
            raise CatalogError(f"purpose {purpose.name!r} already declared")
        self._purposes[key] = purpose
        self.version += 1
        return purpose

    def purpose(self, name: str) -> Purpose:
        try:
            return self._purposes[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown purpose {name!r}") from None

    def has_purpose(self, name: str) -> bool:
        return name.lower() in self._purposes

    def purposes(self) -> List[Purpose]:
        return list(self._purposes.values())

    # -- degradation helpers --------------------------------------------------------

    def scheme_for(self, table: str, column: str) -> GeneralizationScheme:
        info = self.table(table)
        column_def = info.schema.column(column)
        if not column_def.degradable or column_def.domain is None:
            raise CatalogError(
                f"column {table}.{column} is not degradable"
            )
        return self.registry.domain(column_def.domain)

    def policy_for(self, table: str, column: str) -> AttributeLCP:
        info = self.table(table)
        if info.policy is None:
            raise CatalogError(f"table {table!r} has no degradation policy")
        return info.policy.policy_for(column)

    def demanded_level(self, purpose: Optional[Purpose], table: str,
                       column: str) -> Optional[int]:
        """Accuracy level demanded by ``purpose`` for a degradable column.

        * With no purpose at all, every degradable column is demanded at the
          most accurate level (0) — the paper's conservative default, under
          which degraded tuples simply vanish from plain queries.
        * With a purpose that does not mention the column, ``None`` is
          returned: the column is unconstrained and observed at whatever
          accuracy the life cycle policy left behind.
        """
        scheme = self.scheme_for(table, column)
        if purpose is None:
            return 0
        return purpose.accuracy_for(table, column, scheme)


__all__ = ["Catalog", "TableInfo", "IndexInfo"]
