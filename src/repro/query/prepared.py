"""Prepared statements and the engine's statement cache.

Parsing is the dominant per-statement cost of the SQL front-end, so the
engine keeps an LRU cache of parsed statements keyed on the exact SQL text.
A :class:`PreparedStatement` is immutable once parsed: binding parameters
(:meth:`PreparedStatement.bind`) rebuilds the AST with literals substituted
and never mutates the cached tree, so one prepared statement can safely be
bound N times inside ``executemany``.

Parameter-free ``SELECT`` statements additionally cache their *physical*
plan per (purpose, catalog version): repeated identical queries — the common
shape of the OLTP benchmark mixes — skip accuracy binding, access-path
selection and the residual-predicate split entirely; only the (cheap)
operator-tree instantiation happens per execution.  A catalog change (new
table, index or purpose) bumps the catalog version and implicitly invalidates
every cached plan.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from ..core.policy import Purpose
from . import ast_nodes as ast
from .parameters import bind_parameters, count_placeholders
from .parser import parse
from .planner import PhysicalPlan


@dataclass
class PreparedStatement:
    """One parsed statement plus its binding/plan-reuse metadata."""

    sql: str
    statement: ast.Statement
    param_count: int
    executions: int = 0
    #: (purpose name, catalog version) -> physical plan; only used when
    #: param_count == 0.
    _plans: Dict[Tuple[Optional[str], int], PhysicalPlan] = field(default_factory=dict)

    def bind(self, params: Optional[Sequence[Any]] = None) -> ast.Statement:
        """Return an executable statement with ``params`` substituted."""
        if params is None:
            params = ()
        if self.param_count == 0 and not params:
            return self.statement
        return bind_parameters(self.statement, params, expected=self.param_count)

    # -- plan reuse ----------------------------------------------------------

    def cached_plan(self, purpose: Optional[Purpose],
                    catalog_version: int) -> Optional[PhysicalPlan]:
        if self.param_count != 0:
            return None
        return self._plans.get((_purpose_key(purpose), catalog_version))

    def store_plan(self, purpose: Optional[Purpose], catalog_version: int,
                   plan: PhysicalPlan) -> None:
        if self.param_count != 0:
            return
        # Plans from stale catalog versions can never be reused again.
        for key in [key for key in self._plans if key[1] != catalog_version]:
            del self._plans[key]
        self._plans[(_purpose_key(purpose), catalog_version)] = plan


def _purpose_key(purpose: Optional[Purpose]) -> Optional[str]:
    return None if purpose is None else purpose.name.lower()


@dataclass
class StatementCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    #: Plans whose predicate/projection closures were compiled for this
    #: execution vs. served already-compiled from the plan cache — the proof
    #: that prepared-statement re-execution does zero compilation (same
    #: pattern as ``WALStats.payload_encodes`` / ``payload_cache_hits``).
    predicate_compiles: int = 0
    predicate_compile_hits: int = 0


class StatementCache:
    """LRU cache of :class:`PreparedStatement` objects keyed on SQL text."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[str, PreparedStatement]" = OrderedDict()
        self.stats = StatementCacheStats()

    def get_or_parse(self, sql: str) -> PreparedStatement:
        prepared = self._entries.get(sql)
        if prepared is not None:
            self._entries.move_to_end(sql)
            self.stats.hits += 1
            return prepared
        statement = parse(sql)
        prepared = PreparedStatement(
            sql=sql, statement=statement,
            param_count=count_placeholders(statement),
        )
        self._entries[sql] = prepared
        self.stats.misses += 1
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return prepared

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, sql: str) -> bool:
        return sql in self._entries


__all__ = ["PreparedStatement", "StatementCache", "StatementCacheStats"]
