"""Prepared statements and the engine's statement cache.

Parsing is the dominant per-statement cost of the SQL front-end, so the
engine keeps an LRU cache of parsed statements keyed on the exact SQL text.
A :class:`PreparedStatement` is immutable once parsed: binding parameters
(:meth:`PreparedStatement.bind`) rebuilds the AST with literals substituted
and never mutates the cached tree, so one prepared statement can safely be
bound N times inside ``executemany``.

Parameter-free ``SELECT`` statements additionally cache their *physical*
plan per (purpose, catalog version, statistics epoch): repeated identical
queries — the common shape of the OLTP benchmark mixes — skip accuracy
binding, access-path selection and the residual-predicate split entirely;
only the (cheap) operator-tree instantiation happens per execution.  A
catalog change (new table, index or purpose) bumps the catalog version, and
a large-enough statistics shift (e.g. a degradation wave collapsing NDV)
bumps the registry's statistics epoch — either implicitly invalidates every
cached plan, so a plan can never outlive the economics it was costed under.

Parameterized ``SELECT`` statements whose placeholders all sit in the WHERE
clause cache a *template* plan per parameter shape (the tuple of bound value
types): the template is planned once with
:class:`~repro.query.planner.ParamMarker` slots in its access paths, and
every execution binds values into a copy via
:func:`~repro.query.planner.bind_physical_plan` instead of re-planning.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from ..core.policy import Purpose
from . import ast_nodes as ast
from .parameters import bind_parameters, count_placeholders
from .parser import parse
from .planner import PhysicalPlan

#: Max distinct (purpose, shape) template plans kept per prepared statement.
PARAM_PLAN_CACHE_SIZE = 8


@dataclass
class PreparedStatement:
    """One parsed statement plus its binding/plan-reuse metadata."""

    sql: str
    statement: ast.Statement
    param_count: int
    executions: int = 0
    #: (purpose name, catalog version, stats epoch) -> physical plan; only
    #: used when param_count == 0.
    _plans: Dict[Tuple[Optional[str], int, int], PhysicalPlan] = \
        field(default_factory=dict)
    #: (purpose name, catalog version, stats epoch, param shape) -> template
    #: plan with ParamMarker slots; only used when param_count > 0.
    _param_plans: "OrderedDict[Tuple[Optional[str], int, int, Tuple[str, ...]], PhysicalPlan]" = \
        field(default_factory=OrderedDict)
    _where_confined: Optional[bool] = field(default=None, repr=False)

    def bind(self, params: Optional[Sequence[Any]] = None) -> ast.Statement:
        """Return an executable statement with ``params`` substituted."""
        if params is None:
            params = ()
        if self.param_count == 0 and not params:
            return self.statement
        return bind_parameters(self.statement, params, expected=self.param_count)

    # -- plan reuse ----------------------------------------------------------

    def cached_plan(self, purpose: Optional[Purpose], catalog_version: int,
                    stats_epoch: int = 0) -> Optional[PhysicalPlan]:
        if self.param_count != 0:
            return None
        return self._plans.get((_purpose_key(purpose), catalog_version,
                                stats_epoch))

    def store_plan(self, purpose: Optional[Purpose], catalog_version: int,
                   plan: PhysicalPlan, stats_epoch: int = 0) -> None:
        if self.param_count != 0:
            return
        # Plans from stale catalog versions or statistics epochs can never
        # be reused again.
        for key in [key for key in self._plans
                    if key[1] != catalog_version or key[2] != stats_epoch]:
            del self._plans[key]
        self._plans[(_purpose_key(purpose), catalog_version, stats_epoch)] = plan

    # -- parameter-shape template plans ---------------------------------------

    @property
    def placeholders_confined_to_where(self) -> bool:
        """All placeholders sit in the WHERE clause of a SELECT.

        Only then is template planning safe: the projection, joins, grouping
        and ordering are parameter-independent, so the compiled closures can
        be shared across executions and only the access-path values and the
        residual predicate need per-execution binding.
        """
        if self._where_confined is None:
            statement = self.statement
            self._where_confined = (
                isinstance(statement, ast.Select)
                and statement.where is not None
                and count_placeholders(statement.where) == self.param_count
            )
        return self._where_confined

    def cached_param_plan(self, purpose: Optional[Purpose],
                          catalog_version: int, stats_epoch: int,
                          shape: Tuple[str, ...]) -> Optional[PhysicalPlan]:
        key = (_purpose_key(purpose), catalog_version, stats_epoch, shape)
        plan = self._param_plans.get(key)
        if plan is not None:
            self._param_plans.move_to_end(key)
        return plan

    def store_param_plan(self, purpose: Optional[Purpose],
                         catalog_version: int, stats_epoch: int,
                         shape: Tuple[str, ...], plan: PhysicalPlan) -> None:
        for key in [key for key in self._param_plans
                    if key[1] != catalog_version or key[2] != stats_epoch]:
            del self._param_plans[key]
        self._param_plans[(_purpose_key(purpose), catalog_version,
                           stats_epoch, shape)] = plan
        while len(self._param_plans) > PARAM_PLAN_CACHE_SIZE:
            self._param_plans.popitem(last=False)


def _purpose_key(purpose: Optional[Purpose]) -> Optional[str]:
    return None if purpose is None else purpose.name.lower()


@dataclass
class StatementCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    #: Plans whose predicate/projection closures were compiled for this
    #: execution vs. served already-compiled from the plan cache — the proof
    #: that prepared-statement re-execution does zero compilation (same
    #: pattern as ``WALStats.payload_encodes`` / ``payload_cache_hits``).
    predicate_compiles: int = 0
    predicate_compile_hits: int = 0


class StatementCache:
    """LRU cache of :class:`PreparedStatement` objects keyed on SQL text."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[str, PreparedStatement]" = OrderedDict()
        self.stats = StatementCacheStats()

    def get_or_parse(self, sql: str) -> PreparedStatement:
        prepared = self._entries.get(sql)
        if prepared is not None:
            self._entries.move_to_end(sql)
            self.stats.hits += 1
            return prepared
        statement = parse(sql)
        prepared = PreparedStatement(
            sql=sql, statement=statement,
            param_count=count_placeholders(statement),
        )
        self._entries[sql] = prepared
        self.stats.misses += 1
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return prepared

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, sql: str) -> bool:
        return sql in self._entries


__all__ = ["PreparedStatement", "StatementCache", "StatementCacheStats",
           "PARAM_PLAN_CACHE_SIZE"]
