"""Abstract syntax tree of the supported SQL dialect.

The dialect is classic SQL (CREATE TABLE / INSERT / SELECT / UPDATE / DELETE)
plus the paper's privacy extensions:

* ``DEGRADABLE DOMAIN <domain> POLICY <policy>`` column options;
* ``DECLARE PURPOSE <name> SET ACCURACY LEVEL <level> FOR <table>.<column>, ...``;
* ``CREATE INDEX <name> ON <table> (<column>) USING <btree|hash|bitmap|gt>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


# -- expressions ---------------------------------------------------------------


class Expression:
    """Base class of scalar expressions."""


@dataclass(frozen=True)
class Literal(Expression):
    value: Any


@dataclass(frozen=True)
class Placeholder(Expression):
    """A ``?`` qmark parameter (PEP 249); ``index`` is its 0-based position.

    Placeholders appear both as expressions (``WHERE salary > ?``) and as raw
    values inside :class:`Insert` rows, :class:`InList` values and
    :class:`Update` assignments.  They must be substituted through
    :func:`repro.query.parameters.bind_parameters` before execution.
    """

    index: int


@dataclass(frozen=True)
class ColumnRef(Expression):
    column: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Comparison(Expression):
    left: Expression
    operator: str           # =, !=, <, <=, >, >=, LIKE
    right: Expression


@dataclass(frozen=True)
class InList(Expression):
    operand: Expression
    values: Tuple[Any, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class BooleanOp(Expression):
    operator: str            # AND / OR
    operands: Tuple[Expression, ...]


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression


@dataclass(frozen=True)
class Aggregate(Expression):
    function: str             # COUNT / SUM / AVG / MIN / MAX
    argument: Optional[ColumnRef]   # None for COUNT(*)
    distinct: bool = False

    @property
    def display_name(self) -> str:
        arg = "*" if self.argument is None else self.argument.qualified
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.function}({prefix}{arg})"


# -- select items ----------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expression: Expression
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.column
        if isinstance(self.expression, Aggregate):
            return self.expression.display_name.lower()
        return "expr"


@dataclass(frozen=True)
class Star:
    """``SELECT *``."""


@dataclass(frozen=True)
class OrderItem:
    column: ColumnRef
    descending: bool = False


@dataclass(frozen=True)
class JoinClause:
    table: str
    alias: Optional[str]
    left: ColumnRef
    right: ColumnRef
    kind: str = "inner"


# -- statements ----------------------------------------------------------------------


class Statement:
    """Base class of statements."""


@dataclass(frozen=True)
class ColumnDefinition:
    name: str
    type_name: str
    primary_key: bool = False
    not_null: bool = False
    degradable: bool = False
    domain: Optional[str] = None
    policy: Optional[str] = None


@dataclass(frozen=True)
class CreateTable(Statement):
    table: str
    columns: Tuple[ColumnDefinition, ...]


@dataclass(frozen=True)
class CreateIndex(Statement):
    name: str
    table: str
    column: str
    method: str = "btree"


@dataclass(frozen=True)
class Insert(Statement):
    table: str
    columns: Optional[Tuple[str, ...]]
    rows: Tuple[Tuple[Any, ...], ...]


@dataclass(frozen=True)
class Select(Statement):
    table: str
    items: Tuple[Any, ...]                 # SelectItem or Star
    table_alias: Optional[str] = None
    joins: Tuple[JoinClause, ...] = ()
    where: Optional[Expression] = None
    group_by: Tuple[ColumnRef, ...] = ()
    having: Optional[Expression] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None

    @property
    def is_aggregate(self) -> bool:
        if self.group_by:
            return True
        return any(
            isinstance(item, SelectItem) and isinstance(item.expression, Aggregate)
            for item in self.items
        )


@dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: Tuple[Tuple[str, Any], ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class AccuracyClause:
    level: Any                 # level name (str) or index (int)
    table: str
    column: str


@dataclass(frozen=True)
class DeclarePurpose(Statement):
    name: str
    clauses: Tuple[AccuracyClause, ...]


@dataclass(frozen=True)
class DropTable(Statement):
    table: str


@dataclass(frozen=True)
class Explain(Statement):
    statement: Statement
    #: ``EXPLAIN ANALYZE``: execute the statement and annotate the rendered
    #: operator tree with per-operator row counts.
    analyze: bool = False


__all__ = [
    "Expression", "Literal", "Placeholder", "ColumnRef", "Comparison", "InList", "Between",
    "IsNull", "BooleanOp", "Not", "Aggregate", "SelectItem", "Star",
    "OrderItem", "JoinClause", "Statement", "ColumnDefinition", "CreateTable",
    "CreateIndex", "Insert", "Select", "Update", "Delete", "AccuracyClause",
    "DeclarePurpose", "DropTable", "Explain",
]
