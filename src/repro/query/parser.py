"""Recursive descent parser for the supported SQL dialect."""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..core.errors import ParseError
from . import ast_nodes as ast
from .tokens import Token, TokenStream, TokenType, tokenize

_AGGREGATE_KEYWORDS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement."""
    stream = TokenStream(tokenize(sql))
    statement = _parse_statement(stream)
    stream.accept_punctuation(";")
    token = stream.peek()
    if token.token_type is not TokenType.EOF:
        raise ParseError(f"unexpected trailing input at {token} (offset {token.position})")
    return statement


def parse_script(sql: str) -> List[ast.Statement]:
    """Parse a semicolon separated list of statements."""
    stream = TokenStream(tokenize(sql))
    statements = []
    while stream.peek().token_type is not TokenType.EOF:
        statements.append(_parse_statement(stream))
        while stream.accept_punctuation(";"):
            pass
    return statements


def _parse_statement(stream: TokenStream) -> ast.Statement:
    token = stream.peek()
    if token.matches_keyword("EXPLAIN"):
        stream.advance()
        analyze = bool(stream.accept_keyword("ANALYZE"))
        return ast.Explain(_parse_statement(stream), analyze=analyze)
    if token.matches_keyword("SELECT"):
        return _parse_select(stream)
    if token.matches_keyword("INSERT"):
        return _parse_insert(stream)
    if token.matches_keyword("UPDATE"):
        return _parse_update(stream)
    if token.matches_keyword("DELETE"):
        return _parse_delete(stream)
    if token.matches_keyword("CREATE"):
        return _parse_create(stream)
    if token.matches_keyword("DROP"):
        return _parse_drop(stream)
    if token.matches_keyword("DECLARE"):
        return _parse_declare_purpose(stream)
    raise ParseError(f"unsupported statement starting with {token} at offset {token.position}")


# -- CREATE --------------------------------------------------------------------


def _parse_create(stream: TokenStream) -> ast.Statement:
    stream.expect_keyword("CREATE")
    if stream.accept_keyword("TABLE"):
        return _parse_create_table(stream)
    if stream.accept_keyword("INDEX"):
        return _parse_create_index(stream)
    raise ParseError(f"expected TABLE or INDEX after CREATE, got {stream.peek()}")


def _parse_create_table(stream: TokenStream) -> ast.CreateTable:
    table = stream.expect_identifier().value
    stream.expect_punctuation("(")
    columns: List[ast.ColumnDefinition] = []
    while True:
        columns.append(_parse_column_definition(stream))
        if stream.accept_punctuation(","):
            continue
        break
    stream.expect_punctuation(")")
    return ast.CreateTable(table=table, columns=tuple(columns))


def _parse_column_definition(stream: TokenStream) -> ast.ColumnDefinition:
    name = stream.expect_identifier().value
    type_name = stream.expect_identifier().value
    primary_key = False
    not_null = False
    degradable = False
    domain: Optional[str] = None
    policy: Optional[str] = None
    while True:
        if stream.accept_keyword("PRIMARY"):
            stream.expect_keyword("KEY")
            primary_key = True
            continue
        if stream.accept_keyword("NOT"):
            stream.expect_keyword("NULL")
            not_null = True
            continue
        if stream.accept_keyword("DEGRADABLE"):
            degradable = True
            if stream.accept_keyword("DOMAIN"):
                domain = stream.expect_identifier().value
            continue
        if stream.accept_keyword("POLICY"):
            policy = stream.expect_identifier().value
            continue
        break
    return ast.ColumnDefinition(
        name=name, type_name=type_name, primary_key=primary_key, not_null=not_null,
        degradable=degradable, domain=domain, policy=policy,
    )


def _parse_create_index(stream: TokenStream) -> ast.CreateIndex:
    name = stream.expect_identifier().value
    stream.expect_keyword("ON")
    table = stream.expect_identifier().value
    stream.expect_punctuation("(")
    column = stream.expect_identifier().value
    stream.expect_punctuation(")")
    method = "btree"
    if stream.accept_keyword("USING"):
        method = stream.expect_identifier().value.lower()
    return ast.CreateIndex(name=name, table=table, column=column, method=method)


def _parse_drop(stream: TokenStream) -> ast.DropTable:
    stream.expect_keyword("DROP")
    stream.expect_keyword("TABLE")
    table = stream.expect_identifier().value
    return ast.DropTable(table=table)


# -- INSERT ---------------------------------------------------------------------


def _parse_insert(stream: TokenStream) -> ast.Insert:
    stream.expect_keyword("INSERT")
    stream.expect_keyword("INTO")
    table = stream.expect_identifier().value
    columns: Optional[Tuple[str, ...]] = None
    if stream.accept_punctuation("("):
        names = [stream.expect_identifier().value]
        while stream.accept_punctuation(","):
            names.append(stream.expect_identifier().value)
        stream.expect_punctuation(")")
        columns = tuple(names)
    stream.expect_keyword("VALUES")
    rows: List[Tuple[Any, ...]] = []
    while True:
        stream.expect_punctuation("(")
        values = [_parse_literal_value(stream)]
        while stream.accept_punctuation(","):
            values.append(_parse_literal_value(stream))
        stream.expect_punctuation(")")
        rows.append(tuple(values))
        if stream.accept_punctuation(","):
            continue
        break
    return ast.Insert(table=table, columns=columns, rows=tuple(rows))


def _parse_literal_value(stream: TokenStream) -> Any:
    token = stream.peek()
    if token.token_type is TokenType.PUNCTUATION and token.value == "?":
        stream.advance()
        return ast.Placeholder(stream.next_placeholder_index())
    if token.token_type is TokenType.STRING:
        stream.advance()
        return token.value
    if token.token_type is TokenType.NUMBER:
        stream.advance()
        return _number(token.value)
    if token.matches_keyword("NULL"):
        stream.advance()
        return None
    if token.matches_keyword("TRUE"):
        stream.advance()
        return True
    if token.matches_keyword("FALSE"):
        stream.advance()
        return False
    if token.token_type is TokenType.OPERATOR and token.value == "-":
        stream.advance()
        number = stream.peek()
        if number.token_type is not TokenType.NUMBER:
            raise ParseError(f"expected number after '-', got {number}")
        stream.advance()
        return -_number(number.value)
    raise ParseError(f"expected literal value, got {token} at offset {token.position}")


def _number(text: str) -> Any:
    return float(text) if "." in text else int(text)


# -- SELECT -----------------------------------------------------------------------


def _parse_select(stream: TokenStream) -> ast.Select:
    stream.expect_keyword("SELECT")
    items = _parse_select_items(stream)
    stream.expect_keyword("FROM")
    table = stream.expect_identifier().value
    table_alias = None
    if stream.accept_keyword("AS"):
        table_alias = stream.expect_identifier().value
    elif stream.peek().token_type is TokenType.IDENTIFIER:
        table_alias = stream.advance().value
    joins: List[ast.JoinClause] = []
    while True:
        kind = "inner"
        if stream.accept_keyword("LEFT"):
            kind = "left"
            stream.expect_keyword("JOIN")
        elif stream.accept_keyword("INNER"):
            stream.expect_keyword("JOIN")
        elif stream.accept_keyword("JOIN"):
            pass
        else:
            break
        join_table = stream.expect_identifier().value
        join_alias = None
        if stream.accept_keyword("AS"):
            join_alias = stream.expect_identifier().value
        elif stream.peek().token_type is TokenType.IDENTIFIER and not stream.peek().matches_keyword("ON"):
            join_alias = stream.advance().value
        stream.expect_keyword("ON")
        left = _parse_column_ref(stream)
        operator = stream.accept_operator("=")
        if operator is None:
            raise ParseError("only equi-joins are supported")
        right = _parse_column_ref(stream)
        joins.append(ast.JoinClause(table=join_table, alias=join_alias,
                                    left=left, right=right, kind=kind))
    where = None
    if stream.accept_keyword("WHERE"):
        where = _parse_expression(stream)
    group_by: List[ast.ColumnRef] = []
    if stream.accept_keyword("GROUP"):
        stream.expect_keyword("BY")
        group_by.append(_parse_column_ref(stream))
        while stream.accept_punctuation(","):
            group_by.append(_parse_column_ref(stream))
    having = None
    if stream.accept_keyword("HAVING"):
        having = _parse_expression(stream)
    order_by: List[ast.OrderItem] = []
    if stream.accept_keyword("ORDER"):
        stream.expect_keyword("BY")
        while True:
            column = _parse_column_ref(stream)
            descending = False
            if stream.accept_keyword("DESC"):
                descending = True
            else:
                stream.accept_keyword("ASC")
            order_by.append(ast.OrderItem(column=column, descending=descending))
            if stream.accept_punctuation(","):
                continue
            break
    limit = None
    if stream.accept_keyword("LIMIT"):
        token = stream.peek()
        if token.token_type is not TokenType.NUMBER:
            raise ParseError(f"expected number after LIMIT, got {token}")
        stream.advance()
        limit = int(float(token.value))
    return ast.Select(
        table=table, table_alias=table_alias, items=tuple(items), joins=tuple(joins),
        where=where, group_by=tuple(group_by), having=having,
        order_by=tuple(order_by), limit=limit,
    )


def _parse_select_items(stream: TokenStream) -> List[Any]:
    items: List[Any] = []
    while True:
        token = stream.peek()
        if token.token_type is TokenType.OPERATOR and token.value == "*":
            stream.advance()
            items.append(ast.Star())
        else:
            expression = _parse_select_expression(stream)
            alias = None
            if stream.accept_keyword("AS"):
                alias = stream.expect_identifier().value
            items.append(ast.SelectItem(expression=expression, alias=alias))
        if stream.accept_punctuation(","):
            continue
        break
    return items


def _parse_select_expression(stream: TokenStream) -> ast.Expression:
    token = stream.peek()
    if token.matches_keyword(*_AGGREGATE_KEYWORDS):
        function = stream.advance().value
        stream.expect_punctuation("(")
        distinct = bool(stream.accept_keyword("DISTINCT"))
        argument: Optional[ast.ColumnRef] = None
        star = stream.peek()
        if star.token_type is TokenType.OPERATOR and star.value == "*":
            stream.advance()
        else:
            argument = _parse_column_ref(stream)
        stream.expect_punctuation(")")
        return ast.Aggregate(function=function, argument=argument, distinct=distinct)
    return _parse_column_ref(stream)


def _parse_column_ref(stream: TokenStream) -> ast.ColumnRef:
    first = stream.expect_identifier().value
    if stream.accept_punctuation("."):
        second = stream.expect_identifier().value
        return ast.ColumnRef(column=second.lower(), table=first.lower())
    return ast.ColumnRef(column=first.lower())


# -- UPDATE / DELETE ------------------------------------------------------------------


def _parse_update(stream: TokenStream) -> ast.Update:
    stream.expect_keyword("UPDATE")
    table = stream.expect_identifier().value
    stream.expect_keyword("SET")
    assignments: List[Tuple[str, Any]] = []
    while True:
        column = stream.expect_identifier().value
        if stream.accept_operator("=") is None:
            raise ParseError(f"expected '=' in UPDATE assignment near {stream.peek()}")
        value = _parse_literal_value(stream)
        assignments.append((column.lower(), value))
        if stream.accept_punctuation(","):
            continue
        break
    where = None
    if stream.accept_keyword("WHERE"):
        where = _parse_expression(stream)
    return ast.Update(table=table, assignments=tuple(assignments), where=where)


def _parse_delete(stream: TokenStream) -> ast.Delete:
    stream.expect_keyword("DELETE")
    stream.expect_keyword("FROM")
    table = stream.expect_identifier().value
    where = None
    if stream.accept_keyword("WHERE"):
        where = _parse_expression(stream)
    return ast.Delete(table=table, where=where)


# -- DECLARE PURPOSE ---------------------------------------------------------------------


def _parse_declare_purpose(stream: TokenStream) -> ast.DeclarePurpose:
    stream.expect_keyword("DECLARE")
    stream.expect_keyword("PURPOSE")
    name = stream.expect_identifier().value
    clauses: List[ast.AccuracyClause] = []
    if stream.accept_keyword("SET"):
        stream.expect_keyword("ACCURACY")
        stream.expect_keyword("LEVEL")
        while True:
            level_token = stream.peek()
            if level_token.token_type is TokenType.NUMBER:
                stream.advance()
                level: Any = int(float(level_token.value))
            else:
                level = stream.expect_identifier().value
            stream.expect_keyword("FOR")
            reference = _parse_column_ref(stream)
            if reference.table is None:
                raise ParseError(
                    "accuracy clauses must use qualified column names "
                    "(<table>.<column>)"
                )
            clauses.append(ast.AccuracyClause(level=level, table=reference.table,
                                              column=reference.column))
            if stream.accept_punctuation(","):
                continue
            break
    return ast.DeclarePurpose(name=name, clauses=tuple(clauses))


# -- expressions -----------------------------------------------------------------------------


def _parse_expression(stream: TokenStream) -> ast.Expression:
    return _parse_or(stream)


def _parse_or(stream: TokenStream) -> ast.Expression:
    operands = [_parse_and(stream)]
    while stream.accept_keyword("OR"):
        operands.append(_parse_and(stream))
    if len(operands) == 1:
        return operands[0]
    return ast.BooleanOp(operator="OR", operands=tuple(operands))


def _parse_and(stream: TokenStream) -> ast.Expression:
    operands = [_parse_not(stream)]
    while stream.accept_keyword("AND"):
        operands.append(_parse_not(stream))
    if len(operands) == 1:
        return operands[0]
    return ast.BooleanOp(operator="AND", operands=tuple(operands))


def _parse_not(stream: TokenStream) -> ast.Expression:
    if stream.accept_keyword("NOT"):
        return ast.Not(_parse_not(stream))
    return _parse_predicate(stream)


def _parse_predicate(stream: TokenStream) -> ast.Expression:
    if stream.accept_punctuation("("):
        expression = _parse_expression(stream)
        stream.expect_punctuation(")")
        return expression
    operand = _parse_operand(stream)
    token = stream.peek()
    if token.matches_keyword("IS"):
        stream.advance()
        negated = bool(stream.accept_keyword("NOT"))
        stream.expect_keyword("NULL")
        return ast.IsNull(operand=operand, negated=negated)
    negated = False
    if token.matches_keyword("NOT"):
        stream.advance()
        negated = True
        token = stream.peek()
    if token.matches_keyword("LIKE"):
        stream.advance()
        pattern = _parse_operand(stream)
        comparison = ast.Comparison(left=operand, operator="LIKE", right=pattern)
        return ast.Not(comparison) if negated else comparison
    if token.matches_keyword("IN"):
        stream.advance()
        stream.expect_punctuation("(")
        values = [_parse_literal_value(stream)]
        while stream.accept_punctuation(","):
            values.append(_parse_literal_value(stream))
        stream.expect_punctuation(")")
        return ast.InList(operand=operand, values=tuple(values), negated=negated)
    if token.matches_keyword("BETWEEN"):
        stream.advance()
        low = _parse_operand(stream)
        stream.expect_keyword("AND")
        high = _parse_operand(stream)
        return ast.Between(operand=operand, low=low, high=high, negated=negated)
    if negated:
        raise ParseError(f"unexpected NOT before {token}")
    operator_token = stream.accept_operator("=", "!=", "<>", "<", "<=", ">", ">=")
    if operator_token is None:
        raise ParseError(f"expected comparison operator, got {stream.peek()}")
    operator = "!=" if operator_token.value == "<>" else operator_token.value
    right = _parse_operand(stream)
    return ast.Comparison(left=operand, operator=operator, right=right)


def _parse_operand(stream: TokenStream) -> ast.Expression:
    token = stream.peek()
    if token.token_type is TokenType.PUNCTUATION and token.value == "?":
        stream.advance()
        return ast.Placeholder(stream.next_placeholder_index())
    if token.token_type in (TokenType.STRING, TokenType.NUMBER) or \
            token.matches_keyword("NULL", "TRUE", "FALSE") or \
            (token.token_type is TokenType.OPERATOR and token.value == "-"):
        return ast.Literal(_parse_literal_value(stream))
    return _parse_column_ref(stream)


__all__ = ["parse", "parse_script"]
