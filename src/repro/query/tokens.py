"""SQL tokenizer.

A hand written tokenizer for the SQL subset the engine supports, including the
paper's ``DECLARE PURPOSE ... SET ACCURACY LEVEL ... FOR ...`` extension.  The
tokenizer is deliberately small: identifiers, keywords, numeric and string
literals, operators and punctuation.  ``?`` is tokenized as punctuation and
parsed into a qmark parameter placeholder (PEP 249 ``paramstyle = "qmark"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Optional

from ..core.errors import ParseError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "INSERT", "INTO", "VALUES",
    "DELETE", "UPDATE", "SET", "CREATE", "TABLE", "DOMAIN", "PRIMARY", "KEY",
    "NULL", "LIKE", "IN", "BETWEEN", "IS", "GROUP", "BY", "ORDER", "ASC",
    "DESC", "LIMIT", "JOIN", "INNER", "LEFT", "ON", "AS", "COUNT", "SUM",
    "AVG", "MIN", "MAX", "DISTINCT", "DECLARE", "PURPOSE", "ACCURACY", "LEVEL",
    "FOR", "DEGRADABLE", "POLICY", "LIFECYCLE", "AFTER", "THEN", "REMOVE",
    "DROP", "TRUE", "FALSE", "BEGIN", "COMMIT", "ROLLBACK", "INDEX", "USING",
    "EXPLAIN", "HAVING", "ANALYZE",
}


class TokenType(Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    token_type: TokenType
    value: str
    position: int

    def matches_keyword(self, *keywords: str) -> bool:
        return self.token_type is TokenType.KEYWORD and self.value in keywords

    def __str__(self) -> str:
        return f"{self.value!r}"


_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "*", "+", "-", "/")
_PUNCTUATION = "(),.;?"


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql`` into a list of tokens ending with an EOF token."""
    tokens: List[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char.isspace():
            index += 1
            continue
        if char == "-" and index + 1 < length and sql[index + 1] == "-":
            # Line comment.
            while index < length and sql[index] != "\n":
                index += 1
            continue
        if char == "'":
            end = index + 1
            parts = []
            while True:
                if end >= length:
                    raise ParseError(f"unterminated string literal at offset {index}")
                if sql[end] == "'":
                    if end + 1 < length and sql[end + 1] == "'":
                        parts.append("'")
                        end += 2
                        continue
                    break
                parts.append(sql[end])
                end += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), index))
            index = end + 1
            continue
        if char.isdigit() or (char == "." and index + 1 < length and sql[index + 1].isdigit()):
            end = index
            seen_dot = False
            while end < length and (sql[end].isdigit() or (sql[end] == "." and not seen_dot)):
                if sql[end] == ".":
                    seen_dot = True
                end += 1
            tokens.append(Token(TokenType.NUMBER, sql[index:end], index))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[index:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, index))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, index))
            index = end
            continue
        matched_operator = None
        for operator in _OPERATORS:
            if sql.startswith(operator, index):
                matched_operator = operator
                break
        if matched_operator is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_operator, index))
            index += len(matched_operator)
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, index))
            index += 1
            continue
        raise ParseError(f"unexpected character {char!r} at offset {index}")
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0
        #: Number of ``?`` placeholders handed out so far (qmark numbering).
        self.placeholder_count = 0

    def next_placeholder_index(self) -> int:
        """Allocate the next 0-based qmark placeholder index."""
        index = self.placeholder_count
        self.placeholder_count += 1
        return index

    def peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.token_type is not TokenType.EOF:
            self._index += 1
        return token

    def at_end(self) -> bool:
        token = self.peek()
        return token.token_type is TokenType.EOF or (
            token.token_type is TokenType.PUNCTUATION and token.value == ";"
            and self.peek(1).token_type is TokenType.EOF
        )

    def accept_keyword(self, *keywords: str) -> Optional[Token]:
        if self.peek().matches_keyword(*keywords):
            return self.advance()
        return None

    def expect_keyword(self, *keywords: str) -> Token:
        token = self.accept_keyword(*keywords)
        if token is None:
            raise ParseError(
                f"expected {' or '.join(keywords)}, got {self.peek()} "
                f"at offset {self.peek().position}"
            )
        return token

    def accept_punctuation(self, value: str) -> Optional[Token]:
        token = self.peek()
        if token.token_type is TokenType.PUNCTUATION and token.value == value:
            return self.advance()
        return None

    def expect_punctuation(self, value: str) -> Token:
        token = self.accept_punctuation(value)
        if token is None:
            raise ParseError(
                f"expected {value!r}, got {self.peek()} at offset {self.peek().position}"
            )
        return token

    def accept_operator(self, *operators: str) -> Optional[Token]:
        token = self.peek()
        if token.token_type is TokenType.OPERATOR and token.value in operators:
            return self.advance()
        return None

    def expect_identifier(self) -> Token:
        token = self.peek()
        if token.token_type is TokenType.IDENTIFIER:
            return self.advance()
        # Non-reserved use of keywords as identifiers (column named "level"...).
        if token.token_type is TokenType.KEYWORD:
            return self.advance()
        raise ParseError(
            f"expected identifier, got {token} at offset {token.position}"
        )


__all__ = ["Token", "TokenType", "TokenStream", "tokenize", "KEYWORDS"]
