"""Volcano-style streaming physical operators.

The read path is a tree of pull-based operators: every operator is an iterator
over rows and pulls from its children on demand, so ``LIMIT k`` stops the
whole pipeline after ``k`` rows and a cursor's ``fetchone`` materializes no
more than what was fetched.  The degradation-specific parts of the paper live
in the scans (``σ_{P,k}`` / ``π_{*,k}``: rows are degraded to the demanded
accuracy levels *before* predicates see them, and tuples whose stored state
cannot compute a demanded level are excluded); everything downstream is a
conventional iterator engine:

* :class:`SeqScan` / :class:`IndexScan` — produce the degraded *visible* rows
  of one table, either by heap scan or through the access path the planner
  chose (hash/B+-tree/bitmap equality, B+-tree range, GT-index level probe);
  both decode only the columns the planner proved the query touches;
* :class:`IndexOnlyScan` — answers a covering query from GT/B+-tree index
  entries alone, never touching the heap;
* :class:`Filter` — evaluates only the **residual** predicate, i.e. the
  conjuncts the access path does not already guarantee, through the plan's
  compiled closure (one compile per plan, not one tree-walk per row);
* :class:`HashJoin` — builds a hash table on the estimated-smaller input and
  streams the other, with compiled key extractors;
* :class:`Project` / :class:`Aggregate` — projection and grouped aggregation;
* :class:`TopN` — ``ORDER BY ... LIMIT n`` with a bounded heap of ``n`` rows
  instead of a full sort;
* :class:`Sort` / :class:`Limit` — full ordering and early-exit truncation.

Every operator counts the rows it produced in :class:`OperatorStats`, which is
what ``EXPLAIN ANALYZE`` renders (alongside the planner's row estimates) and
what tests/benchmarks use to prove that ``LIMIT k`` pulls only O(k) rows past
the scan.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

from ..core.errors import BindingError, ExecutionError
from ..core.values import NULL, is_missing, sort_key
from ..index.gt_index import GTIndex
from ..storage.degradable_store import StoredRow, TableStore
from . import ast_nodes as ast
from .catalog import Catalog
from .compiler import (
    BatchPredicate,
    RowFn,
    _hashable,
    _resolve_join_refs,
    _truthy,
    evaluate,
    lookup,
    output_items,
    render_expression,
)
from .planner import (
    AccessPath,
    ParamMarker,
    PhysicalPlan,
    TableScanPlan,
    _as_column_literal,
    _flatten_and,
)

#: Callable giving the pipeline access to a table's storage manager.
StoreProvider = Callable[[str], TableStore]

#: Key under which the logical row key is exposed in visible rows.
ROW_KEY_FIELD = "__row_key__"


# -- operator infrastructure ----------------------------------------------------


@dataclass
class OperatorStats:
    """Per-operator row accounting (rendered by ``EXPLAIN ANALYZE``)."""

    rows_out: int = 0


@dataclass
class PipelineRuntime:
    """What operators need from the engine to touch data.

    ``stats`` is the executor's aggregate :class:`ExecutorStats`-shaped
    counter object; scans bump it so engine-level accounting keeps working
    alongside the per-operator counts.  ``compile_mode`` selects compiled
    closures (default) or the tree-walking interpreter (the measured
    baseline).
    """

    catalog: Catalog
    stores: StoreProvider
    stats: Any
    compile_mode: str = "compiled"


class Operator:
    """Base class: a restartable-once iterator over rows with counters."""

    label = "Operator"

    def __init__(self, children: Tuple["Operator", ...] = ()) -> None:
        self.children: List[Operator] = list(children)
        self.stats = OperatorStats()
        #: Planner-estimated output rows (shown by EXPLAIN; None = unknown).
        self.estimated_rows: Optional[float] = None

    def rows(self) -> Iterator[Any]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Any]:
        for row in self.rows():
            self.stats.rows_out += 1
            yield row

    def describe(self) -> str:
        return self.label

    def explain_lines(self, analyze: bool = False, indent: int = 0) -> List[str]:
        suffix = f" (rows={self.stats.rows_out})" if analyze else ""
        if self.estimated_rows is not None:
            suffix += f" (est~{self.estimated_rows:.0f})"
        lines = ["  " * indent + self.describe() + suffix]
        for child in self.children:
            lines.extend(child.explain_lines(analyze, indent + 1))
        return lines

    def walk(self) -> Iterator["Operator"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, label: str) -> Optional["Operator"]:
        """First operator in the tree whose label matches (test helper)."""
        for operator in self.walk():
            if operator.label == label:
                return operator
        return None


# -- scans ---------------------------------------------------------------------


class _ScanBase(Operator):
    """Common visible-row machinery of the table scans.

    A scan yields *visible* rows: dictionaries keyed by plain, alias-qualified
    and table-qualified column names, with degradable values generalized to
    the accuracy level the purpose demands and rows excluded when a demanded
    level is not computable from the stored state.

    All per-query decisions — which columns to materialize, their visible-row
    key names, generalization schemes, demanded levels — are resolved once at
    operator construction; the per-row loop only moves values.
    """

    def __init__(self, runtime: PipelineRuntime, scan: TableScanPlan) -> None:
        super().__init__()
        self.runtime = runtime
        self.scan = scan
        self.rows_excluded_not_computable = 0
        schema = runtime.catalog.table(scan.table).schema
        needed = None if scan.needed_columns is None else set(scan.needed_columns)
        #: Columns whose stored accuracy can exclude the row: (name, demanded).
        self._exclusions: List[Tuple[str, int]] = []
        for column in schema.degradable_columns():
            demanded = scan.demanded_levels.get(column.name, 0)
            if demanded is not None:
                self._exclusions.append((column.name, demanded))
        #: Per materialized column: (name, visible keys, demanded, scheme).
        self._specs: List[Tuple[str, Tuple[str, ...], Optional[int], Any]] = []
        qualified = scan.qualified_keys or scan.needed_columns is None
        for column in schema.columns:
            if needed is not None and column.name not in needed:
                continue
            keys = [column.name]
            if qualified:
                keys.append(f"{scan.alias}.{column.name}")
                if scan.alias != scan.table:
                    keys.append(f"{scan.table}.{column.name}")
            demanded = scan.demanded_levels.get(column.name) if column.degradable \
                else None
            scheme = runtime.catalog.scheme_for(scan.table, column.name) \
                if column.degradable else None
            self._specs.append((column.name, tuple(keys), demanded, scheme))
        self._columns: Optional[frozenset] = None if needed is None \
            else frozenset(needed)

    def describe(self) -> str:
        return self.scan.describe()

    def _candidates(self) -> Iterator[StoredRow]:
        raise NotImplementedError

    def rows(self) -> Iterator[Dict[str, Any]]:
        stats = self.runtime.stats
        exclusions = self._exclusions
        specs = self._specs
        for row in self._candidates():
            stats.rows_scanned += 1
            levels = row.levels
            excluded = False
            for name, demanded in exclusions:
                if levels[name] > demanded:
                    excluded = True
                    break
            if excluded:
                self.rows_excluded_not_computable += 1
                stats.rows_excluded_not_computable += 1
                continue
            values = row.values
            visible: Dict[str, Any] = {ROW_KEY_FIELD: row.row_key}
            for name, keys, demanded, scheme in specs:
                value = values[name]
                if demanded is not None:
                    stored_level = levels[name]
                    if stored_level < demanded and not is_missing(value):
                        value = scheme.generalize(value, demanded,
                                                  from_level=stored_level)
                for key in keys:
                    visible[key] = value
            yield visible


class SeqScan(_ScanBase):
    label = "SeqScan"

    def _candidates(self) -> Iterator[StoredRow]:
        self.runtime.stats.seq_scans += 1
        return self.runtime.stores(self.scan.table).scan(self._columns)


class IndexScan(_ScanBase):
    label = "IndexScan"

    def _candidates(self) -> Iterator[StoredRow]:
        self.runtime.stats.index_lookups += 1
        access = self.scan.access
        store = self.runtime.stores(self.scan.table)
        candidates = store.fetch(self._candidate_keys(access), self._columns)
        if access.kind == "index_range":
            # The B+-tree orders sentinels (NULL/SUPPRESSED) past every real
            # value, so an open upper bound would admit them; the residual
            # range conjuncts were dropped, so guard missing values here.
            column = access.column
            return (row for row in candidates
                    if not is_missing(row.values[column]))
        return candidates

    def _candidate_keys(self, access: AccessPath) -> Iterator[int]:
        """Stream candidate row keys from the index.

        Range probes stay lazy end to end (``iter_range_keys`` walks the
        B+-tree leaves on demand), so ``LIMIT k`` over an index range does
        O(k) index work instead of materializing the full key list first.
        """
        index = access.index.index
        if access.kind == "index_eq":
            return iter(index.search(access.key))
        if access.kind == "index_range":
            if hasattr(index, "iter_range_keys"):
                return index.iter_range_keys(access.low, access.high,
                                             include_low=access.include_low,
                                             include_high=access.include_high)
            return iter(index.range_search(access.low, access.high,
                                           include_low=access.include_low,
                                           include_high=access.include_high))
        if access.kind == "gt_level":
            if not isinstance(index, GTIndex):
                raise ExecutionError(
                    f"access path gt_level requires a GT index, got {index.kind}"
                )
            return iter(index.search_at(access.key, access.level))
        raise ExecutionError(f"unknown access path kind {access.kind!r}")


class IndexOnlyScan(Operator):
    """Covering scan: visible rows come from index entries, never the heap.

    Eligible when the planner proved the chosen GT/B+-tree index covers every
    column the query needs at its accuracy level
    (:meth:`~repro.query.planner.Planner._index_only_eligible`).  Each index
    entry carries the visible value — the stored key for B+-tree probes, the
    demanded-level generalization for GT probes — so no heap page is read and
    no record is decoded.
    """

    label = "IndexOnlyScan"

    def __init__(self, runtime: PipelineRuntime, scan: TableScanPlan) -> None:
        super().__init__()
        self.runtime = runtime
        self.scan = scan
        keys = [scan.access.column]
        if scan.qualified_keys or scan.needed_columns is None:
            keys.append(f"{scan.alias}.{scan.access.column}")
            if scan.alias != scan.table:
                keys.append(f"{scan.table}.{scan.access.column}")
        self._keys = tuple(keys)

    def describe(self) -> str:
        return self.scan.describe()

    def _entries(self) -> Iterator[Tuple[Any, int]]:
        access = self.scan.access
        index = access.index.index
        if access.kind == "gt_level":
            return index.entries_at(access.key, access.level)
        if access.kind == "index_eq":
            return iter(index.entries(access.key))
        if access.kind == "index_range":
            entries = index.iter_range_entries(
                access.low, access.high,
                include_low=access.include_low,
                include_high=access.include_high)
            # Same sentinel guard as IndexScan: an open upper bound would
            # admit NULL/SUPPRESSED keys, which the predicate excludes.
            return ((key, row_key) for key, row_key in entries
                    if not is_missing(key))
        raise ExecutionError(
            f"access path {access.kind!r} cannot run index-only")

    def rows(self) -> Iterator[Dict[str, Any]]:
        stats = self.runtime.stats
        stats.index_lookups += 1
        stats.index_only_scans += 1
        store = self.runtime.stores(self.scan.table)
        keys = self._keys
        for value, row_key in self._entries():
            if not store.exists(row_key):
                continue
            visible: Dict[str, Any] = {ROW_KEY_FIELD: row_key}
            for key in keys:
                visible[key] = value
            yield visible


#: One vectorized batch: (column → visible-value vector, selected positions,
#: per-position row keys).  Vectors are full segment columns — only the
#: positions in the selection list are meaningful.
Batch = Tuple[Dict[str, List[Any]], List[int], List[int]]


def _zone_prunes(catalog: Catalog, scan: TableScanPlan,
                 residual: Optional[ast.Expression]) -> List[Tuple]:
    """Residual conjuncts usable for zone-map segment pruning.

    Only ``column <op> constant`` conjuncts over *non-degradable* columns
    qualify: zone maps summarize stored values, and a degradable column's
    visible value is a generalization of its stored value, which the stored
    min/max says nothing about.  Returns ``("eq", column, key)`` and
    ``("range", column, low, high, include_low, include_high)`` entries with
    the sort keys precomputed.
    """
    if residual is None:
        return []
    schema = catalog.table(scan.table).schema
    prunable = {column.name for column in schema.columns
                if not column.degradable}
    prunes: List[Tuple] = []
    for conjunct in _flatten_and(residual):
        match = _as_column_literal(conjunct, scan.table, scan.alias)
        if match is None:
            continue
        column, operator, value = match
        if column not in prunable:
            continue
        if operator == "between":
            low, high = value
            if isinstance(low, ParamMarker) or isinstance(high, ParamMarker) \
                    or is_missing(low) or is_missing(high):
                continue
            prunes.append(("range", column, sort_key(low), sort_key(high),
                           True, True))
            continue
        if isinstance(value, ParamMarker) or is_missing(value):
            continue
        if operator == "=":
            prunes.append(("eq", column, sort_key(value)))
        elif operator in ("<", "<="):
            prunes.append(("range", column, None, sort_key(value),
                           True, operator == "<="))
        elif operator in (">", ">="):
            prunes.append(("range", column, sort_key(value), None,
                           operator == ">=", True))
    return prunes


class ColumnarScan(_ScanBase):
    """Vectorized sequential scan over a table's columnar segments.

    Works segment-at-a-time instead of row-at-a-time: per segment it takes
    the live positions as the initial selection vector, applies the paper's
    exclusion rule as one pass per constrained accuracy-level vector (stored
    level above the demanded level hides the row), and exposes the value
    vectors with generalize-on-read applied — a ``(stored level, value) →
    generalized`` memo means each distinct value of a wave-degraded segment
    generalizes once, not once per row.  Zone maps prune whole segments
    whose min/max provably cannot satisfy a residual conjunct on a
    non-degradable column.

    Downstream vectorized operators consume :meth:`batches`; :meth:`rows`
    materializes the same batches as visible row dicts, so joins, aggregates
    and the DML match pipeline run unchanged over a columnar table.
    """

    label = "ColumnarScan"

    def __init__(self, runtime: PipelineRuntime, scan: TableScanPlan,
                 residual: Optional[ast.Expression] = None) -> None:
        super().__init__(runtime, scan)
        self._prunes = _zone_prunes(runtime.catalog, scan, residual)
        self.segments_pruned = 0
        #: Per (column, demanded): (stored level, value) → generalized value.
        self._gen_memo: Dict[Tuple[str, int], Dict[Tuple[int, Any], Any]] = {}

    def batches(self) -> Iterator[Batch]:
        stats = self.runtime.stats
        store = self.runtime.stores(self.scan.table)
        segments = store.segments
        if segments is None:
            raise ExecutionError(
                f"table {self.scan.table!r} was planned columnar but its "
                "store has no segment mirror"
            )
        stats.seq_scans += 1
        exclusions = self._exclusions
        prunes = self._prunes
        for segment in segments.segments:
            pruned = False
            for prune in prunes:
                zone = segment.zones[prune[1]]
                if prune[0] == "eq":
                    keep = zone.may_match_eq(prune[2])
                else:
                    _kind, _column, low, high, include_low, include_high = prune
                    keep = zone.may_match_range(low, high,
                                                include_low, include_high)
                if not keep:
                    pruned = True
                    break
            if pruned:
                self.segments_pruned += 1
                segments.stats.segments_pruned += 1
                continue
            selection = segment.live_positions()
            stats.rows_scanned += len(selection)
            for name, demanded in exclusions:
                levels = segment.levels[name]
                kept = [i for i in selection if levels[i] <= demanded]
                dropped = len(selection) - len(kept)
                if dropped:
                    self.rows_excluded_not_computable += dropped
                    stats.rows_excluded_not_computable += dropped
                selection = kept
                if not selection:
                    break
            if not selection:
                continue
            self.stats.rows_out += len(selection)
            yield self._visible_columns(segment, selection), selection, \
                segment.row_keys

    def _visible_columns(self, segment: Any,
                         selection: List[int]) -> Dict[str, List[Any]]:
        """Value vectors with generalize-on-read applied where demanded.

        Columns that need no generalization are exposed as the segment's own
        vectors (zero copies); a degradable column lagging behind its demanded
        level gets a patched copy, filled through the per-plan memo.
        """
        columns: Dict[str, List[Any]] = {}
        for name, _keys, demanded, scheme in self._specs:
            vector = segment.values[name]
            if demanded is None or scheme is None:
                columns[name] = vector
                continue
            levels = segment.levels[name]
            memo = self._gen_memo.setdefault((name, demanded), {})
            out = vector
            for i in selection:
                stored = levels[i]
                if stored >= demanded:
                    continue
                value = vector[i]
                if is_missing(value):
                    continue
                try:
                    generalized = memo[(stored, value)]
                except KeyError:
                    generalized = scheme.generalize(value, demanded,
                                                    from_level=stored)
                    memo[(stored, value)] = generalized
                except TypeError:    # unhashable degraded value
                    generalized = scheme.generalize(value, demanded,
                                                    from_level=stored)
                if out is vector:
                    out = list(vector)
                out[i] = generalized
            columns[name] = out
        return columns

    def rows(self) -> Iterator[Dict[str, Any]]:
        specs = self._specs
        for columns, selection, row_keys in self.batches():
            vectors = [(keys, columns[name]) for name, keys, _d, _s in specs]
            for i in selection:
                visible: Dict[str, Any] = {ROW_KEY_FIELD: row_keys[i]}
                for keys, vector in vectors:
                    value = vector[i]
                    for key in keys:
                        visible[key] = value
                yield visible

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        # batches() already counts rows_out (it is the operator's real
        # output either way); the default __iter__ would double-count.
        return self.rows()


def make_scan(runtime: PipelineRuntime, scan: TableScanPlan,
              residual: Optional[ast.Expression] = None) -> Operator:
    if scan.access.kind == "seq":
        if scan.columnar and \
                getattr(runtime.stores(scan.table), "segments", None) is not None:
            return ColumnarScan(runtime, scan, residual=residual)
        return SeqScan(runtime, scan)
    if scan.index_only:
        return IndexOnlyScan(runtime, scan)
    return IndexScan(runtime, scan)


# -- filter / join --------------------------------------------------------------


class Filter(Operator):
    """Evaluates the residual predicate (conjuncts the access path left over).

    ``predicate_fn`` is the plan's compiled closure; without one (operator
    built outside a compiled plan) the tree-walking interpreter is used.
    """

    label = "Filter"

    def __init__(self, child: Operator, predicate: ast.Expression,
                 predicate_fn: Optional[RowFn] = None) -> None:
        super().__init__((child,))
        self.predicate = predicate
        self.predicate_fn = predicate_fn

    def describe(self) -> str:
        return f"Filter ({render_expression(self.predicate)})"

    def rows(self) -> Iterator[Dict[str, Any]]:
        predicate_fn = self.predicate_fn
        if predicate_fn is None:
            predicate = self.predicate
            predicate_fn = lambda row: _truthy(evaluate(predicate, row))
        for row in self.children[0]:
            if predicate_fn(row):
                yield row


class BatchFilter(Operator):
    """Vectorized residual filtering: selection-vector passes over batches.

    Each batch-compiled conjunct narrows the selection list in one pass over
    the column vectors — no row dicts are built, no closure is entered per
    conjunct tree node.  Labeled ``Filter`` on purpose: it implements exactly
    the row operator's semantics, only the iteration shape differs.
    """

    label = "Filter"

    def __init__(self, child: Operator, predicate: ast.Expression,
                 conjuncts: List[BatchPredicate]) -> None:
        super().__init__((child,))
        self.predicate = predicate
        self.conjuncts = conjuncts

    def describe(self) -> str:
        return f"Filter ({render_expression(self.predicate)})"

    def batches(self) -> Iterator[Batch]:
        conjuncts = self.conjuncts
        for columns, selection, row_keys in self.children[0].batches():
            for conjunct in conjuncts:
                test = conjunct(columns)
                selection = [i for i in selection if test(i)]
                if not selection:
                    break
            if not selection:
                continue
            self.stats.rows_out += len(selection)
            yield columns, selection, row_keys


class BatchProject(Operator):
    """Vectorized projection: gathers output tuples straight from vectors.

    Only built when every output expression is a plain column reference
    (:func:`~repro.query.compiler.compile_batch_projection`); anything
    computed falls back to the row-at-a-time :class:`Project`.
    """

    label = "Project"

    def __init__(self, child: Operator,
                 items: List[Tuple[str, ast.Expression]],
                 names: List[str], hidden: int = 0) -> None:
        super().__init__((child,))
        self.items = items
        self.columns = [name for name, _expr in items]
        self._names = names
        self.hidden = hidden

    def describe(self) -> str:
        visible = self.columns[:-self.hidden] if self.hidden else self.columns
        return f"Project ({', '.join(visible)})"

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        names = self._names
        for columns, selection, _row_keys in self.children[0].batches():
            vectors = [columns[name] for name in names]
            if len(vectors) == 1:
                vector = vectors[0]
                for i in selection:
                    yield (vector[i],)
            else:
                for i in selection:
                    yield tuple(vector[i] for vector in vectors)


class HashJoin(Operator):
    """Equi-join: build a hash table on one input, stream the other.

    The build side defaults to the right (joined) input; the planner flips it
    to the left when statistics say the left is smaller
    (``scan.build_left``).  Key extraction runs through the plan's compiled
    closures, which bake in the hash normalization (``_hashable``) — degraded
    values of unhashable shapes (lists, dicts) are converted once per row, not
    re-dispatched per probe.
    """

    label = "HashJoin"

    def __init__(self, runtime: PipelineRuntime, left: Operator, right: Operator,
                 clause: ast.JoinClause, right_scan: TableScanPlan,
                 key_fns: Optional[Tuple[RowFn, RowFn]] = None) -> None:
        super().__init__((left, right))
        self.runtime = runtime
        self.clause = clause
        self.right_scan = right_scan
        self.key_fns = key_fns

    def describe(self) -> str:
        clause = self.clause
        build = "build=left" if self.right_scan.build_left else "build=right"
        return (f"HashJoin ({clause.kind} {self.right_scan.table} on "
                f"{clause.left.qualified} = {clause.right.qualified}, {build})")

    def _pad_columns(self) -> List[str]:
        """Right-side column keys for LEFT JOIN NULL padding.

        Derived from the catalog schema, not from an arbitrary right row, so
        an empty right table still pads every column it would have produced
        (restricted to the pruned column set when the planner computed one).
        """
        scan = self.right_scan
        schema = self.runtime.catalog.table(scan.table).schema
        needed = None if scan.needed_columns is None else set(scan.needed_columns)
        keys: List[str] = []
        for column in schema.columns:
            if needed is not None and column.name not in needed:
                continue
            keys.append(column.name)
            keys.append(f"{scan.alias}.{column.name}")
            if scan.alias != scan.table:
                keys.append(f"{scan.table}.{column.name}")
        return keys

    def _resolve_key_fns(self) -> Tuple[RowFn, RowFn]:
        if self.key_fns is not None:
            return self.key_fns
        left_key, right_key = _resolve_join_refs(self.clause, self.right_scan)
        return (lambda row: _hashable(lookup(left_key, row)),
                lambda row: _hashable(lookup(right_key, row)))

    def rows(self) -> Iterator[Dict[str, Any]]:
        clause = self.clause
        left_fn, right_fn = self._resolve_key_fns()
        if self.right_scan.build_left and clause.kind == "inner":
            yield from self._rows_build_left(left_fn, right_fn)
            return
        build: Dict[Any, List[Dict[str, Any]]] = {}
        for right_row in self.children[1]:
            build.setdefault(right_fn(right_row), []).append(right_row)
        pad_columns = self._pad_columns() if clause.kind == "left" else []
        for left_row in self.children[0]:
            matches = build.get(left_fn(left_row), [])
            if matches:
                for right_row in matches:
                    merged = dict(left_row)
                    merged.update({k: v for k, v in right_row.items()
                                   if k != ROW_KEY_FIELD})
                    yield merged
            elif clause.kind == "left":
                merged = dict(left_row)
                merged.update({key: NULL for key in pad_columns})
                yield merged

    def _rows_build_left(self, left_fn: RowFn,
                         right_fn: RowFn) -> Iterator[Dict[str, Any]]:
        """Inner join with the hash table on the (smaller) left input."""
        build: Dict[Any, List[Dict[str, Any]]] = {}
        for left_row in self.children[0]:
            build.setdefault(left_fn(left_row), []).append(left_row)
        for right_row in self.children[1]:
            matches = build.get(right_fn(right_row))
            if not matches:
                continue
            right_items = {k: v for k, v in right_row.items()
                           if k != ROW_KEY_FIELD}
            for left_row in matches:
                merged = dict(left_row)
                merged.update(right_items)
                yield merged


# -- projection / aggregation ----------------------------------------------------


class Project(Operator):
    """Evaluates the output expressions, turning row dicts into value tuples.

    ``project_fn`` is the plan's compiled whole-tuple builder; without one the
    expressions are interpreted per row.
    """

    label = "Project"

    def __init__(self, child: Operator,
                 items: List[Tuple[str, ast.Expression]],
                 project_fn: Optional[RowFn] = None,
                 hidden: int = 0) -> None:
        super().__init__((child,))
        self.items = items
        self.columns = [name for name, _expr in items]
        self.project_fn = project_fn
        #: Trailing hidden sort-key items (not part of the visible output;
        #: Sort/TopN strip them downstream, EXPLAIN omits them).
        self.hidden = hidden

    def describe(self) -> str:
        visible = self.columns[:-self.hidden] if self.hidden else self.columns
        return f"Project ({', '.join(visible)})"

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        project_fn = self.project_fn
        if project_fn is None:
            items = self.items
            project_fn = lambda row: tuple(evaluate(expr, row)
                                           for _name, expr in items)
        for row in self.children[0]:
            yield project_fn(row)


class Aggregate(Operator):
    """Blocking grouped aggregation with HAVING."""

    label = "Aggregate"

    def __init__(self, child: Operator, statement: ast.Select,
                 items: List[Tuple[str, ast.Expression]]) -> None:
        super().__init__((child,))
        self.statement = statement
        self.items = items
        self.columns = [name for name, _expr in items]

    def describe(self) -> str:
        groups = ", ".join(ref.qualified for ref in self.statement.group_by)
        suffix = f" group by {groups}" if groups else ""
        return f"Aggregate ({', '.join(self.columns)}){suffix}"

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        statement = self.statement
        group_columns = list(statement.group_by)
        groups: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
        for row in self.children[0]:
            key = tuple(_hashable(lookup(ref, row)) for ref in group_columns)
            groups.setdefault(key, []).append(row)
        if not group_columns and not groups:
            groups[()] = []
        columns = self.columns
        for key, members in sorted(groups.items(),
                                   key=lambda kv: tuple(sort_key(v) for v in kv[0])):
            representative = members[0] if members else {}
            values = []
            for _name, expression in self.items:
                if isinstance(expression, ast.Aggregate):
                    values.append(_compute_aggregate(expression, members))
                else:
                    values.append(evaluate(expression, representative))
            if statement.having is not None:
                scope = dict(representative)
                scope.update(dict(zip(columns, values)))
                if not _truthy(evaluate(statement.having, scope)):
                    continue
            yield tuple(values)


def _compute_aggregate(aggregate: ast.Aggregate,
                       rows: List[Dict[str, Any]]) -> Any:
    function = aggregate.function.upper()
    if aggregate.argument is None:
        values: List[Any] = [1 for _ in rows]
    else:
        values = [lookup(aggregate.argument, row) for row in rows]
        values = [value for value in values if not is_missing(value)]
    if aggregate.distinct:
        seen = []
        for value in values:
            if value not in seen:
                seen.append(value)
        values = seen
    if function == "COUNT":
        return len(values)
    numeric = [value for value in values if isinstance(value, (int, float))
               and not isinstance(value, bool)]
    if function == "SUM":
        return sum(numeric) if numeric else NULL
    if function == "AVG":
        return sum(numeric) / len(numeric) if numeric else NULL
    if function == "MIN":
        return min(values, key=sort_key) if values else NULL
    if function == "MAX":
        return max(values, key=sort_key) if values else NULL
    raise ExecutionError(f"unsupported aggregate {function}")


# -- ordering / limiting ---------------------------------------------------------


class _RevKey:
    """Inverts the order of one sort-key component (DESC columns)."""

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __lt__(self, other: "_RevKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _RevKey) and self.key == other.key


def _order_positions(order_by: Tuple[ast.OrderItem, ...],
                     columns: List[str]) -> List[Tuple[int, bool]]:
    positions: List[Tuple[int, bool]] = []
    for item in order_by:
        position = None
        for candidate in (item.column.column, item.column.qualified):
            if candidate in columns:
                position = columns.index(candidate)
                break
        if position is None:
            raise BindingError(
                f"ORDER BY column {item.column.qualified!r} is not in the output"
            )
        positions.append((position, item.descending))
    return positions


def _order_key(positions: List[Tuple[int, bool]],
               row: Tuple[Any, ...]) -> Tuple[Any, ...]:
    return tuple(
        _RevKey(sort_key(row[position])) if descending else sort_key(row[position])
        for position, descending in positions
    )


class Sort(Operator):
    """Blocking full sort (ORDER BY without LIMIT)."""

    label = "Sort"

    def __init__(self, child: Operator, order_by: Tuple[ast.OrderItem, ...],
                 columns: List[str], strip: int = 0) -> None:
        super().__init__((child,))
        self.order_by = order_by
        self.columns = columns
        #: Trailing hidden sort-key columns to drop from the yielded rows
        #: (ORDER BY references absent from the SELECT list).
        self.strip = strip

    def describe(self) -> str:
        keys = ", ".join(
            f"{item.column.qualified}{' DESC' if item.descending else ''}"
            for item in self.order_by
        )
        return f"Sort ({keys})"

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        positions = _order_positions(self.order_by, self.columns)
        materialized = list(self.children[0])
        materialized.sort(key=lambda row: _order_key(positions, row))
        if self.strip:
            strip = self.strip
            return (row[:-strip] for row in materialized)
        return iter(materialized)


class _HeapEntry:
    """Heap wrapper: ``heap[0]`` is the *worst* kept row (inverted order)."""

    __slots__ = ("key", "row")

    def __init__(self, key: Tuple[Any, ...], row: Tuple[Any, ...]) -> None:
        self.key = key
        self.row = row

    def __lt__(self, other: "_HeapEntry") -> bool:
        return other.key < self.key


class TopN(Operator):
    """ORDER BY + LIMIT with a bounded heap: O(n log k) time, O(k) memory."""

    label = "TopN"

    def __init__(self, child: Operator, order_by: Tuple[ast.OrderItem, ...],
                 columns: List[str], n: int, strip: int = 0) -> None:
        super().__init__((child,))
        self.order_by = order_by
        self.columns = columns
        self.n = n
        #: Trailing hidden sort-key columns to drop from the yielded rows.
        self.strip = strip
        #: High-water mark of rows held — proves the heap stays bounded by n.
        self.max_held = 0

    def describe(self) -> str:
        keys = ", ".join(
            f"{item.column.qualified}{' DESC' if item.descending else ''}"
            for item in self.order_by
        )
        return f"TopN (n={self.n}, by {keys})"

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        if self.n <= 0:
            return
        positions = _order_positions(self.order_by, self.columns)
        heap: List[_HeapEntry] = []
        for seq, row in enumerate(self.children[0]):
            # seq breaks ties so equal-key rows keep their arrival order, the
            # same answer a stable full sort + slice would give.
            entry = _HeapEntry(_order_key(positions, row) + (seq,), row)
            if len(heap) < self.n:
                heapq.heappush(heap, entry)
            elif entry.key < heap[0].key:
                heapq.heapreplace(heap, entry)
            self.max_held = max(self.max_held, len(heap))
        strip = self.strip
        for entry in sorted(heap, key=lambda e: e.key):
            yield entry.row[:-strip] if strip else entry.row


class Limit(Operator):
    """Early-exit truncation: stops pulling from upstream after ``n`` rows."""

    label = "Limit"

    def __init__(self, child: Operator, n: int) -> None:
        super().__init__((child,))
        self.n = n

    def describe(self) -> str:
        return f"Limit ({self.n})"

    def rows(self) -> Iterator[Any]:
        if self.n <= 0:
            return
        produced = 0
        for row in self.children[0]:
            yield row
            produced += 1
            if produced >= self.n:
                break


# -- pipeline assembly -----------------------------------------------------------


def build_pipeline(runtime: PipelineRuntime,
                   plan: PhysicalPlan) -> Tuple[List[str], Operator]:
    """Instantiate the operator tree for one execution of ``plan``.

    Operators carry per-execution state (iterators, counters), so a cached
    :class:`~repro.query.planner.PhysicalPlan` is re-instantiated cheaply for
    every run while the planning work (accuracy binding, access-path choice,
    residual split, column pruning, expression compilation) is done once.
    """
    compiled = plan.ensure_compiled(runtime.catalog, runtime.compile_mode)
    statement = plan.statement
    stats_registry = getattr(runtime.catalog, "statistics", None)
    root: Operator = make_scan(runtime, plan.base, residual=plan.residual)
    root.estimated_rows = plan.base.estimated_rows
    running = plan.base.estimated_rows
    # The fully vectorized chain (batches end to end, tuples gathered from
    # vectors) needs a columnar base, a single table, a non-aggregate
    # statement, and batch-compiled residual + projection; anything else
    # consumes the columnar scan's row-dict view, which is always available.
    vectorized = (isinstance(root, ColumnarScan) and not plan.joins
                  and not statement.is_aggregate
                  and compiled.batch_conjuncts is not None
                  and compiled.batch_project is not None)
    for (clause, scan), key_fns in zip(plan.joins, compiled.join_keys):
        right = make_scan(runtime, scan)
        right.estimated_rows = scan.estimated_rows
        root = HashJoin(runtime, root, right, clause, scan, key_fns=key_fns)
        running = scan.join_estimated_rows    # planner's running chain
        root.estimated_rows = running
    if plan.residual is not None:
        if vectorized:
            root = BatchFilter(root, plan.residual, compiled.batch_conjuncts)
        else:
            root = Filter(root, plan.residual, predicate_fn=compiled.residual)
        if running is not None:
            running *= plan.residual_selectivity
        root.estimated_rows = running
    if statement.is_aggregate:
        items = compiled.items
        root = Aggregate(root, statement, items)
        columns = compiled.columns
        root.estimated_rows = _estimate_groups(statement, plan, stats_registry,
                                               running)
        running = root.estimated_rows
    else:
        items = compiled.items
        columns = compiled.columns
        if vectorized:
            root = BatchProject(root, items, compiled.batch_project,
                                hidden=compiled.hidden)
        else:
            root = Project(root, items, project_fn=compiled.project,
                           hidden=compiled.hidden)
        root.estimated_rows = running
    hidden = compiled.hidden
    if statement.order_by:
        if statement.limit is not None:
            root = TopN(root, statement.order_by, columns, statement.limit,
                        strip=hidden)
            root.estimated_rows = _cap_estimate(running, statement.limit)
        else:
            root = Sort(root, statement.order_by, columns, strip=hidden)
            root.estimated_rows = running
    elif statement.limit is not None:
        root = Limit(root, statement.limit)
        root.estimated_rows = _cap_estimate(running, statement.limit)
    return (columns[:-hidden] if hidden else columns), root


def _cap_estimate(running: Optional[float], n: int) -> Optional[float]:
    if running is None:
        return float(n)
    return min(running, float(n))


def _estimate_groups(statement: ast.Select, plan: PhysicalPlan,
                     stats_registry, running: Optional[float]) -> Optional[float]:
    if not statement.group_by:
        return 1.0
    if stats_registry is None:
        return running
    stats = stats_registry.table(plan.base.table)
    if stats is None:
        return running
    groups = 1.0
    for ref in statement.group_by:
        ndv = stats.ndv(ref.column)
        groups *= max(1, ndv)
    if running is not None:
        groups = min(groups, running)
    return groups


def build_match_pipeline(runtime: PipelineRuntime,
                         plan: PhysicalPlan) -> Operator:
    """Scan + residual filter only: the row-matching pipeline DML uses."""
    compiled = plan.ensure_compiled(runtime.catalog, runtime.compile_mode)
    root: Operator = make_scan(runtime, plan.base, residual=plan.residual)
    if plan.residual is not None:
        root = Filter(root, plan.residual, predicate_fn=compiled.residual)
    return root


# -- streaming results ------------------------------------------------------------


class StreamingResult:
    """A lazily-evaluated SELECT result: rows are computed as they are pulled.

    Produced by the cursor path so ``fetchone`` materializes only what was
    fetched; ``pipeline`` is the live operator tree (per-operator stats grow
    as the stream is consumed).
    """

    def __init__(self, columns: List[str], rows_iter: Iterator[Tuple[Any, ...]],
                 pipeline: Operator) -> None:
        self.columns = columns
        self.pipeline = pipeline
        self._iterator = rows_iter

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return self._iterator

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        return next(self._iterator, None)


__all__ = [
    "Operator", "OperatorStats", "PipelineRuntime", "SeqScan", "IndexScan",
    "IndexOnlyScan", "ColumnarScan", "Filter", "BatchFilter", "HashJoin",
    "Project", "BatchProject", "Aggregate", "Sort",
    "TopN", "Limit", "StreamingResult", "build_pipeline",
    "build_match_pipeline", "make_scan", "output_items", "evaluate", "lookup",
    "render_expression", "ROW_KEY_FIELD", "StoreProvider",
]
