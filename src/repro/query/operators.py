"""Volcano-style streaming physical operators.

The read path is a tree of pull-based operators: every operator is an iterator
over rows and pulls from its children on demand, so ``LIMIT k`` stops the
whole pipeline after ``k`` rows and a cursor's ``fetchone`` materializes no
more than what was fetched.  The degradation-specific parts of the paper live
in the scans (``σ_{P,k}`` / ``π_{*,k}``: rows are degraded to the demanded
accuracy levels *before* predicates see them, and tuples whose stored state
cannot compute a demanded level are excluded); everything downstream is a
conventional iterator engine:

* :class:`SeqScan` / :class:`IndexScan` — produce the degraded *visible* rows
  of one table, either by heap scan or through the access path the planner
  chose (hash/B+-tree/bitmap equality, B+-tree range, GT-index level probe);
* :class:`Filter` — evaluates only the **residual** predicate, i.e. the
  conjuncts the access path does not already guarantee;
* :class:`HashJoin` — builds a hash table on the right input, streams the left;
* :class:`Project` / :class:`Aggregate` — projection and grouped aggregation;
* :class:`TopN` — ``ORDER BY ... LIMIT n`` with a bounded heap of ``n`` rows
  instead of a full sort;
* :class:`Sort` / :class:`Limit` — full ordering and early-exit truncation.

Every operator counts the rows it produced in :class:`OperatorStats`, which is
what ``EXPLAIN ANALYZE`` renders and what tests/benchmarks use to prove that
``LIMIT k`` pulls only O(k) rows past the scan.
"""

from __future__ import annotations

import heapq
import re
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

from ..core.errors import BindingError, ExecutionError, ParameterError
from ..core.values import NULL, SUPPRESSED, is_missing, sort_key
from ..index.gt_index import GTIndex
from ..storage.degradable_store import StoredRow, TableStore
from . import ast_nodes as ast
from .catalog import Catalog
from .planner import AccessPath, PhysicalPlan, TableScanPlan

#: Callable giving the pipeline access to a table's storage manager.
StoreProvider = Callable[[str], TableStore]

#: Key under which the logical row key is exposed in visible rows.
ROW_KEY_FIELD = "__row_key__"


# -- expression evaluation ------------------------------------------------------


def lookup(ref: ast.ColumnRef, row: Dict[str, Any]) -> Any:
    if ref.table is not None:
        qualified = f"{ref.table}.{ref.column}"
        if qualified in row:
            return row[qualified]
    if ref.column in row:
        return row[ref.column]
    if ref.table is None:
        # Try any qualified match (single unambiguous suffix).
        matches = [key for key in row if key.endswith(f".{ref.column}")]
        if len(matches) == 1:
            return row[matches[0]]
        if len(matches) > 1:
            raise BindingError(f"ambiguous column reference {ref.column!r}")
    raise BindingError(f"unknown column {ref.qualified!r}")


def evaluate(expression: ast.Expression, row: Dict[str, Any]) -> Any:
    if isinstance(expression, ast.Literal):
        return expression.value
    if isinstance(expression, ast.Placeholder):
        raise ParameterError(
            "statement has unbound '?' placeholders; pass params= "
            "(or use a Cursor) to bind them"
        )
    if isinstance(expression, ast.ColumnRef):
        return lookup(expression, row)
    if isinstance(expression, ast.Comparison):
        return _compare(expression, row)
    if isinstance(expression, ast.InList):
        value = evaluate(expression.operand, row)
        if is_missing(value):
            return False
        result = any(_equal(value, candidate) for candidate in expression.values)
        return not result if expression.negated else result
    if isinstance(expression, ast.Between):
        value = evaluate(expression.operand, row)
        low = evaluate(expression.low, row)
        high = evaluate(expression.high, row)
        if is_missing(value) or is_missing(low) or is_missing(high):
            return False
        result = sort_key(low) <= sort_key(value) <= sort_key(high)
        return not result if expression.negated else result
    if isinstance(expression, ast.IsNull):
        value = evaluate(expression.operand, row)
        result = value is NULL or value is None or value is SUPPRESSED
        return not result if expression.negated else result
    if isinstance(expression, ast.BooleanOp):
        if expression.operator == "AND":
            return all(_truthy(evaluate(op, row)) for op in expression.operands)
        return any(_truthy(evaluate(op, row)) for op in expression.operands)
    if isinstance(expression, ast.Not):
        return not _truthy(evaluate(expression.operand, row))
    if isinstance(expression, ast.Aggregate):
        raise BindingError(
            f"aggregate {expression.display_name} used outside an aggregate query"
        )
    raise ExecutionError(f"cannot evaluate expression {expression!r}")


def _compare(comparison: ast.Comparison, row: Dict[str, Any]) -> bool:
    left = evaluate(comparison.left, row)
    right = evaluate(comparison.right, row)
    operator = comparison.operator
    if operator == "LIKE":
        if is_missing(left) or is_missing(right):
            return False
        return _like(str(left), str(right))
    if is_missing(left) or is_missing(right):
        return False
    if operator == "=":
        return _equal(left, right)
    if operator == "!=":
        return not _equal(left, right)
    left_key, right_key = sort_key(left), sort_key(right)
    if operator == "<":
        return left_key < right_key
    if operator == "<=":
        return left_key <= right_key
    if operator == ">":
        return left_key > right_key
    if operator == ">=":
        return left_key >= right_key
    raise ExecutionError(f"unsupported comparison operator {operator!r}")


def _truthy(value: Any) -> bool:
    return bool(value) and not is_missing(value)


def _equal(left: Any, right: Any) -> bool:
    if isinstance(left, (int, float)) and isinstance(right, (int, float)) \
            and not isinstance(left, bool) and not isinstance(right, bool):
        return float(left) == float(right)
    if isinstance(left, str) and isinstance(right, str):
        return left.lower() == right.lower()
    return left == right


def _hashable(value: Any) -> Any:
    if isinstance(value, str):
        return value.lower()
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


_LIKE_CACHE: Dict[str, re.Pattern] = {}


def _like(value: str, pattern: str) -> bool:
    """SQL LIKE with ``%`` and ``_`` wildcards (case-insensitive)."""
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for char in pattern:
            if char == "%":
                parts.append(".*")
            elif char == "_":
                parts.append(".")
            else:
                parts.append(re.escape(char))
        compiled = re.compile(f"^{''.join(parts)}$", re.IGNORECASE | re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled.match(value) is not None


def render_expression(expression: ast.Expression) -> str:
    """SQL-ish rendering of an expression for EXPLAIN output."""
    if isinstance(expression, ast.Literal):
        return repr(expression.value)
    if isinstance(expression, ast.Placeholder):
        return "?"
    if isinstance(expression, ast.ColumnRef):
        return expression.qualified
    if isinstance(expression, ast.Comparison):
        return (f"{render_expression(expression.left)} {expression.operator} "
                f"{render_expression(expression.right)}")
    if isinstance(expression, ast.InList):
        values = ", ".join(repr(value) for value in expression.values)
        keyword = "NOT IN" if expression.negated else "IN"
        return f"{render_expression(expression.operand)} {keyword} ({values})"
    if isinstance(expression, ast.Between):
        keyword = "NOT BETWEEN" if expression.negated else "BETWEEN"
        return (f"{render_expression(expression.operand)} {keyword} "
                f"{render_expression(expression.low)} AND "
                f"{render_expression(expression.high)}")
    if isinstance(expression, ast.IsNull):
        keyword = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"{render_expression(expression.operand)} {keyword}"
    if isinstance(expression, ast.BooleanOp):
        joiner = f" {expression.operator} "
        return "(" + joiner.join(render_expression(op) for op in expression.operands) + ")"
    if isinstance(expression, ast.Not):
        return f"NOT {render_expression(expression.operand)}"
    if isinstance(expression, ast.Aggregate):
        return expression.display_name
    return repr(expression)


# -- operator infrastructure ----------------------------------------------------


@dataclass
class OperatorStats:
    """Per-operator row accounting (rendered by ``EXPLAIN ANALYZE``)."""

    rows_out: int = 0


@dataclass
class PipelineRuntime:
    """What operators need from the engine to touch data.

    ``stats`` is the executor's aggregate :class:`ExecutorStats`-shaped
    counter object; scans bump it so engine-level accounting keeps working
    alongside the per-operator counts.
    """

    catalog: Catalog
    stores: StoreProvider
    stats: Any


class Operator:
    """Base class: a restartable-once iterator over rows with counters."""

    label = "Operator"

    def __init__(self, children: Tuple["Operator", ...] = ()) -> None:
        self.children: List[Operator] = list(children)
        self.stats = OperatorStats()

    def rows(self) -> Iterator[Any]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Any]:
        for row in self.rows():
            self.stats.rows_out += 1
            yield row

    def describe(self) -> str:
        return self.label

    def explain_lines(self, analyze: bool = False, indent: int = 0) -> List[str]:
        suffix = f" (rows={self.stats.rows_out})" if analyze else ""
        lines = ["  " * indent + self.describe() + suffix]
        for child in self.children:
            lines.extend(child.explain_lines(analyze, indent + 1))
        return lines

    def walk(self) -> Iterator["Operator"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, label: str) -> Optional["Operator"]:
        """First operator in the tree whose label matches (test helper)."""
        for operator in self.walk():
            if operator.label == label:
                return operator
        return None


# -- scans ---------------------------------------------------------------------


class _ScanBase(Operator):
    """Common visible-row machinery of the table scans.

    A scan yields *visible* rows: dictionaries keyed by plain, alias-qualified
    and table-qualified column names, with degradable values generalized to
    the accuracy level the purpose demands and rows excluded when a demanded
    level is not computable from the stored state.
    """

    def __init__(self, runtime: PipelineRuntime, scan: TableScanPlan) -> None:
        super().__init__()
        self.runtime = runtime
        self.scan = scan
        self.rows_excluded_not_computable = 0

    def describe(self) -> str:
        return self.scan.describe()

    def _candidates(self) -> Iterator[StoredRow]:
        raise NotImplementedError

    def rows(self) -> Iterator[Dict[str, Any]]:
        scan = self.scan
        info = self.runtime.catalog.table(scan.table)
        stats = self.runtime.stats
        for row in self._candidates():
            stats.rows_scanned += 1
            visible = self._visible_row(info.schema, row)
            if visible is None:
                self.rows_excluded_not_computable += 1
                stats.rows_excluded_not_computable += 1
                continue
            yield visible

    def _visible_row(self, schema, row: StoredRow) -> Optional[Dict[str, Any]]:
        scan = self.scan
        visible: Dict[str, Any] = {ROW_KEY_FIELD: row.row_key}
        for column in schema.columns:
            value = row.values[column.name]
            if column.degradable:
                demanded = scan.demanded_levels.get(column.name, 0)
                stored_level = row.levels[column.name]
                if demanded is not None:
                    if stored_level > demanded:
                        return None
                    if stored_level < demanded and not is_missing(value):
                        scheme = self.runtime.catalog.scheme_for(scan.table,
                                                                 column.name)
                        value = scheme.generalize(value, demanded,
                                                  from_level=stored_level)
            visible[column.name] = value
            visible[f"{scan.alias}.{column.name}"] = value
            if scan.alias != scan.table:
                visible[f"{scan.table}.{column.name}"] = value
        return visible


class SeqScan(_ScanBase):
    label = "SeqScan"

    def _candidates(self) -> Iterator[StoredRow]:
        self.runtime.stats.seq_scans += 1
        return self.runtime.stores(self.scan.table).scan()


class IndexScan(_ScanBase):
    label = "IndexScan"

    def _candidates(self) -> Iterator[StoredRow]:
        self.runtime.stats.index_lookups += 1
        access = self.scan.access
        store = self.runtime.stores(self.scan.table)
        candidates = store.fetch(iter(self._candidate_keys(access)))
        if access.kind == "index_range":
            # The B+-tree orders sentinels (NULL/SUPPRESSED) past every real
            # value, so an open upper bound would admit them; the residual
            # range conjuncts were dropped, so guard missing values here.
            column = access.column
            return (row for row in candidates
                    if not is_missing(row.values[column]))
        return candidates

    def _candidate_keys(self, access: AccessPath) -> List[int]:
        index = access.index.index
        if access.kind == "index_eq":
            return index.search(access.key)
        if access.kind == "index_range":
            return index.range_search(access.low, access.high,
                                      include_low=access.include_low,
                                      include_high=access.include_high)
        if access.kind == "gt_level":
            if not isinstance(index, GTIndex):
                raise ExecutionError(
                    f"access path gt_level requires a GT index, got {index.kind}"
                )
            return index.search_at(access.key, access.level)
        raise ExecutionError(f"unknown access path kind {access.kind!r}")


def make_scan(runtime: PipelineRuntime, scan: TableScanPlan) -> _ScanBase:
    if scan.access.kind == "seq":
        return SeqScan(runtime, scan)
    return IndexScan(runtime, scan)


# -- filter / join --------------------------------------------------------------


class Filter(Operator):
    """Evaluates the residual predicate (conjuncts the access path left over)."""

    label = "Filter"

    def __init__(self, child: Operator, predicate: ast.Expression) -> None:
        super().__init__((child,))
        self.predicate = predicate

    def describe(self) -> str:
        return f"Filter ({render_expression(self.predicate)})"

    def rows(self) -> Iterator[Dict[str, Any]]:
        predicate = self.predicate
        for row in self.children[0]:
            if _truthy(evaluate(predicate, row)):
                yield row


class HashJoin(Operator):
    """Equi-join: build a hash table on the right input, stream the left."""

    label = "HashJoin"

    def __init__(self, runtime: PipelineRuntime, left: Operator, right: Operator,
                 clause: ast.JoinClause, right_scan: TableScanPlan) -> None:
        super().__init__((left, right))
        self.runtime = runtime
        self.clause = clause
        self.right_scan = right_scan

    def describe(self) -> str:
        clause = self.clause
        return (f"HashJoin ({clause.kind} {self.right_scan.table} on "
                f"{clause.left.qualified} = {clause.right.qualified})")

    def _pad_columns(self) -> List[str]:
        """Right-side column keys for LEFT JOIN NULL padding.

        Derived from the catalog schema, not from an arbitrary right row, so
        an empty right table still pads every column it would have produced.
        """
        scan = self.right_scan
        schema = self.runtime.catalog.table(scan.table).schema
        keys: List[str] = []
        for column in schema.columns:
            keys.append(column.name)
            keys.append(f"{scan.alias}.{column.name}")
            if scan.alias != scan.table:
                keys.append(f"{scan.table}.{column.name}")
        return keys

    def rows(self) -> Iterator[Dict[str, Any]]:
        clause = self.clause
        scan = self.right_scan
        left_key = clause.left
        right_key = clause.right

        # Decide which side of the ON clause belongs to the joined table.
        def belongs_to_right(ref: ast.ColumnRef) -> bool:
            return ref.table in (scan.alias, scan.table)

        if belongs_to_right(left_key) and not belongs_to_right(right_key):
            left_key, right_key = right_key, left_key
        build: Dict[Any, List[Dict[str, Any]]] = {}
        for right_row in self.children[1]:
            key = lookup(right_key, right_row)
            build.setdefault(_hashable(key), []).append(right_row)
        pad_columns = self._pad_columns() if clause.kind == "left" else []
        for left_row in self.children[0]:
            key = _hashable(lookup(left_key, left_row))
            matches = build.get(key, [])
            if matches:
                for right_row in matches:
                    merged = dict(left_row)
                    merged.update({k: v for k, v in right_row.items()
                                   if k != ROW_KEY_FIELD})
                    yield merged
            elif clause.kind == "left":
                merged = dict(left_row)
                merged.update({key: NULL for key in pad_columns})
                yield merged


# -- projection / aggregation ----------------------------------------------------


class Project(Operator):
    """Evaluates the output expressions, turning row dicts into value tuples."""

    label = "Project"

    def __init__(self, child: Operator,
                 items: List[Tuple[str, ast.Expression]]) -> None:
        super().__init__((child,))
        self.items = items
        self.columns = [name for name, _expr in items]

    def describe(self) -> str:
        return f"Project ({', '.join(self.columns)})"

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        items = self.items
        for row in self.children[0]:
            yield tuple(evaluate(expr, row) for _name, expr in items)


class Aggregate(Operator):
    """Blocking grouped aggregation with HAVING."""

    label = "Aggregate"

    def __init__(self, child: Operator, statement: ast.Select,
                 items: List[Tuple[str, ast.Expression]]) -> None:
        super().__init__((child,))
        self.statement = statement
        self.items = items
        self.columns = [name for name, _expr in items]

    def describe(self) -> str:
        groups = ", ".join(ref.qualified for ref in self.statement.group_by)
        suffix = f" group by {groups}" if groups else ""
        return f"Aggregate ({', '.join(self.columns)}){suffix}"

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        statement = self.statement
        group_columns = list(statement.group_by)
        groups: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
        for row in self.children[0]:
            key = tuple(_hashable(lookup(ref, row)) for ref in group_columns)
            groups.setdefault(key, []).append(row)
        if not group_columns and not groups:
            groups[()] = []
        columns = self.columns
        for key, members in sorted(groups.items(),
                                   key=lambda kv: tuple(sort_key(v) for v in kv[0])):
            representative = members[0] if members else {}
            values = []
            for _name, expression in self.items:
                if isinstance(expression, ast.Aggregate):
                    values.append(_compute_aggregate(expression, members))
                else:
                    values.append(evaluate(expression, representative))
            if statement.having is not None:
                scope = dict(representative)
                scope.update(dict(zip(columns, values)))
                if not _truthy(evaluate(statement.having, scope)):
                    continue
            yield tuple(values)


def _compute_aggregate(aggregate: ast.Aggregate,
                       rows: List[Dict[str, Any]]) -> Any:
    function = aggregate.function.upper()
    if aggregate.argument is None:
        values: List[Any] = [1 for _ in rows]
    else:
        values = [lookup(aggregate.argument, row) for row in rows]
        values = [value for value in values if not is_missing(value)]
    if aggregate.distinct:
        seen = []
        for value in values:
            if value not in seen:
                seen.append(value)
        values = seen
    if function == "COUNT":
        return len(values)
    numeric = [value for value in values if isinstance(value, (int, float))
               and not isinstance(value, bool)]
    if function == "SUM":
        return sum(numeric) if numeric else NULL
    if function == "AVG":
        return sum(numeric) / len(numeric) if numeric else NULL
    if function == "MIN":
        return min(values, key=sort_key) if values else NULL
    if function == "MAX":
        return max(values, key=sort_key) if values else NULL
    raise ExecutionError(f"unsupported aggregate {function}")


# -- ordering / limiting ---------------------------------------------------------


class _RevKey:
    """Inverts the order of one sort-key component (DESC columns)."""

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __lt__(self, other: "_RevKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _RevKey) and self.key == other.key


def _order_positions(order_by: Tuple[ast.OrderItem, ...],
                     columns: List[str]) -> List[Tuple[int, bool]]:
    positions: List[Tuple[int, bool]] = []
    for item in order_by:
        position = None
        for candidate in (item.column.column, item.column.qualified):
            if candidate in columns:
                position = columns.index(candidate)
                break
        if position is None:
            raise BindingError(
                f"ORDER BY column {item.column.qualified!r} is not in the output"
            )
        positions.append((position, item.descending))
    return positions


def _order_key(positions: List[Tuple[int, bool]],
               row: Tuple[Any, ...]) -> Tuple[Any, ...]:
    return tuple(
        _RevKey(sort_key(row[position])) if descending else sort_key(row[position])
        for position, descending in positions
    )


class Sort(Operator):
    """Blocking full sort (ORDER BY without LIMIT)."""

    label = "Sort"

    def __init__(self, child: Operator, order_by: Tuple[ast.OrderItem, ...],
                 columns: List[str]) -> None:
        super().__init__((child,))
        self.order_by = order_by
        self.columns = columns

    def describe(self) -> str:
        keys = ", ".join(
            f"{item.column.qualified}{' DESC' if item.descending else ''}"
            for item in self.order_by
        )
        return f"Sort ({keys})"

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        positions = _order_positions(self.order_by, self.columns)
        materialized = list(self.children[0])
        materialized.sort(key=lambda row: _order_key(positions, row))
        return iter(materialized)


class _HeapEntry:
    """Heap wrapper: ``heap[0]`` is the *worst* kept row (inverted order)."""

    __slots__ = ("key", "row")

    def __init__(self, key: Tuple[Any, ...], row: Tuple[Any, ...]) -> None:
        self.key = key
        self.row = row

    def __lt__(self, other: "_HeapEntry") -> bool:
        return other.key < self.key


class TopN(Operator):
    """ORDER BY + LIMIT with a bounded heap: O(n log k) time, O(k) memory."""

    label = "TopN"

    def __init__(self, child: Operator, order_by: Tuple[ast.OrderItem, ...],
                 columns: List[str], n: int) -> None:
        super().__init__((child,))
        self.order_by = order_by
        self.columns = columns
        self.n = n
        #: High-water mark of rows held — proves the heap stays bounded by n.
        self.max_held = 0

    def describe(self) -> str:
        keys = ", ".join(
            f"{item.column.qualified}{' DESC' if item.descending else ''}"
            for item in self.order_by
        )
        return f"TopN (n={self.n}, by {keys})"

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        if self.n <= 0:
            return
        positions = _order_positions(self.order_by, self.columns)
        heap: List[_HeapEntry] = []
        for seq, row in enumerate(self.children[0]):
            # seq breaks ties so equal-key rows keep their arrival order, the
            # same answer a stable full sort + slice would give.
            entry = _HeapEntry(_order_key(positions, row) + (seq,), row)
            if len(heap) < self.n:
                heapq.heappush(heap, entry)
            elif entry.key < heap[0].key:
                heapq.heapreplace(heap, entry)
            self.max_held = max(self.max_held, len(heap))
        for entry in sorted(heap, key=lambda e: e.key):
            yield entry.row


class Limit(Operator):
    """Early-exit truncation: stops pulling from upstream after ``n`` rows."""

    label = "Limit"

    def __init__(self, child: Operator, n: int) -> None:
        super().__init__((child,))
        self.n = n

    def describe(self) -> str:
        return f"Limit ({self.n})"

    def rows(self) -> Iterator[Any]:
        if self.n <= 0:
            return
        produced = 0
        for row in self.children[0]:
            yield row
            produced += 1
            if produced >= self.n:
                break


# -- pipeline assembly -----------------------------------------------------------


def output_items(catalog: Catalog, statement: ast.Select,
                 plan: PhysicalPlan) -> List[Tuple[str, ast.Expression]]:
    """Resolve the SELECT list into (output name, expression) pairs."""
    items: List[Tuple[str, ast.Expression]] = []
    for item in statement.items:
        if isinstance(item, ast.Star):
            schema = catalog.table(plan.base.table).schema
            for column in schema.columns:
                items.append((column.name, ast.ColumnRef(column=column.name,
                                                         table=plan.base.alias)))
            for _clause, scan in plan.joins:
                join_schema = catalog.table(scan.table).schema
                for column in join_schema.columns:
                    items.append((f"{scan.alias}.{column.name}",
                                  ast.ColumnRef(column=column.name,
                                                table=scan.alias)))
        else:
            items.append((item.output_name, item.expression))
    return items


def build_pipeline(runtime: PipelineRuntime,
                   plan: PhysicalPlan) -> Tuple[List[str], Operator]:
    """Instantiate the operator tree for one execution of ``plan``.

    Operators carry per-execution state (iterators, counters), so a cached
    :class:`~repro.query.planner.PhysicalPlan` is re-instantiated cheaply for
    every run while the planning work (accuracy binding, access-path choice,
    residual split) is done once.
    """
    statement = plan.statement
    root: Operator = make_scan(runtime, plan.base)
    for clause, scan in plan.joins:
        right = make_scan(runtime, scan)
        root = HashJoin(runtime, root, right, clause, scan)
    if plan.residual is not None:
        root = Filter(root, plan.residual)
    if statement.is_aggregate:
        items: List[Tuple[str, ast.Expression]] = []
        for item in statement.items:
            if isinstance(item, ast.Star):
                raise BindingError("SELECT * cannot be combined with aggregation")
            items.append((item.output_name, item.expression))
        root = Aggregate(root, statement, items)
        columns = [name for name, _expr in items]
    else:
        items = output_items(runtime.catalog, statement, plan)
        columns = [name for name, _expr in items]
        root = Project(root, items)
    if statement.order_by:
        if statement.limit is not None:
            root = TopN(root, statement.order_by, columns, statement.limit)
        else:
            root = Sort(root, statement.order_by, columns)
    elif statement.limit is not None:
        root = Limit(root, statement.limit)
    return columns, root


def build_match_pipeline(runtime: PipelineRuntime,
                         plan: PhysicalPlan) -> Operator:
    """Scan + residual filter only: the row-matching pipeline DML uses."""
    root: Operator = make_scan(runtime, plan.base)
    if plan.residual is not None:
        root = Filter(root, plan.residual)
    return root


# -- streaming results ------------------------------------------------------------


class StreamingResult:
    """A lazily-evaluated SELECT result: rows are computed as they are pulled.

    Produced by the cursor path so ``fetchone`` materializes only what was
    fetched; ``pipeline`` is the live operator tree (per-operator stats grow
    as the stream is consumed).
    """

    def __init__(self, columns: List[str], rows_iter: Iterator[Tuple[Any, ...]],
                 pipeline: Operator) -> None:
        self.columns = columns
        self.pipeline = pipeline
        self._iterator = rows_iter

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return self._iterator

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        return next(self._iterator, None)


__all__ = [
    "Operator", "OperatorStats", "PipelineRuntime", "SeqScan", "IndexScan",
    "Filter", "HashJoin", "Project", "Aggregate", "Sort", "TopN", "Limit",
    "StreamingResult", "build_pipeline", "build_match_pipeline", "make_scan",
    "output_items", "evaluate", "lookup", "render_expression",
    "ROW_KEY_FIELD", "StoreProvider",
]
