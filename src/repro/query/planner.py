"""Logical and physical planning: accuracy binding, access paths, residuals.

Planning a ``SELECT`` involves two degradation-specific steps on top of the
usual access-path choice:

* **accuracy binding** — for every degradable column of every table involved,
  determine the accuracy level demanded by the query's purpose (level 0, the
  most accurate, when the purpose does not mention the column);
* **access-path selection** — equality predicates on stable columns can use
  hash/B+-tree/bitmap indexes as usual; equality predicates on *degradable*
  columns can use the degradation-aware :class:`~repro.index.gt_index.GTIndex`
  probed at the demanded accuracy level.

The physical step (:meth:`Planner.plan_physical`) additionally splits the
WHERE clause into the conjuncts the chosen access path already guarantees and
the **residual** predicate the executor still has to evaluate per row — the
operator pipeline then filters on the residual only, instead of re-evaluating
the full WHERE clause behind an index probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import BindingError
from ..core.policy import Purpose
from . import ast_nodes as ast
from .catalog import Catalog, IndexInfo


@dataclass
class AccessPath:
    """How the executor obtains candidate rows of one table."""

    kind: str                       # "seq", "index_eq", "index_range", "gt_level"
    column: Optional[str] = None
    index: Optional[IndexInfo] = None
    key: Any = None
    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True
    level: int = 0

    def describe(self) -> str:
        if self.kind == "seq":
            return "SeqScan"
        if self.kind == "index_eq":
            return f"IndexScan({self.index.name} {self.column}={self.key!r})"
        if self.kind == "index_range":
            return (f"IndexRangeScan({self.index.name} {self.column} in "
                    f"[{self.low!r}, {self.high!r}])")
        if self.kind == "gt_level":
            return (f"GTIndexScan({self.index.name} {self.column}={self.key!r} "
                    f"@level {self.level})")
        return self.kind


@dataclass
class TableScanPlan:
    """Plan fragment producing the visible rows of one table."""

    table: str
    alias: str
    access: AccessPath
    demanded_levels: Dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        levels = ", ".join(f"{col}@{lvl}" for col, lvl in sorted(self.demanded_levels.items()))
        accuracy = f" accuracy[{levels}]" if levels else ""
        return f"{self.access.describe()} on {self.table} as {self.alias}{accuracy}"


@dataclass
class SelectPlan:
    """Complete plan of a SELECT statement."""

    statement: ast.Select
    base: TableScanPlan
    joins: List[Tuple[ast.JoinClause, TableScanPlan]] = field(default_factory=list)
    purpose: Optional[Purpose] = None

    def describe(self) -> str:
        lines = [f"Select from {self.base.describe()}"]
        for clause, scan in self.joins:
            lines.append(
                f"  {clause.kind} join {scan.describe()} on "
                f"{clause.left.qualified} = {clause.right.qualified}"
            )
        if self.statement.where is not None:
            lines.append("  filter: <predicate>")
        if self.statement.is_aggregate:
            lines.append("  aggregate")
        if self.statement.order_by:
            lines.append("  sort")
        if self.statement.limit is not None:
            lines.append(f"  limit {self.statement.limit}")
        if self.purpose is not None:
            lines.append(f"  purpose: {self.purpose.name}")
        return "\n".join(lines)


@dataclass
class PhysicalPlan:
    """Physical plan of a SELECT: scans plus the residual predicate.

    ``residual`` is what remains of the WHERE clause after removing the
    conjuncts the base access path already guarantees (``None`` when nothing
    is left).  With joins the full WHERE clause stays residual — it is
    evaluated after the joins, where unqualified column references may bind to
    join-side columns.  This object is immutable per (statement, purpose,
    catalog version) and is what prepared statements cache; per-execution
    state lives in the operator tree built from it.
    """

    statement: ast.Select
    base: TableScanPlan
    joins: List[Tuple[ast.JoinClause, TableScanPlan]] = field(default_factory=list)
    purpose: Optional[Purpose] = None
    residual: Optional[ast.Expression] = None

    def describe(self) -> str:
        lines = [f"Select from {self.base.describe()}"]
        for clause, scan in self.joins:
            lines.append(
                f"  {clause.kind} join {scan.describe()} on "
                f"{clause.left.qualified} = {clause.right.qualified}"
            )
        if self.purpose is not None:
            lines.append(f"  purpose: {self.purpose.name}")
        return "\n".join(lines)


class Planner:
    """Builds :class:`SelectPlan` / :class:`PhysicalPlan` objects."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # -- public entry points ----------------------------------------------------

    def plan_select(self, statement: ast.Select,
                    purpose: Optional[Purpose] = None) -> SelectPlan:
        base, _consumed = self._plan_table(statement.table, statement.table_alias,
                                           statement.where, purpose)
        joins: List[Tuple[ast.JoinClause, TableScanPlan]] = []
        for clause in statement.joins:
            scan, _ = self._plan_table(clause.table, clause.alias, None, purpose)
            joins.append((clause, scan))
        return SelectPlan(statement=statement, base=base, joins=joins, purpose=purpose)

    def plan_physical(self, statement: ast.Select,
                      purpose: Optional[Purpose] = None) -> PhysicalPlan:
        """Plan a SELECT down to the physical level (access path + residual)."""
        base, consumed = self._plan_table(statement.table, statement.table_alias,
                                          statement.where, purpose)
        joins: List[Tuple[ast.JoinClause, TableScanPlan]] = []
        for clause in statement.joins:
            scan, _ = self._plan_table(clause.table, clause.alias, None, purpose)
            joins.append((clause, scan))
        residual = self._residual(statement, consumed, bool(joins))
        return PhysicalPlan(statement=statement, base=base, joins=joins,
                            purpose=purpose, residual=residual)

    def _residual(self, statement: ast.Select,
                  consumed: List[ast.Expression],
                  has_joins: bool) -> Optional[ast.Expression]:
        where = statement.where
        if where is None:
            return None
        if has_joins:
            # Unqualified column names in the WHERE clause may resolve to a
            # joined table's column on the merged row; keep the full predicate
            # so post-join evaluation stays exactly as before.
            return where
        consumed_ids = {id(conjunct) for conjunct in consumed}
        remaining = [conjunct for conjunct in _flatten_and(where)
                     if id(conjunct) not in consumed_ids]
        if not remaining:
            return None
        if len(remaining) == 1:
            return remaining[0]
        return ast.BooleanOp(operator="AND", operands=tuple(remaining))

    def demanded_levels_for(self, table: str,
                            purpose: Optional[Purpose]) -> Dict[str, Optional[int]]:
        """Per degradable column accuracy levels demanded by ``purpose``.

        A ``None`` level means the column is unconstrained: it is observed at
        whatever accuracy its life cycle policy left behind (see
        :meth:`repro.query.catalog.Catalog.demanded_level`).
        """
        info = self.catalog.table(table)
        levels: Dict[str, int] = {}
        for column in info.schema.degradable_columns():
            levels[column.name] = self.catalog.demanded_level(purpose, table, column.name)
        return levels

    # -- internals -----------------------------------------------------------------

    def _plan_table(self, table: str, alias: Optional[str],
                    where: Optional[ast.Expression],
                    purpose: Optional[Purpose]) -> Tuple[TableScanPlan,
                                                         List[ast.Expression]]:
        """Plan one table's scan; also return the conjuncts the access path
        fully covers (they can be dropped from the residual predicate)."""
        info = self.catalog.table(table)
        demanded = self.demanded_levels_for(table, purpose)
        access, consumed = self._choose_access(info.name, alias or info.name,
                                               where, demanded)
        plan = TableScanPlan(table=info.name, alias=(alias or info.name).lower(),
                             access=access, demanded_levels=demanded)
        return plan, consumed

    def _choose_access(self, table: str, alias: str,
                       where: Optional[ast.Expression],
                       demanded: Dict[str, int]) -> Tuple[AccessPath,
                                                          List[ast.Expression]]:
        if where is None:
            return AccessPath(kind="seq"), []
        info = self.catalog.table(table)
        conjuncts = _flatten_and(where)
        # First preference: equality on an indexed column.  An equality probe
        # returns exactly the rows whose (visible) value matches the key, so
        # the conjunct is covered — except for a NULL key, where predicate
        # semantics (always false) and index semantics may differ.
        for conjunct in conjuncts:
            match = _as_column_literal(conjunct, table, alias)
            if match is None:
                continue
            column, operator, value = match
            if not info.schema.has_column(column):
                continue
            column_def = info.schema.column(column)
            for index_info in info.indexes_on(column):
                if column_def.degradable and index_info.method == "gt" and operator == "=":
                    level = demanded.get(column, 0)
                    if level is None:
                        # Unconstrained accuracy: the stored level varies per
                        # row, so the GT index cannot be probed at one level.
                        continue
                    path = AccessPath(kind="gt_level", column=column, index=index_info,
                                      key=value, level=level)
                    return path, ([] if value is None else [conjunct])
                if not column_def.degradable and operator == "=" and \
                        index_info.method in ("btree", "hash", "bitmap"):
                    path = AccessPath(kind="index_eq", column=column,
                                      index=index_info, key=value)
                    return path, ([] if value is None else [conjunct])
        # Second preference: range on a B+-tree indexed stable column.  Only
        # the conjunct that supplied each *final* bound is covered: an earlier
        # bound overwritten by a later conjunct must stay in the residual.
        ranges: Dict[str, AccessPath] = {}
        bound_sources: Dict[str, Dict[str, ast.Expression]] = {}
        for conjunct in conjuncts:
            match = _as_column_literal(conjunct, table, alias)
            if match is None:
                continue
            column, operator, value = match
            if not info.schema.has_column(column):
                continue
            column_def = info.schema.column(column)
            if column_def.degradable:
                continue
            btree_indexes = [
                index_info for index_info in info.indexes_on(column)
                if index_info.method == "btree"
            ]
            if not btree_indexes:
                continue
            # A NULL bound cannot feed the index (the predicate is always
            # false, the index edge would be unbounded); leave the conjunct
            # to the residual filter.
            if operator == "between":
                if value[0] is None or value[1] is None:
                    continue
            elif value is None:
                continue
            path = ranges.setdefault(
                column, AccessPath(kind="index_range", column=column,
                                   index=btree_indexes[0])
            )
            sources = bound_sources.setdefault(column, {})
            if operator in (">", ">="):
                path.low = value
                path.include_low = operator == ">="
                sources["low"] = conjunct
            elif operator in ("<", "<="):
                path.high = value
                path.include_high = operator == "<="
                sources["high"] = conjunct
            elif operator == "between":
                path.low, path.high = value
                path.include_low = path.include_high = True
                sources["low"] = sources["high"] = conjunct
        for column, path in ranges.items():
            if path.low is not None or path.high is not None:
                consumed = list({id(c): c for c in bound_sources[column].values()}.values())
                return path, consumed
        return AccessPath(kind="seq"), []


def _flatten_and(expression: ast.Expression) -> List[ast.Expression]:
    if isinstance(expression, ast.BooleanOp) and expression.operator == "AND":
        result: List[ast.Expression] = []
        for operand in expression.operands:
            result.extend(_flatten_and(operand))
        return result
    return [expression]


def _as_column_literal(expression: ast.Expression, table: str,
                       alias: str) -> Optional[Tuple[str, str, Any]]:
    """Recognize ``column <op> literal`` conjuncts bound to ``table``/``alias``."""
    def column_matches(ref: ast.ColumnRef) -> bool:
        return ref.table is None or ref.table in (table.lower(), alias.lower())

    if isinstance(expression, ast.Comparison):
        left, right = expression.left, expression.right
        if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal) \
                and column_matches(left):
            return left.column, expression.operator, right.value
        if isinstance(right, ast.ColumnRef) and isinstance(left, ast.Literal) \
                and column_matches(right):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            operator = flipped.get(expression.operator, expression.operator)
            return right.column, operator, left.value
    if isinstance(expression, ast.Between) and not expression.negated:
        if isinstance(expression.operand, ast.ColumnRef) and \
                isinstance(expression.low, ast.Literal) and \
                isinstance(expression.high, ast.Literal) and \
                column_matches(expression.operand):
            return expression.operand.column, "between", \
                (expression.low.value, expression.high.value)
    return None


__all__ = ["Planner", "SelectPlan", "PhysicalPlan", "TableScanPlan", "AccessPath"]
