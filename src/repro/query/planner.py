"""Logical and physical planning: accuracy binding, access paths, residuals.

Planning a ``SELECT`` involves two degradation-specific steps on top of the
usual access-path choice:

* **accuracy binding** — for every degradable column of every table involved,
  determine the accuracy level demanded by the query's purpose (level 0, the
  most accurate, when the purpose does not mention the column);
* **access-path selection** — equality predicates on stable columns can use
  hash/B+-tree/bitmap indexes as usual; equality predicates on *degradable*
  columns can use the degradation-aware :class:`~repro.index.gt_index.GTIndex`
  probed at the demanded accuracy level.

The physical step (:meth:`Planner.plan_physical`) additionally:

* splits the WHERE clause into the conjuncts the chosen access path already
  guarantees and the **residual** predicate the executor still has to
  evaluate per row;
* **costs** the candidate access paths against a sequential scan when the
  catalog carries table statistics (:mod:`repro.query.statistics`) — an
  indexed-but-unselective predicate is planned as a sequential scan instead
  of a probe that fetches most of the heap anyway;
* computes the set of columns the query actually touches (projection +
  residual + join keys + ORDER BY/GROUP BY/HAVING) and threads it into each
  :class:`TableScanPlan`, so the store decodes only those columns;
* marks a scan **index-only** when the chosen GT/B+-tree index entries cover
  every needed column at the query's accuracy level — the executor then
  skips the heap fetch entirely;
* estimates per-scan output rows and the residual's selectivity (rendered by
  EXPLAIN, used to pick the hash-join build side).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..core.policy import Purpose
from . import ast_nodes as ast
from .catalog import Catalog, IndexInfo
from .compiler import (
    CompiledSelect,
    _truthy,
    compile_batch_conjuncts,
    compile_predicate,
    compile_select,
    evaluate,
)
from .parameters import bind_expression
from .statistics import DEFAULT_SELECTIVITY

#: Cost-model constants (arbitrary units; only ratios matter).  A row fetched
#: through an index probe pays a random heap lookup, a sequentially scanned
#: row a cheaper streaming read.
SEQ_ROW_COST = 1.0
INDEX_FETCH_COST = 2.0
INDEX_PROBE_COST = 4.0

#: Below this row count the stats-free preference order is kept: probing an
#: index on a tiny table costs nothing either way, and estimates on nearly
#: empty tables are noise.
SMALL_TABLE_ROWS = 64


@dataclass(frozen=True)
class ParamMarker:
    """A plan slot fed by a ``?`` parameter (position in the bind sequence).

    Parameter-shape-keyed plan caching plans the *template* statement — with
    placeholders still in the WHERE clause — once per parameter shape; markers
    record where the bound values flow into the access path, so re-execution
    substitutes values instead of re-planning.
    """

    index: int

    def __repr__(self) -> str:
        return f"?{self.index}"


def _subst_param(value: Any, params: Sequence[Any]) -> Any:
    return params[value.index] if isinstance(value, ParamMarker) else value


def _has_marker(*values: Any) -> bool:
    return any(isinstance(value, ParamMarker) for value in values)


@dataclass
class AccessPath:
    """How the executor obtains candidate rows of one table."""

    kind: str                       # "seq", "index_eq", "index_range", "gt_level"
    column: Optional[str] = None
    index: Optional[IndexInfo] = None
    key: Any = None
    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True
    level: int = 0

    def describe(self) -> str:
        if self.kind == "seq":
            return "SeqScan"
        if self.kind == "index_eq":
            return f"IndexScan({self.index.name} {self.column}={self.key!r})"
        if self.kind == "index_range":
            return (f"IndexRangeScan({self.index.name} {self.column} in "
                    f"[{self.low!r}, {self.high!r}])")
        if self.kind == "gt_level":
            return (f"GTIndexScan({self.index.name} {self.column}={self.key!r} "
                    f"@level {self.level})")
        return self.kind


@dataclass
class TableScanPlan:
    """Plan fragment producing the visible rows of one table."""

    table: str
    alias: str
    access: AccessPath
    demanded_levels: Dict[str, int] = field(default_factory=dict)
    #: Columns the query touches on this table (``None`` = all, e.g. for
    #: ``SELECT *``); the store decodes only these.
    needed_columns: Optional[Tuple[str, ...]] = None
    #: Emit alias/table-qualified key names in visible rows.  Only needed
    #: when the query actually writes qualified references (or joins, where
    #: plain names can collide across tables); plain-only rows halve the
    #: per-row dict work.
    qualified_keys: bool = True
    #: The chosen index covers every needed column: skip the heap fetch.
    index_only: bool = False
    #: Sequential access over a table with columnar segments: run the
    #: vectorized ColumnarScan (batch exclusion/filter over column vectors)
    #: instead of the row-at-a-time heap scan.
    columnar: bool = False
    #: Estimated rows this scan produces (``None`` without statistics).
    estimated_rows: Optional[float] = None
    #: For join-side scans of an inner join: build the hash table on the
    #: *left* (streamed) input because it is estimated smaller.
    build_left: bool = False
    #: For join-side scans: estimated rows out of the join that consumes
    #: this scan (the planner's running chain, rendered by EXPLAIN).
    join_estimated_rows: Optional[float] = None

    def describe(self) -> str:
        levels = ", ".join(f"{col}@{lvl}" for col, lvl in sorted(self.demanded_levels.items()))
        accuracy = f" accuracy[{levels}]" if levels else ""
        access = self.access.describe()
        if self.columnar and self.access.kind == "seq":
            access = "ColumnarScan"
        if self.index_only:
            _name, _sep, detail = access.partition("(")
            access = f"IndexOnlyScan({detail}" if detail else "IndexOnlyScan"
        return f"{access} on {self.table} as {self.alias}{accuracy}"


@dataclass
class SelectPlan:
    """Complete plan of a SELECT statement."""

    statement: ast.Select
    base: TableScanPlan
    joins: List[Tuple[ast.JoinClause, TableScanPlan]] = field(default_factory=list)
    purpose: Optional[Purpose] = None

    def describe(self) -> str:
        lines = [f"Select from {self.base.describe()}"]
        for clause, scan in self.joins:
            lines.append(
                f"  {clause.kind} join {scan.describe()} on "
                f"{clause.left.qualified} = {clause.right.qualified}"
            )
        if self.statement.where is not None:
            lines.append("  filter: <predicate>")
        if self.statement.is_aggregate:
            lines.append("  aggregate")
        if self.statement.order_by:
            lines.append("  sort")
        if self.statement.limit is not None:
            lines.append(f"  limit {self.statement.limit}")
        if self.purpose is not None:
            lines.append(f"  purpose: {self.purpose.name}")
        return "\n".join(lines)


@dataclass
class PhysicalPlan:
    """Physical plan of a SELECT: scans plus the residual predicate.

    ``residual`` is what remains of the WHERE clause after removing the
    conjuncts the base access path already guarantees (``None`` when nothing
    is left).  With joins the full WHERE clause stays residual — it is
    evaluated after the joins, where unqualified column references may bind to
    join-side columns.  This object is immutable per (statement, purpose,
    catalog version) and is what prepared statements cache; per-execution
    state lives in the operator tree built from it.

    The plan additionally memoizes its **compiled artifacts** (residual
    predicate, projection and join-key closures, see
    :mod:`repro.query.compiler`): the first execution compiles, every
    re-execution of a cached plan reuses the closures — the same
    encode-once/reuse pattern as the WAL's record-payload cache.
    """

    statement: ast.Select
    base: TableScanPlan
    joins: List[Tuple[ast.JoinClause, TableScanPlan]] = field(default_factory=list)
    purpose: Optional[Purpose] = None
    residual: Optional[ast.Expression] = None
    #: Estimated fraction of rows the residual predicate lets through.
    residual_selectivity: float = 1.0
    _compiled: Optional[CompiledSelect] = field(default=None, repr=False,
                                                compare=False)

    @property
    def is_compiled(self) -> bool:
        return self._compiled is not None

    def ensure_compiled(self, catalog: Catalog,
                        mode: str = "compiled") -> CompiledSelect:
        """Compile once, reuse on every later execution of this plan."""
        if self._compiled is None or self._compiled.mode != mode:
            self._compiled = compile_select(catalog, self, mode)
        return self._compiled

    def describe(self) -> str:
        lines = [f"Select from {self.base.describe()}"]
        for clause, scan in self.joins:
            lines.append(
                f"  {clause.kind} join {scan.describe()} on "
                f"{clause.left.qualified} = {clause.right.qualified}"
            )
        if self.purpose is not None:
            lines.append(f"  purpose: {self.purpose.name}")
        return "\n".join(lines)


class Planner:
    """Builds :class:`SelectPlan` / :class:`PhysicalPlan` objects."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # -- public entry points ----------------------------------------------------

    def plan_select(self, statement: ast.Select,
                    purpose: Optional[Purpose] = None) -> SelectPlan:
        base, _consumed = self._plan_table(statement.table, statement.table_alias,
                                           statement.where, purpose)
        joins: List[Tuple[ast.JoinClause, TableScanPlan]] = []
        for clause in statement.joins:
            scan, _ = self._plan_table(clause.table, clause.alias, None, purpose)
            joins.append((clause, scan))
        return SelectPlan(statement=statement, base=base, joins=joins, purpose=purpose)

    def plan_physical(self, statement: ast.Select,
                      purpose: Optional[Purpose] = None) -> PhysicalPlan:
        """Plan a SELECT down to the physical level (access path + residual)."""
        base, consumed = self._plan_table(statement.table, statement.table_alias,
                                          statement.where, purpose)
        joins: List[Tuple[ast.JoinClause, TableScanPlan]] = []
        for clause in statement.joins:
            scan, _ = self._plan_table(clause.table, clause.alias, None, purpose)
            joins.append((clause, scan))
        residual = self._residual(statement, consumed, bool(joins))
        plan = PhysicalPlan(statement=statement, base=base, joins=joins,
                            purpose=purpose, residual=residual)
        self._prune_columns(plan)
        self._estimate(plan)
        self._mark_index_only(plan)
        self._mark_columnar(plan)
        self._choose_build_sides(plan)
        return plan

    def _residual(self, statement: ast.Select,
                  consumed: List[ast.Expression],
                  has_joins: bool) -> Optional[ast.Expression]:
        where = statement.where
        if where is None:
            return None
        if has_joins:
            # Unqualified column names in the WHERE clause may resolve to a
            # joined table's column on the merged row; keep the full predicate
            # so post-join evaluation stays exactly as before.
            return where
        consumed_ids = {id(conjunct) for conjunct in consumed}
        remaining = [conjunct for conjunct in _flatten_and(where)
                     if id(conjunct) not in consumed_ids]
        if not remaining:
            return None
        if len(remaining) == 1:
            return remaining[0]
        return ast.BooleanOp(operator="AND", operands=tuple(remaining))

    def demanded_levels_for(self, table: str,
                            purpose: Optional[Purpose]) -> Dict[str, Optional[int]]:
        """Per degradable column accuracy levels demanded by ``purpose``.

        A ``None`` level means the column is unconstrained: it is observed at
        whatever accuracy its life cycle policy left behind (see
        :meth:`repro.query.catalog.Catalog.demanded_level`).
        """
        info = self.catalog.table(table)
        levels: Dict[str, int] = {}
        for column in info.schema.degradable_columns():
            levels[column.name] = self.catalog.demanded_level(purpose, table, column.name)
        return levels

    # -- column pruning -----------------------------------------------------------

    def _prune_columns(self, plan: PhysicalPlan) -> None:
        """Attach the per-table needed-column sets to the plan's scans."""
        if not getattr(self.catalog, "read_optimized", True):
            return
        refs: List[ast.ColumnRef] = []
        saw_star = False
        statement = plan.statement
        for item in statement.items:
            if isinstance(item, ast.Star):
                saw_star = True
            else:
                _collect_refs(item.expression, refs)
        if saw_star:
            return                      # every column of every table is needed
        if statement.where is not None:
            _collect_refs(statement.where, refs)
        if statement.having is not None:
            _collect_refs(statement.having, refs)
        for clause in statement.joins:
            refs.append(clause.left)
            refs.append(clause.right)
        for ref in statement.group_by:
            refs.append(ref)
        for item in statement.order_by:
            refs.append(item.column)
        has_joins = bool(statement.joins)
        for scan in [plan.base] + [scan for _clause, scan in plan.joins]:
            schema = self.catalog.table(scan.table).schema
            needed: Set[str] = set()
            qualified = has_joins
            for ref in refs:
                if ref.table is not None and ref.table not in (scan.table, scan.alias):
                    continue
                if schema.has_column(ref.column):
                    needed.add(ref.column.lower())
                    if ref.table is not None:
                        qualified = True
            if scan.access.column is not None:
                needed.add(scan.access.column)
            scan.needed_columns = tuple(sorted(needed))
            scan.qualified_keys = qualified

    # -- estimates -----------------------------------------------------------------

    def _table_stats(self, table: str):
        registry = getattr(self.catalog, "statistics", None)
        if registry is None:
            return None
        return registry.table(table)

    def _access_estimate(self, table: str, access: AccessPath) -> Optional[float]:
        stats = self._table_stats(table)
        if stats is None:
            return None
        if access.kind == "seq":
            return float(stats.row_count)
        if access.kind == "index_eq":
            if _has_marker(access.key):
                # Generic-plan estimate: the value is unknown at plan time,
                # assume an average-frequency probe (row_count / NDV).
                ndv = stats.ndv(access.column)
                return max(1.0, stats.row_count / ndv) if ndv \
                    else max(1.0, stats.row_count * DEFAULT_SELECTIVITY)
            return stats.estimated_eq_rows(access.column, access.key)
        if access.kind == "index_range":
            if _has_marker(access.low, access.high):
                return max(1.0, stats.row_count * DEFAULT_SELECTIVITY)
            return stats.estimated_range_rows(
                access.column, access.low, access.high,
                access.include_low, access.include_high)
        if access.kind == "gt_level":
            # The probe also folds in finer-stored rows that generalize to
            # the key, which the frequency map cannot see; the exact count is
            # a lower bound.
            if _has_marker(access.key):
                ndv = stats.ndv(access.column)
                return max(1.0, stats.row_count / ndv) if ndv \
                    else max(1.0, stats.row_count * DEFAULT_SELECTIVITY)
            return max(1.0, stats.estimated_eq_rows(access.column, access.key))
        return None

    def _estimate(self, plan: PhysicalPlan) -> None:
        for scan in [plan.base] + [scan for _clause, scan in plan.joins]:
            scan.estimated_rows = self._access_estimate(scan.table, scan.access)
        plan.residual_selectivity = self._residual_selectivity(plan)

    def _residual_selectivity(self, plan: PhysicalPlan) -> float:
        if plan.residual is None:
            return 1.0
        stats = self._table_stats(plan.base.table)
        selectivity = 1.0
        for conjunct in _flatten_and(plan.residual):
            fraction = DEFAULT_SELECTIVITY
            if stats is not None and stats.row_count:
                match = _as_column_literal(conjunct, plan.base.table,
                                           plan.base.alias)
                if match is not None:
                    column, operator, value = match
                    if _has_marker(value) or (isinstance(value, tuple)
                                              and _has_marker(*value)):
                        fraction = DEFAULT_SELECTIVITY
                    elif operator == "=":
                        fraction = stats.estimated_eq_rows(column, value) \
                            / stats.row_count
                    elif operator == "between":
                        fraction = stats.estimated_range_rows(
                            column, value[0], value[1]) / stats.row_count
                    elif operator in (">", ">="):
                        fraction = stats.estimated_range_rows(
                            column, low=value,
                            include_low=operator == ">=") / stats.row_count
                    elif operator in ("<", "<="):
                        fraction = stats.estimated_range_rows(
                            column, high=value,
                            include_high=operator == "<=") / stats.row_count
            selectivity *= min(1.0, max(0.0, fraction))
        return max(selectivity, 0.001)

    # -- index-only scans -----------------------------------------------------------

    def _mark_index_only(self, plan: PhysicalPlan) -> None:
        if not getattr(self.catalog, "read_optimized", True):
            return
        for scan in [plan.base] + [scan for _clause, scan in plan.joins]:
            scan.index_only = self._index_only_eligible(scan)

    def _index_only_eligible(self, scan: TableScanPlan) -> bool:
        """A scan can skip the heap when the index covers everything.

        Covering requires (a) every needed column to be the indexed column
        itself (GT and B+-tree entries carry their key, so the visible value
        is reconstructible without the heap), and (b) no *other* degradable
        column to demand an accuracy level: visibility exclusion (a stored
        level coarser than demanded hides the row) is decided by per-row
        levels that live in the heap record — except for the GT index's own
        column, whose bucket structure enforces exactly that rule.
        """
        access = scan.access
        if access.kind == "gt_level":
            pass
        elif access.kind in ("index_eq", "index_range"):
            if access.index is None or access.index.method != "btree":
                return False
        else:
            return False
        if scan.needed_columns is None:
            return False
        if not set(scan.needed_columns) <= {access.column}:
            return False
        for column, level in scan.demanded_levels.items():
            if level is None:
                continue
            if access.kind == "gt_level" and column == access.column:
                continue
            return False
        return True

    # -- columnar scans --------------------------------------------------------------

    def _mark_columnar(self, plan: PhysicalPlan) -> None:
        """Sequential scans of columnar tables run vectorized.

        Only under read-path optimizations (the interpreted baseline engine
        must keep its reference row-at-a-time pipeline), and only for ``seq``
        access — index probes already touch a small row subset, for which
        batch materialization has nothing to amortize.
        """
        if not getattr(self.catalog, "read_optimized", True):
            return
        is_columnar = getattr(self.catalog, "is_columnar", None)
        if is_columnar is None:
            return
        for scan in [plan.base] + [scan for _clause, scan in plan.joins]:
            if scan.access.kind == "seq" and is_columnar(scan.table):
                scan.columnar = True

    # -- join build side -------------------------------------------------------------

    def _choose_build_sides(self, plan: PhysicalPlan) -> None:
        """Build each inner hash join on its estimated-smaller input, and
        record the running join-output estimate on each join scan (EXPLAIN
        and the filter estimate downstream read it — one model, computed
        once at plan time)."""
        if not getattr(self.catalog, "read_optimized", True):
            return
        running = plan.base.estimated_rows
        for clause, scan in plan.joins:
            if clause.kind == "inner" and running is not None \
                    and scan.estimated_rows is not None \
                    and running < scan.estimated_rows:
                scan.build_left = True
            running = _join_estimate(running, scan, self._table_stats(scan.table),
                                     clause)
            scan.join_estimated_rows = running

    # -- internals -----------------------------------------------------------------

    def _plan_table(self, table: str, alias: Optional[str],
                    where: Optional[ast.Expression],
                    purpose: Optional[Purpose]) -> Tuple[TableScanPlan,
                                                         List[ast.Expression]]:
        """Plan one table's scan; also return the conjuncts the access path
        fully covers (they can be dropped from the residual predicate)."""
        info = self.catalog.table(table)
        demanded = self.demanded_levels_for(table, purpose)
        access, consumed = self._choose_access(info.name, alias or info.name,
                                               where, demanded)
        plan = TableScanPlan(table=info.name, alias=(alias or info.name).lower(),
                             access=access, demanded_levels=demanded)
        return plan, consumed

    def _choose_access(self, table: str, alias: str,
                       where: Optional[ast.Expression],
                       demanded: Dict[str, int]) -> Tuple[AccessPath,
                                                          List[ast.Expression]]:
        if where is None:
            return AccessPath(kind="seq"), []
        candidates = self._gather_candidates(table, alias, where, demanded)
        if not candidates:
            return AccessPath(kind="seq"), []
        stats = self._table_stats(table)
        if stats is None or stats.row_count < SMALL_TABLE_ROWS:
            # Stats-free (or tiny-table) fallback: the historical preference
            # order — first equality candidate, else first complete range.
            return candidates[0]
        # The GT index prunes whole accuracy partitions the frequency map
        # cannot model; keep it whenever applicable.
        for path, consumed in candidates:
            if path.kind == "gt_level":
                return path, consumed
        seq_cost = stats.row_count * SEQ_ROW_COST
        best: Optional[Tuple[AccessPath, List[ast.Expression]]] = None
        best_cost = seq_cost
        for path, consumed in candidates:
            estimate = self._access_estimate(table, path)
            if estimate is None:
                estimate = stats.row_count * DEFAULT_SELECTIVITY
            cost = INDEX_PROBE_COST + estimate * INDEX_FETCH_COST
            if cost < best_cost:
                best = (path, consumed)
                best_cost = cost
        if best is None:
            return AccessPath(kind="seq"), []
        return best

    def _gather_candidates(self, table: str, alias: str,
                           where: ast.Expression,
                           demanded: Dict[str, int]
                           ) -> List[Tuple[AccessPath, List[ast.Expression]]]:
        """Every usable index access path, in historical preference order."""
        info = self.catalog.table(table)
        conjuncts = _flatten_and(where)
        candidates: List[Tuple[AccessPath, List[ast.Expression]]] = []
        # Equality on an indexed column.  An equality probe returns exactly
        # the rows whose (visible) value matches the key, so the conjunct is
        # covered — except for a NULL key, where predicate semantics (always
        # false) and index semantics may differ.
        for conjunct in conjuncts:
            match = _as_column_literal(conjunct, table, alias)
            if match is None:
                continue
            column, operator, value = match
            if not info.schema.has_column(column):
                continue
            column_def = info.schema.column(column)
            for index_info in info.indexes_on(column):
                if column_def.degradable and index_info.method == "gt" and operator == "=":
                    level = demanded.get(column, 0)
                    if level is None:
                        # Unconstrained accuracy: the stored level varies per
                        # row, so the GT index cannot be probed at one level.
                        continue
                    path = AccessPath(kind="gt_level", column=column, index=index_info,
                                      key=value, level=level)
                    candidates.append((path, [] if value is None else [conjunct]))
                elif not column_def.degradable and operator == "=" and \
                        index_info.method in ("btree", "hash", "bitmap"):
                    path = AccessPath(kind="index_eq", column=column,
                                      index=index_info, key=value)
                    candidates.append((path, [] if value is None else [conjunct]))
        # Range on a B+-tree indexed stable column.  Only the conjunct that
        # supplied each *final* bound is covered: an earlier bound overwritten
        # by a later conjunct must stay in the residual.
        ranges: Dict[str, AccessPath] = {}
        bound_sources: Dict[str, Dict[str, ast.Expression]] = {}
        for conjunct in conjuncts:
            match = _as_column_literal(conjunct, table, alias)
            if match is None:
                continue
            column, operator, value = match
            if not info.schema.has_column(column):
                continue
            column_def = info.schema.column(column)
            if column_def.degradable:
                continue
            btree_indexes = [
                index_info for index_info in info.indexes_on(column)
                if index_info.method == "btree"
            ]
            if not btree_indexes:
                continue
            # A NULL bound cannot feed the index (the predicate is always
            # false, the index edge would be unbounded); leave the conjunct
            # to the residual filter.
            if operator == "between":
                if value[0] is None or value[1] is None:
                    continue
            elif value is None:
                continue
            path = ranges.setdefault(
                column, AccessPath(kind="index_range", column=column,
                                   index=btree_indexes[0])
            )
            sources = bound_sources.setdefault(column, {})
            if operator in (">", ">="):
                path.low = value
                path.include_low = operator == ">="
                sources["low"] = conjunct
            elif operator in ("<", "<="):
                path.high = value
                path.include_high = operator == "<="
                sources["high"] = conjunct
            elif operator == "between":
                path.low, path.high = value
                path.include_low = path.include_high = True
                sources["low"] = sources["high"] = conjunct
        for column, path in ranges.items():
            if path.low is not None or path.high is not None:
                consumed = list({id(c): c for c in bound_sources[column].values()}.values())
                candidates.append((path, consumed))
        return candidates


def _bind_scan(scan: TableScanPlan, params: Tuple[Any, ...]) -> TableScanPlan:
    """A copy of ``scan`` with parameter markers replaced by bound values."""
    access = scan.access
    if not _has_marker(access.key, access.low, access.high):
        return scan
    access = dataclasses.replace(access,
                                 key=_subst_param(access.key, params),
                                 low=_subst_param(access.low, params),
                                 high=_subst_param(access.high, params))
    return dataclasses.replace(scan, access=access)


def bind_physical_plan(template: PhysicalPlan, params: Sequence[Any],
                       catalog: Catalog,
                       mode: str = "compiled") -> PhysicalPlan:
    """Bind a parameter-shape template plan to one execution's values.

    The template was planned with :class:`ParamMarker` slots in its access
    paths and raw placeholders in its residual predicate.  Binding substitutes
    the values into the access paths, binds the residual expression, and
    recompiles *only* the residual closure — the projection and join-key
    closures (and the whole access-path choice) are shared with the template,
    which is the entire point: re-execution pays a small substitution instead
    of a full ``plan_physical``.
    """
    values = tuple(params)
    compiled = template.ensure_compiled(catalog, mode)
    base = _bind_scan(template.base, values)
    joins = [(clause, _bind_scan(scan, values))
             for clause, scan in template.joins]
    residual = template.residual
    residual_fn = compiled.residual
    batch_conjuncts = compiled.batch_conjuncts
    if residual is not None:
        bound = bind_expression(residual, values)
        if bound is not residual:
            residual = bound
            if mode == "compiled":
                residual_fn = compile_predicate(bound)
                # Placeholders made the template residual non-batchable;
                # the bound residual is all literals, so try again.
                batch_conjuncts = compile_batch_conjuncts(bound)
            else:
                residual_fn = (lambda predicate: lambda row: _truthy(
                    evaluate(predicate, row)))(bound)
    bound_compiled = CompiledSelect(
        mode=compiled.mode, columns=compiled.columns, items=compiled.items,
        project=compiled.project, residual=residual_fn,
        join_keys=compiled.join_keys, hidden=compiled.hidden,
        batch_conjuncts=batch_conjuncts,
        batch_project=compiled.batch_project)
    return PhysicalPlan(statement=template.statement, base=base, joins=joins,
                        purpose=template.purpose, residual=residual,
                        residual_selectivity=template.residual_selectivity,
                        _compiled=bound_compiled)


def _join_estimate(left_rows: Optional[float], scan: TableScanPlan,
                   right_stats, clause: ast.JoinClause) -> Optional[float]:
    """Rows out of one hash join, given the streamed side's estimate."""
    if left_rows is None or scan.estimated_rows is None:
        return None
    right_ref = clause.right if clause.right.table in (scan.alias, scan.table) \
        else clause.left
    matches_per_row = 1.0
    if right_stats is not None:
        ndv = right_stats.ndv(right_ref.column)
        if ndv:
            matches_per_row = max(1.0, scan.estimated_rows / ndv)
    estimate = left_rows * matches_per_row
    if clause.kind == "left":
        estimate = max(estimate, left_rows)
    return estimate


def _collect_refs(expression: ast.Expression, out: List[ast.ColumnRef]) -> None:
    """Gather every column reference in an expression tree."""
    if isinstance(expression, ast.ColumnRef):
        out.append(expression)
    elif isinstance(expression, ast.Comparison):
        _collect_refs(expression.left, out)
        _collect_refs(expression.right, out)
    elif isinstance(expression, ast.InList):
        _collect_refs(expression.operand, out)
    elif isinstance(expression, ast.Between):
        _collect_refs(expression.operand, out)
        _collect_refs(expression.low, out)
        _collect_refs(expression.high, out)
    elif isinstance(expression, ast.IsNull):
        _collect_refs(expression.operand, out)
    elif isinstance(expression, ast.BooleanOp):
        for operand in expression.operands:
            _collect_refs(operand, out)
    elif isinstance(expression, ast.Not):
        _collect_refs(expression.operand, out)
    elif isinstance(expression, ast.Aggregate):
        if expression.argument is not None:
            out.append(expression.argument)


def _flatten_and(expression: ast.Expression) -> List[ast.Expression]:
    if isinstance(expression, ast.BooleanOp) and expression.operator == "AND":
        result: List[ast.Expression] = []
        for operand in expression.operands:
            result.extend(_flatten_and(operand))
        return result
    return [expression]


def _constant_value(expression: ast.Expression) -> Tuple[bool, Any]:
    """A literal's value, or a :class:`ParamMarker` for a ``?`` placeholder.

    Placeholders are plan-time constants under parameter-shape-keyed caching:
    the access path records *where* the value comes from, and binding
    substitutes the actual parameter per execution.
    """
    if isinstance(expression, ast.Literal):
        return True, expression.value
    if isinstance(expression, ast.Placeholder):
        return True, ParamMarker(expression.index)
    return False, None


def _as_column_literal(expression: ast.Expression, table: str,
                       alias: str) -> Optional[Tuple[str, str, Any]]:
    """Recognize ``column <op> constant`` conjuncts bound to ``table``/``alias``
    (the constant side may be a literal or a ``?`` placeholder)."""
    def column_matches(ref: ast.ColumnRef) -> bool:
        return ref.table is None or ref.table in (table.lower(), alias.lower())

    if isinstance(expression, ast.Comparison):
        left, right = expression.left, expression.right
        if isinstance(left, ast.ColumnRef) and column_matches(left):
            ok, value = _constant_value(right)
            if ok:
                return left.column, expression.operator, value
        if isinstance(right, ast.ColumnRef) and column_matches(right):
            ok, value = _constant_value(left)
            if ok:
                flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
                operator = flipped.get(expression.operator, expression.operator)
                return right.column, operator, value
    if isinstance(expression, ast.Between) and not expression.negated:
        if isinstance(expression.operand, ast.ColumnRef) and \
                column_matches(expression.operand):
            low_ok, low = _constant_value(expression.low)
            high_ok, high = _constant_value(expression.high)
            if low_ok and high_ok:
                return expression.operand.column, "between", (low, high)
    return None


__all__ = ["Planner", "SelectPlan", "PhysicalPlan", "TableScanPlan", "AccessPath",
           "ParamMarker", "bind_physical_plan",
           "SEQ_ROW_COST", "INDEX_FETCH_COST", "INDEX_PROBE_COST",
           "SMALL_TABLE_ROWS"]
