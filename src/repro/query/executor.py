"""Query execution over the streaming operator pipeline.

The executor implements the paper's selection and projection operators
``σ_{P,k}`` and ``π_{*,k}``: data referenced at a demanded accuracy level ``k``
is degraded with ``f_k`` *before* the predicate is evaluated, and only tuples
for which level ``k`` is computable (i.e. stored at an accuracy of at least
``k``) participate in the result.  Execution itself is delegated to the
Volcano-style operators in :mod:`repro.query.operators`: the executor turns a
:class:`~repro.query.planner.PhysicalPlan` into an operator tree and either
materializes it into a :class:`QueryResult` or hands back a
:class:`~repro.query.operators.StreamingResult` that cursors drain lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..core.errors import ExecutionError
from ..core.policy import Purpose
from ..storage.degradable_store import StoredRow
from . import ast_nodes as ast
from .catalog import Catalog
from .operators import (
    ROW_KEY_FIELD,
    Operator,
    PipelineRuntime,
    StoreProvider,
    StreamingResult,
    build_match_pipeline,
    build_pipeline,
)
from .planner import PhysicalPlan, Planner, SelectPlan


@dataclass
class QueryResult:
    """Result of a SELECT: column names plus value tuples.

    ``pipeline`` is the executed operator tree — its per-operator
    :class:`~repro.query.operators.OperatorStats` show how many rows crossed
    each stage (the EXPLAIN ANALYZE numbers).
    """

    columns: List[str]
    rows: List[Tuple[Any, ...]]
    pipeline: Optional[Operator] = field(default=None, repr=False, compare=False)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> List[Any]:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise ExecutionError(f"result has no column {name!r}") from None
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)


@dataclass
class ExecutorStats:
    """Aggregate counters across executions (per-operator counts live on the
    operator trees; see :attr:`Executor.last_pipeline`)."""

    rows_scanned: int = 0
    rows_excluded_not_computable: int = 0
    rows_returned: int = 0
    index_lookups: int = 0
    seq_scans: int = 0
    #: Covering queries answered from index entries alone (no heap fetch).
    index_only_scans: int = 0


class Executor:
    """Runs physical plans against the table stores."""

    def __init__(self, catalog: Catalog, store_provider: StoreProvider,
                 compile_mode: str = "compiled") -> None:
        self.catalog = catalog
        self.stores = store_provider
        self.planner = Planner(catalog)
        self.stats = ExecutorStats()
        #: Operator tree of the most recent execution (stats introspection).
        self.last_pipeline: Optional[Operator] = None
        self._runtime = PipelineRuntime(catalog=catalog, stores=store_provider,
                                        stats=self.stats,
                                        compile_mode=compile_mode)

    # ------------------------------------------------------------------ SELECT

    def execute_select(self, statement: ast.Select,
                       purpose: Optional[Purpose] = None) -> QueryResult:
        plan = self.planner.plan_physical(statement, purpose)
        return self.execute_physical(plan)

    def execute_plan(self, plan: Union[SelectPlan, PhysicalPlan]) -> QueryResult:
        """Execute a plan; logical :class:`SelectPlan` objects are upgraded."""
        if isinstance(plan, SelectPlan):
            plan = self.planner.plan_physical(plan.statement, plan.purpose)
        return self.execute_physical(plan)

    def execute_physical(self, plan: PhysicalPlan) -> QueryResult:
        """Materialize the pipeline into a :class:`QueryResult`."""
        columns, root = build_pipeline(self._runtime, plan)
        rows = list(root)
        self.stats.rows_returned += len(rows)
        self.last_pipeline = root
        return QueryResult(columns=columns, rows=rows, pipeline=root)

    def stream_physical(self, plan: PhysicalPlan) -> StreamingResult:
        """Open the pipeline without draining it (lazy cursor traversal).

        The first row is pulled eagerly so binding errors in predicates and
        output expressions surface at execute time, not at the first fetch;
        everything past it is computed on demand.
        """
        columns, root = build_pipeline(self._runtime, plan)
        self.last_pipeline = root
        iterator = iter(root)
        first = next(iterator, _EXHAUSTED)

        def rows() -> Iterator[Tuple[Any, ...]]:
            if first is _EXHAUSTED:
                return
            self.stats.rows_returned += 1
            yield first
            for row in iterator:
                self.stats.rows_returned += 1
                yield row

        return StreamingResult(columns=columns, rows_iter=rows(), pipeline=root)

    def build(self, plan: PhysicalPlan) -> Tuple[List[str], Operator]:
        """Instantiate (but do not run) the operator tree — EXPLAIN's input."""
        return build_pipeline(self._runtime, plan)

    # -------------------------------------------------------------- DML helpers

    def matching_rows(self, table: str, where: Optional[ast.Expression],
                      purpose: Optional[Purpose] = None) -> List[StoredRow]:
        """Stored rows of ``table`` matching ``where`` under ``purpose``.

        Predicates are evaluated on the degraded view (the paper's view-style
        delete semantics) but the *stored* rows are returned so the caller can
        mutate them.  The match runs through the same scan + residual-filter
        pipeline as SELECTs, so DML benefits from access paths and residual
        pushdown too.
        """
        plan = self.planner.plan_physical(
            ast.Select(table=table, items=(ast.Star(),), where=where), purpose
        )
        root = build_match_pipeline(self._runtime, plan)
        store = self.stores(plan.base.table)
        return [store.read(visible[ROW_KEY_FIELD]) for visible in root]


class _Exhausted:
    """Sentinel distinguishing 'no first row' from a first row of None."""


_EXHAUSTED = _Exhausted()


__all__ = ["Executor", "QueryResult", "ExecutorStats", "ROW_KEY_FIELD",
           "StoreProvider"]
