"""Query execution with degradation-aware semantics.

The executor implements the paper's selection and projection operators
``σ_{P,k}`` and ``π_{*,k}``: data referenced at a demanded accuracy level ``k``
is degraded with ``f_k`` *before* the predicate is evaluated, and only tuples
for which level ``k`` is computable (i.e. stored at an accuracy of at least
``k``) participate in the result.  Everything else is a conventional iterator
engine: scans, filters, hash joins, grouping/aggregation, ordering, limits.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.errors import BindingError, ExecutionError, ParameterError
from ..core.policy import Purpose
from ..core.values import NULL, SUPPRESSED, is_missing, sort_key
from ..index.gt_index import GTIndex
from ..storage.degradable_store import StoredRow, TableStore
from . import ast_nodes as ast
from .catalog import Catalog
from .planner import AccessPath, Planner, SelectPlan, TableScanPlan

#: Callable giving the executor access to a table's storage manager.
StoreProvider = Callable[[str], TableStore]

#: Key under which the logical row key is exposed in visible rows.
ROW_KEY_FIELD = "__row_key__"


@dataclass
class QueryResult:
    """Result of a SELECT: column names plus value tuples."""

    columns: List[str]
    rows: List[Tuple[Any, ...]]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> List[Any]:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise ExecutionError(f"result has no column {name!r}") from None
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)


@dataclass
class ExecutorStats:
    rows_scanned: int = 0
    rows_excluded_not_computable: int = 0
    rows_returned: int = 0
    index_lookups: int = 0
    seq_scans: int = 0


class Executor:
    """Interprets :class:`SelectPlan` objects against the table stores."""

    def __init__(self, catalog: Catalog, store_provider: StoreProvider) -> None:
        self.catalog = catalog
        self.stores = store_provider
        self.planner = Planner(catalog)
        self.stats = ExecutorStats()

    # ------------------------------------------------------------------ SELECT

    def execute_select(self, statement: ast.Select,
                       purpose: Optional[Purpose] = None) -> QueryResult:
        plan = self.planner.plan_select(statement, purpose)
        return self.execute_plan(plan)

    def execute_plan(self, plan: SelectPlan) -> QueryResult:
        statement = plan.statement
        rows = list(self._scan(plan.base))
        for clause, scan in plan.joins:
            rows = list(self._join(rows, clause, scan))
        if statement.where is not None:
            rows = [row for row in rows if _truthy(self._evaluate(statement.where, row))]
        if statement.is_aggregate:
            columns, result_rows = self._aggregate(statement, rows, plan)
        else:
            columns, result_rows = self._project(statement, rows, plan)
        if statement.order_by:
            result_rows = self._order(statement, columns, result_rows)
        if statement.limit is not None:
            result_rows = result_rows[: statement.limit]
        self.stats.rows_returned += len(result_rows)
        return QueryResult(columns=columns, rows=result_rows)

    # -------------------------------------------------------------- DML helpers

    def matching_rows(self, table: str, where: Optional[ast.Expression],
                      purpose: Optional[Purpose] = None) -> List[StoredRow]:
        """Stored rows of ``table`` matching ``where`` under ``purpose``.

        Predicates are evaluated on the degraded view (the paper's view-style
        delete semantics) but the *stored* rows are returned so the caller can
        mutate them.
        """
        plan = self.planner.plan_select(
            ast.Select(table=table, items=(ast.Star(),), where=where), purpose
        )
        store = self.stores(plan.base.table)
        matches: List[StoredRow] = []
        for visible in self._scan(plan.base):
            if where is not None and not _truthy(self._evaluate(where, visible)):
                continue
            matches.append(store.read(visible[ROW_KEY_FIELD]))
        return matches

    # ----------------------------------------------------------------- scanning

    def _scan(self, scan: TableScanPlan) -> Iterator[Dict[str, Any]]:
        store = self.stores(scan.table)
        info = self.catalog.table(scan.table)
        access = scan.access
        if access.kind == "seq":
            self.stats.seq_scans += 1
            candidates: Iterable[StoredRow] = store.scan()
        else:
            self.stats.index_lookups += 1
            candidates = store.fetch(iter(self._candidate_keys(access)))
        for row in candidates:
            self.stats.rows_scanned += 1
            visible = self._visible_row(info.schema, scan, row)
            if visible is None:
                self.stats.rows_excluded_not_computable += 1
                continue
            yield visible

    def _candidate_keys(self, access: AccessPath) -> List[int]:
        index = access.index.index
        if access.kind == "index_eq":
            return index.search(access.key)
        if access.kind == "index_range":
            return index.range_search(access.low, access.high,
                                      include_low=access.include_low,
                                      include_high=access.include_high)
        if access.kind == "gt_level":
            if not isinstance(index, GTIndex):
                raise ExecutionError(
                    f"access path gt_level requires a GT index, got {index.kind}"
                )
            return index.search_at(access.key, access.level)
        raise ExecutionError(f"unknown access path kind {access.kind!r}")

    def _visible_row(self, schema, scan: TableScanPlan,
                     row: StoredRow) -> Optional[Dict[str, Any]]:
        """Build the degraded view of ``row`` at the demanded accuracy levels.

        Returns ``None`` when some demanded level is not computable from the
        stored state (the tuple is excluded from the query, per the paper).
        """
        visible: Dict[str, Any] = {ROW_KEY_FIELD: row.row_key}
        for column in schema.columns:
            value = row.values[column.name]
            if column.degradable:
                demanded = scan.demanded_levels.get(column.name, 0)
                stored_level = row.levels[column.name]
                if demanded is not None:
                    if stored_level > demanded:
                        return None
                    if stored_level < demanded and not is_missing(value):
                        scheme = self.catalog.scheme_for(scan.table, column.name)
                        value = scheme.generalize(value, demanded, from_level=stored_level)
            visible[column.name] = value
            visible[f"{scan.alias}.{column.name}"] = value
            if scan.alias != scan.table:
                visible[f"{scan.table}.{column.name}"] = value
        return visible

    # -------------------------------------------------------------------- joins

    def _join(self, left_rows: List[Dict[str, Any]], clause: ast.JoinClause,
              scan: TableScanPlan) -> Iterator[Dict[str, Any]]:
        right_rows = list(self._scan(scan))
        left_key = clause.left
        right_key = clause.right
        # Decide which side of the ON clause belongs to the joined table.
        def belongs_to_right(ref: ast.ColumnRef) -> bool:
            return ref.table in (scan.alias, scan.table)

        if belongs_to_right(left_key) and not belongs_to_right(right_key):
            left_key, right_key = right_key, left_key
        build: Dict[Any, List[Dict[str, Any]]] = {}
        for right_row in right_rows:
            key = self._lookup(right_key, right_row)
            build.setdefault(_hashable(key), []).append(right_row)
        right_columns = [
            key for key in (right_rows[0].keys() if right_rows else [])
        ]
        for left_row in left_rows:
            key = _hashable(self._lookup(left_key, left_row))
            matches = build.get(key, [])
            if matches:
                for right_row in matches:
                    merged = dict(left_row)
                    merged.update({k: v for k, v in right_row.items() if k != ROW_KEY_FIELD})
                    yield merged
            elif clause.kind == "left":
                merged = dict(left_row)
                merged.update({
                    key: NULL for key in right_columns if key != ROW_KEY_FIELD
                })
                yield merged

    # --------------------------------------------------------------- projection

    def _output_items(self, statement: ast.Select,
                      plan: SelectPlan) -> List[Tuple[str, ast.Expression]]:
        items: List[Tuple[str, ast.Expression]] = []
        for item in statement.items:
            if isinstance(item, ast.Star):
                schema = self.catalog.table(plan.base.table).schema
                for column in schema.columns:
                    items.append((column.name, ast.ColumnRef(column=column.name,
                                                             table=plan.base.alias)))
                for clause, scan in plan.joins:
                    join_schema = self.catalog.table(scan.table).schema
                    for column in join_schema.columns:
                        items.append((f"{scan.alias}.{column.name}",
                                      ast.ColumnRef(column=column.name, table=scan.alias)))
            else:
                items.append((item.output_name, item.expression))
        return items

    def _project(self, statement: ast.Select, rows: List[Dict[str, Any]],
                 plan: SelectPlan) -> Tuple[List[str], List[Tuple[Any, ...]]]:
        items = self._output_items(statement, plan)
        columns = [name for name, _expr in items]
        result = []
        for row in rows:
            result.append(tuple(self._evaluate(expr, row) for _name, expr in items))
        return columns, result

    # --------------------------------------------------------------- aggregation

    def _aggregate(self, statement: ast.Select, rows: List[Dict[str, Any]],
                   plan: SelectPlan) -> Tuple[List[str], List[Tuple[Any, ...]]]:
        group_columns = list(statement.group_by)
        groups: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
        for row in rows:
            key = tuple(_hashable(self._lookup(ref, row)) for ref in group_columns)
            groups.setdefault(key, []).append(row)
        if not group_columns and not groups:
            groups[()] = []
        items: List[Tuple[str, ast.Expression]] = []
        for item in statement.items:
            if isinstance(item, ast.Star):
                raise BindingError("SELECT * cannot be combined with aggregation")
            items.append((item.output_name, item.expression))
        columns = [name for name, _expr in items]
        result_rows: List[Tuple[Any, ...]] = []
        for key, members in sorted(groups.items(), key=lambda kv: tuple(sort_key(v) for v in kv[0])):
            representative = members[0] if members else {}
            values = []
            for _name, expression in items:
                if isinstance(expression, ast.Aggregate):
                    values.append(self._compute_aggregate(expression, members))
                else:
                    values.append(self._evaluate(expression, representative))
            candidate = dict(zip(columns, values))
            if statement.having is not None:
                scope = dict(representative)
                scope.update(candidate)
                if not _truthy(self._evaluate(statement.having, scope)):
                    continue
            result_rows.append(tuple(values))
        return columns, result_rows

    def _compute_aggregate(self, aggregate: ast.Aggregate,
                           rows: List[Dict[str, Any]]) -> Any:
        function = aggregate.function.upper()
        if aggregate.argument is None:
            values: List[Any] = [1 for _ in rows]
        else:
            values = [self._lookup(aggregate.argument, row) for row in rows]
            values = [value for value in values if not is_missing(value)]
        if aggregate.distinct:
            seen = []
            for value in values:
                if value not in seen:
                    seen.append(value)
            values = seen
        if function == "COUNT":
            return len(values)
        numeric = [value for value in values if isinstance(value, (int, float))
                   and not isinstance(value, bool)]
        if function == "SUM":
            return sum(numeric) if numeric else NULL
        if function == "AVG":
            return sum(numeric) / len(numeric) if numeric else NULL
        if function == "MIN":
            return min(values, key=sort_key) if values else NULL
        if function == "MAX":
            return max(values, key=sort_key) if values else NULL
        raise ExecutionError(f"unsupported aggregate {function}")

    # ------------------------------------------------------------------ ordering

    def _order(self, statement: ast.Select, columns: List[str],
               rows: List[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
        ordered = list(rows)
        for item in reversed(statement.order_by):
            name_candidates = [item.column.column, item.column.qualified]
            position = None
            for candidate in name_candidates:
                if candidate in columns:
                    position = columns.index(candidate)
                    break
            if position is None:
                raise BindingError(
                    f"ORDER BY column {item.column.qualified!r} is not in the output"
                )
            ordered.sort(key=lambda row: sort_key(row[position]), reverse=item.descending)
        return ordered

    # ----------------------------------------------------------------- expressions

    def _lookup(self, ref: ast.ColumnRef, row: Dict[str, Any]) -> Any:
        if ref.table is not None:
            qualified = f"{ref.table}.{ref.column}"
            if qualified in row:
                return row[qualified]
        if ref.column in row:
            return row[ref.column]
        if ref.table is None:
            # Try any qualified match (single unambiguous suffix).
            matches = [key for key in row if key.endswith(f".{ref.column}")]
            if len(matches) == 1:
                return row[matches[0]]
            if len(matches) > 1:
                raise BindingError(f"ambiguous column reference {ref.column!r}")
        raise BindingError(f"unknown column {ref.qualified!r}")

    def _evaluate(self, expression: ast.Expression, row: Dict[str, Any]) -> Any:
        if isinstance(expression, ast.Literal):
            return expression.value
        if isinstance(expression, ast.Placeholder):
            raise ParameterError(
                "statement has unbound '?' placeholders; pass params= "
                "(or use a Cursor) to bind them"
            )
        if isinstance(expression, ast.ColumnRef):
            return self._lookup(expression, row)
        if isinstance(expression, ast.Comparison):
            return self._compare(expression, row)
        if isinstance(expression, ast.InList):
            value = self._evaluate(expression.operand, row)
            if is_missing(value):
                return False
            result = any(_equal(value, candidate) for candidate in expression.values)
            return not result if expression.negated else result
        if isinstance(expression, ast.Between):
            value = self._evaluate(expression.operand, row)
            low = self._evaluate(expression.low, row)
            high = self._evaluate(expression.high, row)
            if is_missing(value) or is_missing(low) or is_missing(high):
                return False
            result = sort_key(low) <= sort_key(value) <= sort_key(high)
            return not result if expression.negated else result
        if isinstance(expression, ast.IsNull):
            value = self._evaluate(expression.operand, row)
            result = value is NULL or value is None or value is SUPPRESSED
            return not result if expression.negated else result
        if isinstance(expression, ast.BooleanOp):
            if expression.operator == "AND":
                return all(_truthy(self._evaluate(op, row)) for op in expression.operands)
            return any(_truthy(self._evaluate(op, row)) for op in expression.operands)
        if isinstance(expression, ast.Not):
            return not _truthy(self._evaluate(expression.operand, row))
        if isinstance(expression, ast.Aggregate):
            raise BindingError(
                f"aggregate {expression.display_name} used outside an aggregate query"
            )
        raise ExecutionError(f"cannot evaluate expression {expression!r}")

    def _compare(self, comparison: ast.Comparison, row: Dict[str, Any]) -> bool:
        left = self._evaluate(comparison.left, row)
        right = self._evaluate(comparison.right, row)
        operator = comparison.operator
        if operator == "LIKE":
            if is_missing(left) or is_missing(right):
                return False
            return _like(str(left), str(right))
        if is_missing(left) or is_missing(right):
            return False
        if operator == "=":
            return _equal(left, right)
        if operator == "!=":
            return not _equal(left, right)
        left_key, right_key = sort_key(left), sort_key(right)
        if operator == "<":
            return left_key < right_key
        if operator == "<=":
            return left_key <= right_key
        if operator == ">":
            return left_key > right_key
        if operator == ">=":
            return left_key >= right_key
        raise ExecutionError(f"unsupported comparison operator {operator!r}")


def _truthy(value: Any) -> bool:
    return bool(value) and not is_missing(value)


def _equal(left: Any, right: Any) -> bool:
    if isinstance(left, (int, float)) and isinstance(right, (int, float)) \
            and not isinstance(left, bool) and not isinstance(right, bool):
        return float(left) == float(right)
    if isinstance(left, str) and isinstance(right, str):
        return left.lower() == right.lower()
    return left == right


def _hashable(value: Any) -> Any:
    if isinstance(value, str):
        return value.lower()
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


_LIKE_CACHE: Dict[str, re.Pattern] = {}


def _like(value: str, pattern: str) -> bool:
    """SQL LIKE with ``%`` and ``_`` wildcards (case-insensitive)."""
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for char in pattern:
            if char == "%":
                parts.append(".*")
            elif char == "_":
                parts.append(".")
            else:
                parts.append(re.escape(char))
        compiled = re.compile(f"^{''.join(parts)}$", re.IGNORECASE | re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled.match(value) is not None


__all__ = ["Executor", "QueryResult", "ExecutorStats", "ROW_KEY_FIELD", "StoreProvider"]
