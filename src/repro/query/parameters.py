"""Qmark parameter binding (PEP 249 ``paramstyle = "qmark"``).

The parser materializes every ``?`` in a statement as an
:class:`~repro.query.ast_nodes.Placeholder` carrying its 0-based position.
:func:`bind_parameters` substitutes a parameter sequence into a parsed
statement, producing a new (fully literal) statement tree; the original tree
is never mutated, so one cached parse can be bound arbitrarily many times —
the substrate of prepared statements and ``executemany``.

Binding is purely structural: parameter values are injected as *values* into
the AST, never re-tokenized, so no value can alter the shape of the statement
(the classic SQL-injection vector).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence, Tuple

from ..core.errors import ParameterError
from . import ast_nodes as ast

#: Python types accepted as statement parameters.
SUPPORTED_PARAMETER_TYPES = (type(None), bool, int, float, str)


def count_placeholders(statement: ast.Statement) -> int:
    """Number of ``?`` placeholders in a parsed statement."""
    return _count(statement)


def _count(node: Any) -> int:
    if isinstance(node, ast.Placeholder):
        return 1
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        return sum(_count(getattr(node, field.name))
                   for field in dataclasses.fields(node))
    if isinstance(node, (tuple, list)):
        return sum(_count(element) for element in node)
    return 0


def check_parameter(value: Any) -> Any:
    """Validate one parameter value; returns it unchanged."""
    if not isinstance(value, SUPPORTED_PARAMETER_TYPES):
        raise ParameterError(
            f"unsupported parameter type {type(value).__name__!r}; "
            "parameters must be None, bool, int, float or str"
        )
    return value


def bind_parameters(statement: ast.Statement, params: Sequence[Any],
                    expected: int = None) -> ast.Statement:
    """Return ``statement`` with every placeholder replaced by its parameter.

    ``expected`` lets a prepared statement pass its precomputed placeholder
    count so repeated bindings (``executemany``) skip one tree walk.

    Raises :class:`~repro.core.errors.ParameterError` when the parameter count
    does not match the placeholder count or a value has an unsupported type.
    """
    if isinstance(params, (str, bytes)):
        raise ParameterError(
            "parameters must be a sequence of values, not a bare string"
        )
    bound: Tuple[Any, ...] = tuple(params)
    if expected is None:
        expected = count_placeholders(statement)
    if expected != len(bound):
        raise ParameterError(
            f"statement takes {expected} parameter(s) but {len(bound)} were given"
        )
    for value in bound:
        check_parameter(value)
    if expected == 0:
        return statement
    result = _bind_node(statement, bound)
    assert isinstance(result, ast.Statement)
    return result


def _bind_node(node: Any, params: Tuple[Any, ...]) -> Any:
    """Rebuild a dataclass node with placeholders substituted.

    A placeholder in *expression position* (a dataclass field) becomes a
    :class:`~repro.query.ast_nodes.Literal`; a placeholder in *value position*
    (inside the plain tuples of INSERT rows, IN lists and UPDATE assignments)
    becomes the raw Python value.
    """
    if isinstance(node, ast.Placeholder):
        return ast.Literal(params[node.index])
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        changes = {}
        for field in dataclasses.fields(node):
            old = getattr(node, field.name)
            new = _bind_node(old, params)
            if new is not old:
                changes[field.name] = new
        return dataclasses.replace(node, **changes) if changes else node
    if isinstance(node, tuple):
        rebuilt = tuple(_bind_value(element, params) for element in node)
        return rebuilt if any(new is not old for new, old in zip(rebuilt, node)) \
            else node
    return node


def _bind_value(element: Any, params: Tuple[Any, ...]) -> Any:
    if isinstance(element, ast.Placeholder):
        return params[element.index]
    return _bind_node(element, params)


def bind_expression(expression: ast.Expression,
                    params: Sequence[Any]) -> ast.Expression:
    """Substitute placeholders inside a single expression subtree.

    Used by parameter-shape-keyed plan caching: a cached template plan keeps
    placeholders in its residual predicate, and each execution binds just that
    expression instead of re-binding (and re-planning) the whole statement.
    """
    return _bind_node(expression, tuple(params))


__all__ = ["bind_parameters", "bind_expression", "count_placeholders",
           "check_parameter", "SUPPORTED_PARAMETER_TYPES"]
