"""Query processor: SQL front-end, catalog, planner and degradation-aware executor."""

from . import ast_nodes
from .catalog import Catalog, IndexInfo, TableInfo
from .executor import Executor, ExecutorStats, QueryResult, ROW_KEY_FIELD
from .parser import parse, parse_script
from .planner import AccessPath, Planner, SelectPlan, TableScanPlan
from .tokens import Token, TokenType, tokenize

__all__ = [
    "ast_nodes",
    "Catalog", "TableInfo", "IndexInfo",
    "Executor", "ExecutorStats", "QueryResult", "ROW_KEY_FIELD",
    "parse", "parse_script",
    "Planner", "SelectPlan", "TableScanPlan", "AccessPath",
    "Token", "TokenType", "tokenize",
]
