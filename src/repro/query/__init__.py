"""Query processor: SQL front-end, catalog, planner and streaming executor."""

from . import ast_nodes
from .catalog import Catalog, IndexInfo, TableInfo
from .executor import Executor, ExecutorStats, QueryResult, ROW_KEY_FIELD
from .operators import (
    Aggregate,
    Filter,
    HashJoin,
    IndexScan,
    Limit,
    Operator,
    OperatorStats,
    Project,
    SeqScan,
    Sort,
    StreamingResult,
    TopN,
)
from .parser import parse, parse_script
from .planner import AccessPath, PhysicalPlan, Planner, SelectPlan, TableScanPlan
from .tokens import Token, TokenType, tokenize

__all__ = [
    "ast_nodes",
    "Catalog", "TableInfo", "IndexInfo",
    "Executor", "ExecutorStats", "QueryResult", "ROW_KEY_FIELD",
    "Operator", "OperatorStats", "SeqScan", "IndexScan", "Filter", "HashJoin",
    "Project", "Aggregate", "Sort", "TopN", "Limit", "StreamingResult",
    "parse", "parse_script",
    "Planner", "SelectPlan", "PhysicalPlan", "TableScanPlan", "AccessPath",
    "Token", "TokenType", "tokenize",
]
