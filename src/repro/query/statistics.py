"""Table statistics for cost-based planning.

The planner's access-path choice was a fixed preference order (equality index
beats range index beats sequential scan) with zero knowledge of the data.
This module gives it numbers: per table a live row count, per column the
number of distinct values (NDV), min/max, missing count and an exact
value-frequency map — all maintained *incrementally* by the engine at the
same sites that maintain secondary indexes (insert, degradation step, stable
update, removal), so estimates never require a table scan.

Degradation makes these statistics unusual: a degradation wave is a burst of
value transitions (``on_degrade``) that collapses fine-grained values into
coarse ones, so NDV shrinks and frequencies concentrate as a table ages.  The
planner sees that immediately — a predicate that was selective at collection
accuracy may flip to a sequential scan after the wave made it match half the
table.

Estimates are intentionally exact where exactness is cheap: equality
selectivity reads the frequency map, range selectivity sums it while the NDV
is small (falling back to min/max interpolation above
``EXACT_RANGE_NDV_LIMIT``).  Recovery rebuilds statistics from the recovered
heap during the index-rebuild scan — the WAL cannot replay them, because the
accurate value images degradation scrubbed are gone by design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.schema import TableSchema
from ..core.values import is_missing, sort_key

#: Above this NDV, range selectivity interpolates min/max instead of summing
#: the frequency map.
EXACT_RANGE_NDV_LIMIT = 4096

#: Equi-width buckets of the lazy numeric histogram backing range estimates
#: on wide-NDV columns (built on first use, invalidated by any modification).
HISTOGRAM_BUCKETS = 64

#: Selectivity assumed for a conjunct the statistics cannot estimate.
DEFAULT_SELECTIVITY = 1.0 / 3.0

#: Statistics-epoch bump rule: a table's epoch advances once the number of
#: modifications (inserts, removals, value transitions) since the last bump
#: exceeds ``max(EPOCH_MOD_FLOOR, row_count * EPOCH_MOD_FRACTION)``.  Cached
#: plans are keyed on the registry epoch, so a stats shift large enough to
#: change access-path economics (e.g. a degradation wave collapsing NDV)
#: forces a re-plan, while steady-state trickle writes keep plans cached.
EPOCH_MOD_FLOOR = 64
EPOCH_MOD_FRACTION = 0.2


def _stat_key(value: Any) -> Any:
    """Equality-stable surrogate matching the executor's ``=`` semantics
    (case-insensitive strings, numeric cross-type equality)."""
    if isinstance(value, str):
        return value.lower()
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


class ColumnStatistics:
    """Frequency map, NDV, min/max and missing count of one column."""

    __slots__ = ("counts", "non_missing", "missing", "_min", "_max", "_dirty",
                 "_hist")

    def __init__(self) -> None:
        self.counts: Dict[Any, int] = {}
        self.non_missing = 0
        self.missing = 0
        #: Cached (sort_key, surrogate) extremes; ``_dirty`` forces a rescan.
        self._min: Optional[Tuple[tuple, Any]] = None
        self._max: Optional[Tuple[tuple, Any]] = None
        self._dirty = False
        #: Lazily built equi-width histogram: (min, max, bucket counts,
        #: total), or ``()`` when the column is not numeric.  ``None`` =
        #: stale (rebuilt on the next wide-NDV range estimate).
        self._hist: Optional[Tuple] = None

    # -- maintenance ----------------------------------------------------------

    def add(self, value: Any) -> None:
        if is_missing(value):
            self.missing += 1
            return
        surrogate = _stat_key(value)
        self.counts[surrogate] = self.counts.get(surrogate, 0) + 1
        self.non_missing += 1
        self._hist = None
        skey = sort_key(surrogate)
        if self._min is None or skey < self._min[0]:
            self._min = (skey, surrogate)
        if self._max is None or skey > self._max[0]:
            self._max = (skey, surrogate)

    def remove(self, value: Any) -> None:
        if is_missing(value):
            self.missing = max(0, self.missing - 1)
            return
        surrogate = _stat_key(value)
        count = self.counts.get(surrogate)
        if count is None:
            return
        self.non_missing = max(0, self.non_missing - 1)
        self._hist = None
        if count <= 1:
            del self.counts[surrogate]
            # The removed value may have been an extreme; rescan lazily.
            if (self._min is not None and surrogate == self._min[1]) or \
                    (self._max is not None and surrogate == self._max[1]):
                self._dirty = True
        else:
            self.counts[surrogate] = count - 1

    def replace(self, old: Any, new: Any) -> None:
        self.remove(old)
        self.add(new)

    # -- introspection --------------------------------------------------------

    @property
    def ndv(self) -> int:
        return len(self.counts)

    def _rescan_extremes(self) -> None:
        self._dirty = False
        self._min = self._max = None
        for surrogate in self.counts:
            skey = sort_key(surrogate)
            if self._min is None or skey < self._min[0]:
                self._min = (skey, surrogate)
            if self._max is None or skey > self._max[0]:
                self._max = (skey, surrogate)

    @property
    def min_value(self) -> Any:
        if self._dirty:
            self._rescan_extremes()
        return self._min[1] if self._min is not None else None

    @property
    def max_value(self) -> Any:
        if self._dirty:
            self._rescan_extremes()
        return self._max[1] if self._max is not None else None

    # -- estimates ------------------------------------------------------------

    def eq_rows(self, value: Any) -> float:
        """Estimated rows matching ``column = value`` (exact frequency)."""
        if is_missing(value):
            return 0.0
        count = self.counts.get(_stat_key(value))
        if count is not None:
            return float(count)
        # Unseen value: almost certainly no rows, but never estimate zero —
        # a zero estimate would make every plan look free.
        return 0.5

    def range_fraction(self, low: Any = None, high: Any = None,
                       include_low: bool = True,
                       include_high: bool = True) -> float:
        """Estimated fraction of non-missing rows inside the range."""
        if not self.non_missing:
            return 0.0
        low_key = sort_key(_stat_key(low)) if low is not None else None
        high_key = sort_key(_stat_key(high)) if high is not None else None
        if self.ndv <= EXACT_RANGE_NDV_LIMIT:
            matched = 0
            for surrogate, count in self.counts.items():
                skey = sort_key(surrogate)
                if low_key is not None:
                    if skey < low_key or (skey == low_key and not include_low):
                        continue
                if high_key is not None:
                    if skey > high_key or (skey == high_key and not include_high):
                        continue
                matched += count
            return matched / self.non_missing
        minimum, maximum = self.min_value, self.max_value
        if isinstance(minimum, float) and isinstance(maximum, float) \
                and maximum > minimum:
            lo = float(low) if isinstance(low, (int, float)) else minimum
            hi = float(high) if isinstance(high, (int, float)) else maximum
            histogram = self._histogram()
            if histogram:
                return self._histogram_fraction(histogram, lo, hi)
            fraction = (min(hi, maximum) - max(lo, minimum)) / (maximum - minimum)
            return min(1.0, max(0.0, fraction))
        return DEFAULT_SELECTIVITY

    # -- histogram (wide-NDV numeric range estimates) --------------------------

    def _histogram(self) -> Tuple:
        """Equi-width bucket counts over the numeric surrogates, built lazily.

        The exact frequency-map sum stops being affordable above
        ``EXACT_RANGE_NDV_LIMIT`` distinct values, and pure min/max
        interpolation assumes a uniform spread — badly wrong for skewed data
        (e.g. a long-tailed timestamp column).  One pass over the frequency
        map buckets it; any modification invalidates the cache.
        """
        if self._hist is None:
            minimum, maximum = self.min_value, self.max_value
            if not (isinstance(minimum, float) and isinstance(maximum, float)
                    and maximum > minimum):
                self._hist = ()
            else:
                buckets = [0] * HISTOGRAM_BUCKETS
                width = (maximum - minimum) / HISTOGRAM_BUCKETS
                total = 0
                for surrogate, count in self.counts.items():
                    if not isinstance(surrogate, float):
                        continue
                    position = min(HISTOGRAM_BUCKETS - 1,
                                   int((surrogate - minimum) / width))
                    buckets[position] += count
                    total += count
                self._hist = (minimum, width, buckets, total) if total else ()
        return self._hist

    def _histogram_fraction(self, histogram: Tuple, lo: float,
                            hi: float) -> float:
        """Fraction of non-missing rows in ``[lo, hi]``: full buckets count
        whole, edge buckets contribute their overlapped share (uniform spread
        assumed only *within* a bucket)."""
        minimum, width, buckets, _total = histogram
        matched = 0.0
        for position, count in enumerate(buckets):
            if not count:
                continue
            bucket_lo = minimum + position * width
            bucket_hi = bucket_lo + width
            overlap = min(hi, bucket_hi) - max(lo, bucket_lo)
            if overlap <= 0:
                continue
            matched += count * min(1.0, overlap / width)
        return min(1.0, max(0.0, matched / self.non_missing))


class TableStatistics:
    """Row count plus per-column statistics of one table."""

    def __init__(self, schema: TableSchema) -> None:
        self.table = schema.name
        self.row_count = 0
        self.columns: Dict[str, ColumnStatistics] = {
            column.name: ColumnStatistics() for column in schema.columns
        }
        #: Monotonic counter bumped when enough modifications accumulated to
        #: shift plan economics; part of the prepared-plan cache key.
        self.epoch = 0
        self._mods_since_epoch = 0

    # -- incremental maintenance ----------------------------------------------

    def _note_mod(self) -> None:
        self._mods_since_epoch += 1
        if self._mods_since_epoch >= max(EPOCH_MOD_FLOOR,
                                         self.row_count * EPOCH_MOD_FRACTION):
            self.epoch += 1
            self._mods_since_epoch = 0

    def on_insert(self, values: Dict[str, Any]) -> None:
        self.row_count += 1
        for name, stats in self.columns.items():
            stats.add(values.get(name))
        self._note_mod()

    def on_remove(self, values: Dict[str, Any]) -> None:
        self.row_count = max(0, self.row_count - 1)
        for name, stats in self.columns.items():
            stats.remove(values.get(name))
        self._note_mod()

    def on_value_change(self, column: str, old: Any, new: Any) -> None:
        """One value transition: a degradation step or a stable update."""
        stats = self.columns.get(column)
        if stats is not None:
            stats.replace(old, new)
            self._note_mod()

    def reset(self) -> None:
        self.row_count = 0
        for name in self.columns:
            self.columns[name] = ColumnStatistics()
        # Wholesale replacement (recovery rebuild) invalidates cached plans.
        self.epoch += 1
        self._mods_since_epoch = 0

    def rebuild(self, rows: Iterable[Dict[str, Any]]) -> None:
        """Exact rebuild from materialized row values (recovery)."""
        self.reset()
        for values in rows:
            self.on_insert(values)

    # -- estimates ------------------------------------------------------------

    def column(self, name: str) -> Optional[ColumnStatistics]:
        return self.columns.get(name.lower())

    def ndv(self, column: str) -> int:
        stats = self.column(column)
        return stats.ndv if stats is not None else 0

    def estimated_eq_rows(self, column: str, value: Any) -> float:
        stats = self.column(column)
        if stats is None:
            return max(1.0, self.row_count * DEFAULT_SELECTIVITY)
        return min(float(self.row_count), stats.eq_rows(value))

    def estimated_range_rows(self, column: str, low: Any = None,
                             high: Any = None, include_low: bool = True,
                             include_high: bool = True) -> float:
        stats = self.column(column)
        if stats is None:
            return max(1.0, self.row_count * DEFAULT_SELECTIVITY)
        fraction = stats.range_fraction(low, high, include_low, include_high)
        return fraction * stats.non_missing

    def describe(self) -> str:
        lines = [f"statistics for {self.table}: {self.row_count} rows"]
        for name, stats in self.columns.items():
            lines.append(
                f"  {name}: ndv={stats.ndv} missing={stats.missing} "
                f"min={stats.min_value!r} max={stats.max_value!r}"
            )
        return "\n".join(lines)


class StatisticsRegistry:
    """Name → :class:`TableStatistics`; the engine owns one instance and
    attaches it to the catalog so the planner can cost access paths."""

    def __init__(self) -> None:
        self._tables: Dict[str, TableStatistics] = {}
        #: Keeps :meth:`epoch` monotonic across table drops (a dropped table's
        #: accumulated epoch would otherwise vanish from the sum).
        self._epoch_offset = 0

    def register(self, schema: TableSchema) -> TableStatistics:
        stats = TableStatistics(schema)
        self._tables[schema.name] = stats
        return stats

    def drop(self, table: str) -> None:
        dropped = self._tables.pop(table.lower(), None)
        if dropped is not None:
            self._epoch_offset += dropped.epoch + 1

    def epoch(self) -> int:
        """Registry-wide statistics epoch (part of the plan-cache key).

        Monotonically non-decreasing: any table accumulating enough
        modifications — or being dropped — advances it, invalidating every
        plan cached under the previous epoch.
        """
        return self._epoch_offset + sum(stats.epoch
                                        for stats in self._tables.values())

    def table(self, name: str) -> Optional[TableStatistics]:
        return self._tables.get(name.lower())

    def tables(self) -> List[TableStatistics]:
        return list(self._tables.values())

    # -- engine-side maintenance hooks (no-ops for unregistered tables) --------

    def on_insert(self, table: str, values: Dict[str, Any]) -> None:
        stats = self._tables.get(table)
        if stats is not None:
            stats.on_insert(values)

    def on_remove(self, table: str, values: Dict[str, Any]) -> None:
        stats = self._tables.get(table)
        if stats is not None:
            stats.on_remove(values)

    def on_value_change(self, table: str, column: str, old: Any, new: Any) -> None:
        stats = self._tables.get(table)
        if stats is not None:
            stats.on_value_change(column, old, new)


__all__ = ["ColumnStatistics", "TableStatistics", "StatisticsRegistry",
           "DEFAULT_SELECTIVITY", "EXACT_RANGE_NDV_LIMIT", "HISTOGRAM_BUCKETS",
           "EPOCH_MOD_FLOOR", "EPOCH_MOD_FRACTION"]
