"""Expression evaluation: the tree-walking interpreter and the closure compiler.

Two ways to evaluate the same AST live here side by side:

* :func:`evaluate` / :func:`lookup` — the reference tree-walking interpreter.
  One call re-dispatches on every node of the expression for every row; it is
  what the engine's ``read_path_optimizations=False`` baseline mode runs and
  what non-hot paths (aggregation over group members, HAVING) still use.
* :func:`compile_predicate` / :func:`compile_value` /
  :func:`compile_projection` — a one-time translation of the AST into nested
  Python closures.  All per-query decisions (operator dispatch, column-name
  resolution order, LIKE-pattern regex construction, hash-key normalization
  for joins) are made **once per plan**; per row only the captured closures
  run.  :func:`compile_select` bundles the compiled residual predicate,
  projection and join-key extractors of one physical plan into a
  :class:`CompiledSelect` that the plan memoizes — a cached prepared-statement
  plan therefore compiles exactly once, no matter how often it re-executes
  (the plan cache counts this, ``StatementCacheStats.predicate_compiles`` vs
  ``predicate_compile_hits``).

Both paths implement identical semantics: three-valued-ish missing handling
(any missing operand makes a comparison false), case-insensitive string
equality, ``sort_key``-ordered inequalities and SQL LIKE.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.errors import BindingError, ExecutionError, ParameterError
from ..core.values import NULL, SUPPRESSED, is_missing, sort_key
from . import ast_nodes as ast

#: A compiled row function: visible row dict in, value (or bool) out.
RowFn = Callable[[Dict[str, Any]], Any]

#: Sentinel distinguishing "key absent" from a stored None.
_MISS = object()


# -- interpreted evaluation ------------------------------------------------------


def lookup(ref: ast.ColumnRef, row: Dict[str, Any]) -> Any:
    if ref.table is not None:
        qualified = f"{ref.table}.{ref.column}"
        if qualified in row:
            return row[qualified]
    if ref.column in row:
        return row[ref.column]
    if ref.table is None:
        # Try any qualified match (single unambiguous suffix).
        matches = [key for key in row if key.endswith(f".{ref.column}")]
        if len(matches) == 1:
            return row[matches[0]]
        if len(matches) > 1:
            raise BindingError(f"ambiguous column reference {ref.column!r}")
    raise BindingError(f"unknown column {ref.qualified!r}")


def evaluate(expression: ast.Expression, row: Dict[str, Any]) -> Any:
    if isinstance(expression, ast.Literal):
        return expression.value
    if isinstance(expression, ast.Placeholder):
        raise ParameterError(
            "statement has unbound '?' placeholders; pass params= "
            "(or use a Cursor) to bind them"
        )
    if isinstance(expression, ast.ColumnRef):
        return lookup(expression, row)
    if isinstance(expression, ast.Comparison):
        return _compare(expression, row)
    if isinstance(expression, ast.InList):
        value = evaluate(expression.operand, row)
        if is_missing(value):
            return False
        result = any(_equal(value, candidate) for candidate in expression.values)
        return not result if expression.negated else result
    if isinstance(expression, ast.Between):
        value = evaluate(expression.operand, row)
        low = evaluate(expression.low, row)
        high = evaluate(expression.high, row)
        if is_missing(value) or is_missing(low) or is_missing(high):
            return False
        result = sort_key(low) <= sort_key(value) <= sort_key(high)
        return not result if expression.negated else result
    if isinstance(expression, ast.IsNull):
        value = evaluate(expression.operand, row)
        result = value is NULL or value is None or value is SUPPRESSED
        return not result if expression.negated else result
    if isinstance(expression, ast.BooleanOp):
        if expression.operator == "AND":
            return all(_truthy(evaluate(op, row)) for op in expression.operands)
        return any(_truthy(evaluate(op, row)) for op in expression.operands)
    if isinstance(expression, ast.Not):
        return not _truthy(evaluate(expression.operand, row))
    if isinstance(expression, ast.Aggregate):
        raise BindingError(
            f"aggregate {expression.display_name} used outside an aggregate query"
        )
    raise ExecutionError(f"cannot evaluate expression {expression!r}")


def _compare(comparison: ast.Comparison, row: Dict[str, Any]) -> bool:
    left = evaluate(comparison.left, row)
    right = evaluate(comparison.right, row)
    operator = comparison.operator
    if operator == "LIKE":
        if is_missing(left) or is_missing(right):
            return False
        return _like(str(left), str(right))
    if is_missing(left) or is_missing(right):
        return False
    if operator == "=":
        return _equal(left, right)
    if operator == "!=":
        return not _equal(left, right)
    left_key, right_key = sort_key(left), sort_key(right)
    if operator == "<":
        return left_key < right_key
    if operator == "<=":
        return left_key <= right_key
    if operator == ">":
        return left_key > right_key
    if operator == ">=":
        return left_key >= right_key
    raise ExecutionError(f"unsupported comparison operator {operator!r}")


def _truthy(value: Any) -> bool:
    return bool(value) and not is_missing(value)


def _equal(left: Any, right: Any) -> bool:
    if isinstance(left, (int, float)) and isinstance(right, (int, float)) \
            and not isinstance(left, bool) and not isinstance(right, bool):
        return float(left) == float(right)
    if isinstance(left, str) and isinstance(right, str):
        return left.lower() == right.lower()
    return left == right


def _hashable(value: Any) -> Any:
    if isinstance(value, str):
        return value.lower()
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


_LIKE_CACHE: Dict[str, re.Pattern] = {}


def _like_pattern(pattern: str) -> re.Pattern:
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for char in pattern:
            if char == "%":
                parts.append(".*")
            elif char == "_":
                parts.append(".")
            else:
                parts.append(re.escape(char))
        compiled = re.compile(f"^{''.join(parts)}$", re.IGNORECASE | re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled


def _like(value: str, pattern: str) -> bool:
    """SQL LIKE with ``%`` and ``_`` wildcards (case-insensitive)."""
    return _like_pattern(pattern).match(value) is not None


def render_expression(expression: ast.Expression) -> str:
    """SQL-ish rendering of an expression for EXPLAIN output."""
    if isinstance(expression, ast.Literal):
        return repr(expression.value)
    if isinstance(expression, ast.Placeholder):
        return "?"
    if isinstance(expression, ast.ColumnRef):
        return expression.qualified
    if isinstance(expression, ast.Comparison):
        return (f"{render_expression(expression.left)} {expression.operator} "
                f"{render_expression(expression.right)}")
    if isinstance(expression, ast.InList):
        values = ", ".join(repr(value) for value in expression.values)
        keyword = "NOT IN" if expression.negated else "IN"
        return f"{render_expression(expression.operand)} {keyword} ({values})"
    if isinstance(expression, ast.Between):
        keyword = "NOT BETWEEN" if expression.negated else "BETWEEN"
        return (f"{render_expression(expression.operand)} {keyword} "
                f"{render_expression(expression.low)} AND "
                f"{render_expression(expression.high)}")
    if isinstance(expression, ast.IsNull):
        keyword = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"{render_expression(expression.operand)} {keyword}"
    if isinstance(expression, ast.BooleanOp):
        joiner = f" {expression.operator} "
        return "(" + joiner.join(render_expression(op) for op in expression.operands) + ")"
    if isinstance(expression, ast.Not):
        return f"NOT {render_expression(expression.operand)}"
    if isinstance(expression, ast.Aggregate):
        return expression.display_name
    return repr(expression)


# -- closure compilation ---------------------------------------------------------


def compile_lookup(ref: ast.ColumnRef) -> RowFn:
    """Column access with the name-resolution order decided at compile time."""
    column = ref.column
    if ref.table is not None:
        qualified = f"{ref.table}.{column}"

        def qualified_fn(row: Dict[str, Any]) -> Any:
            value = row.get(qualified, _MISS)
            if value is not _MISS:
                return value
            value = row.get(column, _MISS)
            if value is not _MISS:
                return value
            raise BindingError(f"unknown column {qualified!r}")

        return qualified_fn
    suffix = f".{column}"

    def bare_fn(row: Dict[str, Any]) -> Any:
        value = row.get(column, _MISS)
        if value is not _MISS:
            return value
        matches = [key for key in row if key.endswith(suffix)]
        if len(matches) == 1:
            return row[matches[0]]
        if len(matches) > 1:
            raise BindingError(f"ambiguous column reference {column!r}")
        raise BindingError(f"unknown column {column!r}")

    return bare_fn


def _raise_unbound(row: Dict[str, Any]) -> Any:
    raise ParameterError(
        "statement has unbound '?' placeholders; pass params= "
        "(or use a Cursor) to bind them"
    )


def compile_value(expression: ast.Expression) -> RowFn:
    """Compile an expression to a closure returning its value per row."""
    if isinstance(expression, ast.Literal):
        value = expression.value
        return lambda row: value
    if isinstance(expression, ast.Placeholder):
        return _raise_unbound
    if isinstance(expression, ast.ColumnRef):
        return compile_lookup(expression)
    if isinstance(expression, (ast.Comparison, ast.InList, ast.Between,
                               ast.IsNull, ast.BooleanOp, ast.Not)):
        return compile_predicate(expression)
    if isinstance(expression, ast.Aggregate):
        name = expression.display_name

        def aggregate_misuse(row: Dict[str, Any]) -> Any:
            raise BindingError(
                f"aggregate {name} used outside an aggregate query"
            )

        return aggregate_misuse

    def unsupported(row: Dict[str, Any]) -> Any:
        raise ExecutionError(f"cannot evaluate expression {expression!r}")

    return unsupported


def _compile_comparison(comparison: ast.Comparison) -> RowFn:
    left = compile_value(comparison.left)
    right = compile_value(comparison.right)
    operator = comparison.operator
    if operator == "LIKE":
        if isinstance(comparison.right, ast.Literal) \
                and isinstance(comparison.right.value, str):
            # The regex is built once per plan, not once per row.
            pattern = _like_pattern(comparison.right.value)

            def like_literal(row: Dict[str, Any]) -> bool:
                value = left(row)
                if is_missing(value):
                    return False
                return pattern.match(str(value)) is not None

            return like_literal

        def like_dynamic(row: Dict[str, Any]) -> bool:
            value, pattern_value = left(row), right(row)
            if is_missing(value) or is_missing(pattern_value):
                return False
            return _like(str(value), str(pattern_value))

        return like_dynamic
    if operator == "=":
        def eq(row: Dict[str, Any]) -> bool:
            lv, rv = left(row), right(row)
            if is_missing(lv) or is_missing(rv):
                return False
            return _equal(lv, rv)
        return eq
    if operator == "!=":
        def ne(row: Dict[str, Any]) -> bool:
            lv, rv = left(row), right(row)
            if is_missing(lv) or is_missing(rv):
                return False
            return not _equal(lv, rv)
        return ne
    if operator == "<":
        def lt(row: Dict[str, Any]) -> bool:
            lv, rv = left(row), right(row)
            if is_missing(lv) or is_missing(rv):
                return False
            return sort_key(lv) < sort_key(rv)
        return lt
    if operator == "<=":
        def le(row: Dict[str, Any]) -> bool:
            lv, rv = left(row), right(row)
            if is_missing(lv) or is_missing(rv):
                return False
            return sort_key(lv) <= sort_key(rv)
        return le
    if operator == ">":
        def gt(row: Dict[str, Any]) -> bool:
            lv, rv = left(row), right(row)
            if is_missing(lv) or is_missing(rv):
                return False
            return sort_key(lv) > sort_key(rv)
        return gt
    if operator == ">=":
        def ge(row: Dict[str, Any]) -> bool:
            lv, rv = left(row), right(row)
            if is_missing(lv) or is_missing(rv):
                return False
            return sort_key(lv) >= sort_key(rv)
        return ge

    def unsupported(row: Dict[str, Any]) -> bool:
        raise ExecutionError(f"unsupported comparison operator {operator!r}")

    return unsupported


def compile_predicate(expression: ast.Expression) -> RowFn:
    """Compile an expression to a closure returning a truth value per row."""
    if isinstance(expression, ast.Comparison):
        return _compile_comparison(expression)
    if isinstance(expression, ast.InList):
        operand = compile_value(expression.operand)
        candidates = expression.values
        negated = expression.negated

        def in_list(row: Dict[str, Any]) -> bool:
            value = operand(row)
            if is_missing(value):
                return False
            result = any(_equal(value, candidate) for candidate in candidates)
            return not result if negated else result

        return in_list
    if isinstance(expression, ast.Between):
        operand = compile_value(expression.operand)
        low = compile_value(expression.low)
        high = compile_value(expression.high)
        negated = expression.negated

        def between(row: Dict[str, Any]) -> bool:
            value = operand(row)
            low_value, high_value = low(row), high(row)
            if is_missing(value) or is_missing(low_value) or is_missing(high_value):
                return False
            result = sort_key(low_value) <= sort_key(value) <= sort_key(high_value)
            return not result if negated else result

        return between
    if isinstance(expression, ast.IsNull):
        operand = compile_value(expression.operand)
        negated = expression.negated

        def is_null(row: Dict[str, Any]) -> bool:
            value = operand(row)
            result = value is NULL or value is None or value is SUPPRESSED
            return not result if negated else result

        return is_null
    if isinstance(expression, ast.BooleanOp):
        operands = tuple(compile_predicate(op) for op in expression.operands)
        if expression.operator == "AND":
            def conjunction(row: Dict[str, Any]) -> bool:
                for fn in operands:
                    if not _truthy(fn(row)):
                        return False
                return True
            return conjunction

        def disjunction(row: Dict[str, Any]) -> bool:
            for fn in operands:
                if _truthy(fn(row)):
                    return True
            return False

        return disjunction
    if isinstance(expression, ast.Not):
        operand = compile_predicate(expression.operand)
        return lambda row: not _truthy(operand(row))
    value_fn = compile_value(expression)
    return lambda row: _truthy(value_fn(row))


def compile_projection(expressions: List[ast.Expression]) -> RowFn:
    """Compile a SELECT list into one closure producing the output tuple."""
    fns = tuple(compile_value(expression) for expression in expressions)
    if len(fns) == 1:
        single = fns[0]
        return lambda row: (single(row),)
    return lambda row: tuple(fn(row) for fn in fns)


# -- batch (vectorized) compilation -----------------------------------------------

#: A per-position truth test over one batch's column vectors.
BatchTest = Callable[[int], bool]
#: A batch-test factory: column-name → value-vector mapping in, test out.
#: All constant work (sort keys, LIKE regexes) is done when the factory is
#: built — once per plan; building the test binds the vectors — once per
#: batch; per row only ``test(i)`` runs.
BatchPredicate = Callable[[Dict[str, List[Any]]], BatchTest]

_FLIPPED_COMPARISON = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _and_operands(expression: ast.Expression) -> List[ast.Expression]:
    if isinstance(expression, ast.BooleanOp) and expression.operator == "AND":
        operands: List[ast.Expression] = []
        for operand in expression.operands:
            operands.extend(_and_operands(operand))
        return operands
    return [expression]


def _batch_column_literal(
        comparison: ast.Comparison) -> Optional[Tuple[str, str, Any]]:
    """Recognize ``column <op> literal`` (either orientation, operator
    flipped when the literal is on the left)."""
    left, right = comparison.left, comparison.right
    if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
        return left.column, comparison.operator, right.value
    if isinstance(right, ast.ColumnRef) and isinstance(left, ast.Literal):
        operator = _FLIPPED_COMPARISON.get(comparison.operator,
                                           comparison.operator)
        return right.column, operator, left.value
    return None


def _const_false(columns: Dict[str, List[Any]]) -> BatchTest:
    return lambda i: False


def _compile_batch_leaf(expression: ast.Expression) -> Optional[BatchPredicate]:
    if isinstance(expression, ast.Comparison):
        match = _batch_column_literal(expression)
        if match is None:
            return None
        name, operator, constant = match
        if is_missing(constant):
            # A missing operand makes every comparison false, including !=.
            return _const_false
        if operator == "LIKE":
            if not isinstance(constant, str):
                return None
            pattern = _like_pattern(constant)

            def make_like(columns: Dict[str, List[Any]],
                          name=name, pattern=pattern) -> BatchTest:
                vector = columns[name]

                def test(i: int) -> bool:
                    value = vector[i]
                    return not is_missing(value) \
                        and pattern.match(str(value)) is not None

                return test

            return make_like
        if operator in ("=", "!="):
            negated = operator == "!="

            def make_eq(columns: Dict[str, List[Any]],
                        name=name, constant=constant,
                        negated=negated) -> BatchTest:
                vector = columns[name]

                def test(i: int) -> bool:
                    value = vector[i]
                    if is_missing(value):
                        return False
                    return bool(_equal(value, constant)) != negated

                return test

            return make_eq
        if operator in ("<", "<=", ">", ">="):
            constant_key = sort_key(constant)

            def make_ordered(columns: Dict[str, List[Any]],
                             name=name, operator=operator,
                             constant_key=constant_key) -> BatchTest:
                vector = columns[name]
                if operator == "<":
                    return lambda i: not is_missing(vector[i]) \
                        and sort_key(vector[i]) < constant_key
                if operator == "<=":
                    return lambda i: not is_missing(vector[i]) \
                        and sort_key(vector[i]) <= constant_key
                if operator == ">":
                    return lambda i: not is_missing(vector[i]) \
                        and sort_key(vector[i]) > constant_key
                return lambda i: not is_missing(vector[i]) \
                    and sort_key(vector[i]) >= constant_key

            return make_ordered
        return None
    if isinstance(expression, ast.Between):
        if not isinstance(expression.operand, ast.ColumnRef) \
                or not isinstance(expression.low, ast.Literal) \
                or not isinstance(expression.high, ast.Literal):
            return None
        low, high = expression.low.value, expression.high.value
        if is_missing(low) or is_missing(high):
            return _const_false
        name = expression.operand.column
        low_key, high_key = sort_key(low), sort_key(high)
        negated = expression.negated

        def make_between(columns: Dict[str, List[Any]],
                         name=name, low_key=low_key, high_key=high_key,
                         negated=negated) -> BatchTest:
            vector = columns[name]

            def test(i: int) -> bool:
                value = vector[i]
                if is_missing(value):
                    return False
                return (low_key <= sort_key(value) <= high_key) is not negated

            return test

        return make_between
    if isinstance(expression, ast.InList):
        if not isinstance(expression.operand, ast.ColumnRef):
            return None
        name = expression.operand.column
        candidates = tuple(expression.values)
        negated = expression.negated

        def make_in(columns: Dict[str, List[Any]],
                    name=name, candidates=candidates,
                    negated=negated) -> BatchTest:
            vector = columns[name]

            def test(i: int) -> bool:
                value = vector[i]
                if is_missing(value):
                    return False
                result = any(_equal(value, candidate)
                             for candidate in candidates)
                return result is not negated

            return test

        return make_in
    if isinstance(expression, ast.IsNull):
        if not isinstance(expression.operand, ast.ColumnRef):
            return None
        name = expression.operand.column
        negated = expression.negated

        def make_is_null(columns: Dict[str, List[Any]],
                         name=name, negated=negated) -> BatchTest:
            vector = columns[name]

            def test(i: int) -> bool:
                value = vector[i]
                result = value is NULL or value is None or value is SUPPRESSED
                return result is not negated

            return test

        return make_is_null
    if isinstance(expression, ast.Not):
        inner = _compile_batch_leaf(expression.operand)
        if inner is None:
            return None

        def make_not(columns: Dict[str, List[Any]], inner=inner) -> BatchTest:
            test = inner(columns)
            return lambda i: not test(i)

        return make_not
    if isinstance(expression, ast.BooleanOp):
        parts = []
        for operand in expression.operands:
            part = _compile_batch_leaf(operand)
            if part is None:
                return None
            parts.append(part)
        disjunction = expression.operator == "OR"

        def make_bool(columns: Dict[str, List[Any]],
                      parts=tuple(parts),
                      disjunction=disjunction) -> BatchTest:
            tests = tuple(part(columns) for part in parts)
            if disjunction:
                return lambda i: any(test(i) for test in tests)
            return lambda i: all(test(i) for test in tests)

        return make_bool
    return None


def compile_batch_conjuncts(
        expression: ast.Expression) -> Optional[List[BatchPredicate]]:
    """Split ``expression`` on top-level AND into per-conjunct batch passes.

    The vectorized Filter applies each conjunct as one pass that narrows the
    batch's selection vector — the cheapest conjunct shrinks the work of the
    rest.  ``None`` means some conjunct is not batch-compilable (parameter
    placeholders, column-to-column comparisons, subexpressions only the
    row-at-a-time closures handle); the caller then falls back to the row
    pipeline, which is always correct.
    """
    conjuncts: List[BatchPredicate] = []
    for conjunct in _and_operands(expression):
        compiled = _compile_batch_leaf(conjunct)
        if compiled is None:
            return None
        conjuncts.append(compiled)
    return conjuncts


def compile_batch_projection(
        items: List[Tuple[str, ast.Expression]]) -> Optional[List[str]]:
    """Column names of an all-column-reference SELECT list, or ``None``.

    When every output expression is a plain column reference the vectorized
    Project gathers output tuples straight from the batch's vectors; any
    computed expression sends the plan down the row-at-a-time fallback.
    """
    names: List[str] = []
    for _name, expression in items:
        if not isinstance(expression, ast.ColumnRef):
            return None
        names.append(expression.column)
    return names


def compile_join_key(ref: ast.ColumnRef) -> RowFn:
    """Join-key extractor with the hash normalization baked in.

    ``_hashable`` used to run on every probe row inside the join loop; here
    it is part of the compiled extractor, so list/dict-typed degraded values
    are normalized exactly once per row with no per-probe type dispatch.
    """
    lookup_fn = compile_lookup(ref)
    return lambda row: _hashable(lookup_fn(row))


# -- whole-plan compilation -------------------------------------------------------


def output_items(catalog: Any, statement: ast.Select,
                 plan: Any) -> List[Tuple[str, ast.Expression]]:
    """Resolve the SELECT list into (output name, expression) pairs."""
    items: List[Tuple[str, ast.Expression]] = []
    for item in statement.items:
        if isinstance(item, ast.Star):
            schema = catalog.table(plan.base.table).schema
            for column in schema.columns:
                items.append((column.name, ast.ColumnRef(column=column.name,
                                                         table=plan.base.alias)))
            for _clause, scan in plan.joins:
                join_schema = catalog.table(scan.table).schema
                for column in join_schema.columns:
                    items.append((f"{scan.alias}.{column.name}",
                                  ast.ColumnRef(column=column.name,
                                                table=scan.alias)))
        else:
            items.append((item.output_name, item.expression))
    return items


@dataclass
class CompiledSelect:
    """Per-plan compiled artifacts (memoized on the :class:`PhysicalPlan`)."""

    mode: str
    columns: List[str]
    items: List[Tuple[str, ast.Expression]]
    #: Output-tuple builder; ``None`` for aggregate queries (the Aggregate
    #: operator evaluates per group, not per row).
    project: Optional[RowFn]
    #: Residual-predicate truth function; ``None`` when nothing is residual.
    residual: Optional[RowFn]
    #: Per join clause: (left-row key fn, right-row key fn), orientation
    #: already resolved against the joined table.
    join_keys: List[Tuple[RowFn, RowFn]]
    #: Trailing entries of ``items``/``columns`` that exist only to carry
    #: ORDER BY keys absent from the SELECT list; Sort/TopN strip them and
    #: the result exposes ``columns[:-hidden]``.
    hidden: int = 0
    #: Batch-compiled residual conjuncts for the vectorized pipeline;
    #: ``None`` when the residual (or the mode) is not batch-compilable —
    #: the row-at-a-time closures then run instead.
    batch_conjuncts: Optional[List[BatchPredicate]] = None
    #: Gather list for the vectorized projection (all-column-reference
    #: SELECT lists only); ``None`` forces the row-at-a-time projection.
    batch_project: Optional[List[str]] = None


def _resolve_join_refs(clause: ast.JoinClause,
                       scan: Any) -> Tuple[ast.ColumnRef, ast.ColumnRef]:
    """Orient the ON clause: which side belongs to the joined (right) table."""
    left_key, right_key = clause.left, clause.right

    def belongs_to_right(ref: ast.ColumnRef) -> bool:
        return ref.table in (scan.alias, scan.table)

    if belongs_to_right(left_key) and not belongs_to_right(right_key):
        left_key, right_key = right_key, left_key
    return left_key, right_key


def _hidden_order_items(statement: ast.Select,
                        items: List[Tuple[str, ast.Expression]]
                        ) -> List[Tuple[str, ast.Expression]]:
    """ORDER BY columns absent from the SELECT list, as trailing hidden items.

    ``SELECT name FROM t ORDER BY age`` must compute the sort key even though
    it is not part of the result; Sort/TopN locate keys by output position, so
    the missing references ride along as extra trailing projection items
    (``CompiledSelect.hidden`` counts them, Sort/TopN strip them).  Aggregate
    queries may only hoist grouping columns — any other reference is ambiguous
    within a group and keeps raising the binding error downstream.
    """
    if not statement.order_by:
        return []
    names = {name for name, _expression in items}
    allowed = None
    if statement.is_aggregate:
        allowed = set()
        for ref in statement.group_by:
            allowed.add(ref.column)
            allowed.add(ref.qualified)
    extra: List[Tuple[str, ast.Expression]] = []
    for item in statement.order_by:
        ref = item.column
        if ref.column in names or ref.qualified in names:
            continue
        if allowed is not None and ref.column not in allowed \
                and ref.qualified not in allowed:
            continue
        extra.append((ref.qualified, ref))
        names.add(ref.qualified)
    return extra


def compile_select(catalog: Any, plan: Any,
                   mode: str = "compiled") -> CompiledSelect:
    """Compile a physical plan's row-at-a-time work into closures.

    ``mode="interpreted"`` produces closures that defer to the tree-walking
    interpreter per row — the measured baseline the compiled mode is compared
    against (``InstantDB(read_path_optimizations=False)``).
    """
    statement = plan.statement
    if statement.is_aggregate:
        items: List[Tuple[str, ast.Expression]] = []
        for item in statement.items:
            if isinstance(item, ast.Star):
                raise BindingError("SELECT * cannot be combined with aggregation")
            items.append((item.output_name, item.expression))
    else:
        items = output_items(catalog, statement, plan)
    hidden_items = _hidden_order_items(statement, items)
    if hidden_items:
        items = items + hidden_items
    if statement.is_aggregate:
        project: Optional[RowFn] = None
    else:
        expressions = [expression for _name, expression in items]
        if mode == "compiled":
            project = compile_projection(expressions)
        else:
            project = (lambda exprs: lambda row: tuple(
                evaluate(expression, row) for expression in exprs))(expressions)
    columns = [name for name, _expression in items]
    residual: Optional[RowFn] = None
    if plan.residual is not None:
        if mode == "compiled":
            residual = compile_predicate(plan.residual)
        else:
            residual = (lambda predicate: lambda row: _truthy(
                evaluate(predicate, row)))(plan.residual)
    join_keys: List[Tuple[RowFn, RowFn]] = []
    for clause, scan in plan.joins:
        left_ref, right_ref = _resolve_join_refs(clause, scan)
        if mode == "compiled":
            join_keys.append((compile_join_key(left_ref),
                              compile_join_key(right_ref)))
        else:
            join_keys.append((
                (lambda ref: lambda row: _hashable(lookup(ref, row)))(left_ref),
                (lambda ref: lambda row: _hashable(lookup(ref, row)))(right_ref),
            ))
    batch_conjuncts: Optional[List[BatchPredicate]] = None
    batch_project: Optional[List[str]] = None
    if mode == "compiled":
        if plan.residual is None:
            batch_conjuncts = []
        else:
            batch_conjuncts = compile_batch_conjuncts(plan.residual)
        if not statement.is_aggregate:
            batch_project = compile_batch_projection(items)
    return CompiledSelect(mode=mode, columns=columns, items=items,
                          project=project, residual=residual,
                          join_keys=join_keys, hidden=len(hidden_items),
                          batch_conjuncts=batch_conjuncts,
                          batch_project=batch_project)


__all__ = [
    "RowFn", "BatchTest", "BatchPredicate", "CompiledSelect", "compile_select",
    "compile_predicate", "compile_value", "compile_projection",
    "compile_batch_conjuncts", "compile_batch_projection",
    "compile_join_key", "compile_lookup",
    "output_items", "evaluate", "lookup", "render_expression",
]
