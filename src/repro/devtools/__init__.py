"""Developer tooling: the reprolint static analyzer and runtime invariants.

Two halves, one purpose — machine-check the correctness rules the engine's
degradation semantics depend on, so refactors (MVCC, multi-threaded
executors) cannot silently regress them:

* :mod:`repro.devtools.lint` — ``reprolint``, an AST-based checker run as
  ``python -m repro.devtools.lint src/``.  Rules encode real repo
  invariants: sentinel identity comparisons, WAL record-type exhaustiveness
  across recovery replay and scrub classification, engine-executor
  confinement in the asyncio server, protocol frame-tag coverage, lock
  discipline, and no silently swallowed transaction aborts.
* :mod:`repro.devtools.invariants` — runtime checks armed by
  ``REPRO_DEBUG_INVARIANTS=1``: a lock-order tracker that reports
  lock-order inversions (cycles in the global acquisition-order graph) and
  thread-confinement guards asserting engine entry points run on the
  serving executor thread.

This package intentionally imports nothing from the engine at module load —
the engine's hot paths import :mod:`repro.devtools.invariants`, and a cycle
here would be paid by every ``import repro``.
"""

from .findings import Finding
from .invariants import InvariantViolation, TrackedLock

__all__ = ["Finding", "InvariantViolation", "TrackedLock"]
