"""reprolint: the repo-specific static analyzer.

Usage::

    python -m repro.devtools.lint src/ [--format=human|json] [--rules=a,b]

Exit status is 0 when no findings survive suppression, 1 otherwise (2 for
usage errors).  Suppress a finding on its own line with::

    risky_call()  # reprolint: disable=rule-name
    other_call()  # reprolint: disable=rule-a,rule-b  -- why it is safe
    anything()    # reprolint: disable=all

Rules live in :mod:`repro.devtools.rules` (single-file) and
:mod:`repro.devtools.project_rules` (cross-file); see ``docs/invariants.md``
for the invariants they encode.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .findings import Finding
from .project_rules import PROJECT_RULES
from .rules import PER_FILE_RULES

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_\-]+"
                          r"(?:\s*,\s*[A-Za-z0-9_\-]+)*)")


class LintFile:
    """One parsed source file plus its per-line suppression table."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.suppressions = parse_suppressions(source)

    def suppresses(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        return bool(rules) and ("all" in rules or finding.rule in rules)


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            tokens = {token.strip() for token in match.group(1).split(",")}
            table[lineno] = {token for token in tokens if token}
    return table


def all_rules() -> Dict[str, object]:
    """Rule name -> instance, per-file and project rules together."""
    rules: Dict[str, object] = {}
    for rule_cls in (*PER_FILE_RULES, *PROJECT_RULES):
        rule = rule_cls()
        rules[rule.name] = rule
    return rules


def collect_paths(paths: Iterable[str]) -> List[Path]:
    """Expand directories to their ``*.py`` files, keep files as given."""
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            collected.extend(sorted(path.rglob("*.py")))
        else:
            collected.append(path)
    return collected


def run(paths: Iterable[str],
        rule_names: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint ``paths`` (files or directories); returns surviving findings."""
    rules = all_rules()
    if rule_names is not None:
        unknown = sorted(set(rule_names) - set(rules))
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(unknown)}; "
                             f"known: {', '.join(sorted(rules))}")
        rules = {name: rule for name, rule in rules.items()
                 if name in set(rule_names)}
    files: List[LintFile] = []
    findings: List[Finding] = []
    for path in collect_paths(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            findings.append(Finding(rule="parse-error", path=path.as_posix(),
                                    line=1, col=1,
                                    message=f"cannot read file: {error}"))
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            findings.append(Finding(rule="parse-error", path=path.as_posix(),
                                    line=error.lineno or 1,
                                    col=(error.offset or 1),
                                    message=f"syntax error: {error.msg}"))
            continue
        files.append(LintFile(path.as_posix(), source, tree))
    by_path = {entry.path: entry for entry in files}
    for rule in rules.values():
        if hasattr(rule, "check_project"):
            findings.extend(rule.check_project(files))
        else:
            for entry in files:
                findings.extend(rule.check(entry.path, entry.tree,
                                           entry.source))
    surviving = []
    for finding in findings:
        entry = by_path.get(finding.path)
        if entry is not None and entry.suppresses(finding):
            continue
        surviving.append(finding)
    surviving.sort(key=Finding.sort_key)
    return surviving


def render_json(findings: List[Finding], paths: Sequence[str],
                rules: Iterable[str]) -> str:
    return json.dumps({
        "version": 1,
        "tool": "reprolint",
        "paths": list(paths),
        "rules": sorted(rules),
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }, indent=2)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="reprolint: check the engine's documented invariants "
                    "(see docs/invariants.md)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", help="output format")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rules to run")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the known rules and exit")
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for name in sorted(rules):
            print(f"{name}: {rules[name].description}")
        return 0

    rule_names = None
    if args.rules:
        rule_names = [token.strip() for token in args.rules.split(",")
                      if token.strip()]
    try:
        findings = run(args.paths, rule_names)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    selected = rule_names if rule_names is not None else list(rules)
    if args.format == "json":
        print(render_json(findings, args.paths, selected))
    else:
        for finding in findings:
            print(finding.format())
        summary = (f"reprolint: {len(findings)} finding(s)" if findings
                   else "reprolint: clean")
        print(summary)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
