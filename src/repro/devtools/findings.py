"""The unit of reprolint output: one finding at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass
class Finding:
    """One rule violation, pointing at ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


__all__ = ["Finding"]
