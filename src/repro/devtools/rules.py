"""Per-file reprolint rules.

Each rule is a :class:`Rule` subclass checking one invariant inside a single
module's AST.  Cross-file invariants (WAL exhaustiveness, protocol frame
coverage) live in :mod:`repro.devtools.project_rules`.

Every rule's docstring is its contract; ``docs/invariants.md`` explains the
engine invariants the rules are derived from.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterable, List, Optional, Sequence

from .findings import Finding
from .invariants import LOCK_HIERARCHY


class Rule:
    """Base class: one named check over one parsed file."""

    name: str = ""
    description: str = ""

    def check(self, path: str, tree: ast.AST, source: str) -> List[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(rule=self.name, path=path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message)


def attribute_chain(node: ast.AST) -> List[str]:
    """``self.engine.close`` -> ``["self", "engine", "close"]``.

    A non-Name base (a call result, a subscript...) contributes ``"()"`` so
    callers can still reason about the trailing segments.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("()")
    parts.reverse()
    return parts


def _path_parts(path: str) -> Sequence[str]:
    return PurePosixPath(path).parts


# ------------------------------------------------------------ sentinel-identity


class SentinelIdentityRule(Rule):
    """SUPPRESSED/REMOVED/NULL must be compared with ``is``, never ``==``/``in``.

    The degradation sentinels are identity singletons: the wire codec
    round-trips them by identity (tags ``S``/``R``/``Z``) and the executor's
    exclusion semantics test ``value is SUPPRESSED``.  An ``==`` comparison
    silently matches nothing (or worse, everything, if a sentinel ever grows
    an ``__eq__``), so the only place allowed to reason about sentinel
    equality is their home module ``core/values.py``.
    """

    name = "sentinel-identity"
    description = ("degradation sentinels compared with ==/!=/in instead of "
                   "is / is not")

    SENTINEL_NAMES = frozenset({"SUPPRESSED", "REMOVED", "NULL"})
    CONTAINER = "SENTINELS"

    def check(self, path: str, tree: ast.AST, source: str) -> List[Finding]:
        if path.endswith("core/values.py"):
            return []
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                left, right = operands[index], operands[index + 1]
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    sentinel = (self._sentinel_name(left)
                                or self._sentinel_name(right))
                    if sentinel:
                        verb = "==" if isinstance(op, ast.Eq) else "!="
                        fixed = "is" if isinstance(op, ast.Eq) else "is not"
                        findings.append(self.finding(
                            path, node,
                            f"sentinel {sentinel} compared with {verb!r}; "
                            f"sentinels have identity semantics — use "
                            f"{fixed!r}"))
                        break
                elif isinstance(op, (ast.In, ast.NotIn)):
                    if (self._sentinel_name(left)
                            or self._is_sentinel_container(right)):
                        findings.append(self.finding(
                            path, node,
                            "membership test against sentinels uses equality; "
                            "use any(value is s for s in SENTINELS) or "
                            "chained 'is' checks"))
                        break
        return findings

    def _sentinel_name(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name) and node.id in self.SENTINEL_NAMES:
            return node.id
        if isinstance(node, ast.Attribute) and node.attr in self.SENTINEL_NAMES:
            return node.attr
        return None

    def _is_sentinel_container(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id == self.CONTAINER:
            return True
        if isinstance(node, ast.Attribute) and node.attr == self.CONTAINER:
            return True
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self._sentinel_name(el) for el in node.elts)
        return False


# -------------------------------------------------------- executor-confinement


class ExecutorConfinementRule(Rule):
    """No direct engine calls from ``async def`` bodies in the server package.

    The serving layer's contract is that *all* engine work funnels through
    the single engine-executor thread (``run_on_engine``).  An engine (or
    session engine-method) call made directly from a coroutine runs on the
    event-loop thread and races the executor.  Passing a bound method as a
    *callable argument* (``run_on_engine(self.engine.close)``) is the
    correct pattern and is not flagged; only direct calls are.
    """

    name = "executor-confinement"
    description = ("direct engine / session engine-method call from an async "
                   "def in the server package")

    #: Session methods that touch the engine (see sessions.py docstring).
    SESSION_METHODS = frozenset({
        "execute", "executemany", "fetch", "close_cursor",
        "begin", "commit", "rollback", "close",
    })
    ENGINE_TYPES = frozenset({"InstantDB", "TableStore"})

    def check(self, path: str, tree: ast.AST, source: str) -> List[Finding]:
        if "server" not in _path_parts(path):
            return []
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.AsyncFunctionDef):
                for stmt in node.body:
                    self._scan(path, stmt, findings)
        return findings

    def _scan(self, path: str, node: ast.AST,
              findings: List[Finding]) -> None:
        # Nested defs/lambdas execute elsewhere (typically on the executor
        # via run_on_engine) — their bodies are out of scope here.
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return
        if isinstance(node, ast.Call):
            self._check_call(path, node, findings)
        for child in ast.iter_child_nodes(node):
            self._scan(path, child, findings)

    def _check_call(self, path: str, node: ast.Call,
                    findings: List[Finding]) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in self.ENGINE_TYPES:
            findings.append(self.finding(
                path, node,
                f"{func.id} constructed inside an async def; engine objects "
                "must be created and driven on the engine executor"))
            return
        if not isinstance(func, ast.Attribute):
            return
        chain = attribute_chain(func)
        receiver, method = chain[:-1], chain[-1]
        if "engine" in receiver:
            findings.append(self.finding(
                path, node,
                f"direct engine call {'.'.join(chain)}() from an async def; "
                "engine work must go through the executor "
                "(await self.run_on_engine(...))"))
            return
        if method in self.SESSION_METHODS and any(
                segment in ("session", "sessions") for segment in receiver):
            findings.append(self.finding(
                path, node,
                f"{'.'.join(chain)}() touches the engine and is called from "
                "an async def; submit it to the executor instead "
                "(await self.run_on_engine(...))"))


# ------------------------------------------------------------- lock-discipline


class LockDisciplineRule(Rule):
    """Locks are held via ``with`` and created as named :class:`TrackedLock`.

    * bare ``.acquire()`` / ``.release()`` (no arguments) bypass both the
      context-manager release-on-all-paths guarantee and the runtime
      order tracker;
    * raw ``threading.Lock()`` / ``threading.RLock()`` / ``Condition()``
      objects are invisible to the tracker — wrap them in
      ``devtools.invariants.TrackedLock(name)``;
    * a ``TrackedLock`` literal name should appear in the documented
      hierarchy (``LOCK_HIERARCHY``) so its rank is checkable.

    The engine's 2PL ``LockManager.acquire(txn_id, resource, mode)`` takes
    arguments and is not a threading lock; it is deliberately not flagged.
    """

    name = "lock-discipline"
    description = ("bare .acquire()/.release(), untracked threading locks, "
                   "or lock names outside the documented hierarchy")

    RAW_LOCKS = frozenset({"Lock", "RLock", "Condition"})

    def check(self, path: str, tree: ast.AST, source: str) -> List[Finding]:
        in_devtools = "devtools" in _path_parts(path)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                bare = not node.args and not node.keywords
                if func.attr == "acquire" and bare:
                    findings.append(self.finding(
                        path, node,
                        "bare .acquire(); hold locks with a `with` block so "
                        "release happens on every path and the order tracker "
                        "sees the acquisition"))
                    continue
                if func.attr == "release" and bare:
                    findings.append(self.finding(
                        path, node,
                        "bare .release(); pair acquisition and release "
                        "through a `with` block"))
                    continue
                if (func.attr in self.RAW_LOCKS
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "threading"
                        and not in_devtools):
                    findings.append(self.finding(
                        path, node,
                        f"raw threading.{func.attr}() is invisible to the "
                        "lock-order tracker; use "
                        "devtools.invariants.TrackedLock(name)"))
                    continue
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if name == "TrackedLock" and node.args:
                first = node.args[0]
                if (isinstance(first, ast.Constant)
                        and isinstance(first.value, str)
                        and first.value not in LOCK_HIERARCHY):
                    findings.append(self.finding(
                        path, node,
                        f"lock name {first.value!r} is not in the documented "
                        "hierarchy (devtools.invariants.LOCK_HIERARCHY; see "
                        "docs/invariants.md)"))
        return findings


# ----------------------------------------------------------- no-swallowed-abort


class NoSwallowedAbortRule(Rule):
    """No ``except`` that catches an abort/operational error and drops it.

    ``TransactionAborted`` is load-bearing control flow: the engine aborts a
    victim transaction and the *caller* must either retry, surface the error
    to the client, or re-raise.  An ``except TransactionAborted: pass`` (or
    a broad ``except Exception: pass`` that shadows it) silently commits to
    a half-applied state.  A handler counts as *handling* the exception when
    it re-raises, uses the bound exception object, or does real work in the
    body; only trivially-dropping handlers are flagged.
    """

    name = "no-swallowed-abort"
    description = ("except clause swallows TransactionAborted/OperationalError "
                   "(or a broader class) without re-raise or handling")

    ABORT_TYPES = frozenset({
        "TransactionAborted", "DeadlockError", "TransactionError",
        "OperationalError", "DatabaseError", "InstantDBError",
        "Error", "Exception", "BaseException",
    })

    def check(self, path: str, tree: ast.AST, source: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = self._caught(node.type)
            if caught is None:
                continue
            if any(isinstance(sub, ast.Raise)
                   for stmt in node.body for sub in ast.walk(stmt)):
                continue
            if node.name and self._uses_name(node.body, node.name):
                continue
            if not self._trivial_body(node.body):
                continue
            findings.append(self.finding(
                path, node,
                f"except {caught} swallows the exception without re-raise or "
                "handling; aborts are control flow — handle, re-raise, or "
                "suppress explicitly with a reprolint comment"))
        return findings

    def _caught(self, node: Optional[ast.AST]) -> Optional[str]:
        """The matched abort-class spelling, or None if not an abort catch."""
        if node is None:
            return "(bare)"
        candidates: Iterable[ast.AST]
        if isinstance(node, ast.Tuple):
            candidates = node.elts
        else:
            candidates = (node,)
        for candidate in candidates:
            if (isinstance(candidate, ast.Name)
                    and candidate.id in self.ABORT_TYPES):
                return candidate.id
            if (isinstance(candidate, ast.Attribute)
                    and candidate.attr in self.ABORT_TYPES):
                return candidate.attr
        return None

    def _uses_name(self, body: List[ast.stmt], name: str) -> bool:
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and sub.id == name:
                    return True
        return False

    def _trivial_body(self, body: List[ast.stmt]) -> bool:
        """True when the handler does nothing observable with the failure."""
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
                continue
            if isinstance(stmt, ast.Return) and (
                    stmt.value is None
                    or (isinstance(stmt.value, ast.Constant)
                        and stmt.value.value is None)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value,
                                                         ast.Constant):
                continue            # docstring / ellipsis
            return False
        return True


# -------------------------------------------------------- no-swallowed-io-error


class NoSwallowedIOErrorRule(NoSwallowedAbortRule):
    """No ``except`` that traps an I/O failure around real I/O and drops it.

    A swallowed ``OSError`` around a WAL append, pager sync, or socket
    exchange turns a durability violation into silence: the caller believes
    bytes are on disk (or on the wire) that never arrived.  The engine's
    contract is that storage I/O failures surface as typed
    ``DurabilityError`` and transport failures poison the connection — so a
    trivially-dropping handler is flagged whenever (a) it catches an I/O
    error class and (b) the guarded ``try`` body performs an I/O call.
    Genuinely best-effort spots (closing an already-dead socket, repairing a
    torn tail while propagating the original error) must carry an explicit
    ``# reprolint: disable=no-swallowed-io-error -- why`` suppression.

    Inherits the triviality analysis from :class:`NoSwallowedAbortRule`: a
    handler that re-raises, uses the bound exception, or does real work is
    never flagged.
    """

    name = "no-swallowed-io-error"
    description = ("except clause swallows OSError/DurabilityError around "
                   "WAL/pager/socket I/O without re-raise or handling")

    IO_ERROR_TYPES = frozenset({
        "OSError", "IOError", "DurabilityError", "ConnectionError",
        "ConnectionResetError", "ConnectionAbortedError", "BrokenPipeError",
        "TimeoutError", "timeout",
    })
    #: Method / function names whose call marks a try body as doing I/O.
    IO_CALLS = frozenset({
        "fsync", "fdatasync", "flush", "write", "truncate", "unlink",
        "rename", "replace", "open",
        "sendall", "send", "recv", "recv_into", "connect",
        "create_connection", "close",
    })

    def check(self, path: str, tree: ast.AST, source: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Try):
                continue
            touches_io = self._touches_io(node.body)
            for handler in node.handlers:
                caught = self._caught_io(handler.type)
                if caught is None:
                    continue
                # DurabilityError is typed I/O failure wherever it is caught;
                # the OSError family needs I/O evidence in the try body.
                if caught != "DurabilityError" and not touches_io:
                    continue
                if any(isinstance(sub, ast.Raise)
                       for stmt in handler.body for sub in ast.walk(stmt)):
                    continue
                if handler.name and self._uses_name(handler.body,
                                                    handler.name):
                    continue
                if not self._trivial_body(handler.body):
                    continue
                findings.append(self.finding(
                    path, handler,
                    f"except {caught} around I/O swallows the failure; "
                    "durability and transport errors are load-bearing — "
                    "handle, re-raise, or suppress with a reprolint comment "
                    "stating why the drop is safe"))
        return findings

    def _caught_io(self, node: Optional[ast.AST]) -> Optional[str]:
        if node is None:
            return None            # bare except is the abort rule's business
        candidates: Iterable[ast.AST]
        if isinstance(node, ast.Tuple):
            candidates = node.elts
        else:
            candidates = (node,)
        for candidate in candidates:
            if (isinstance(candidate, ast.Name)
                    and candidate.id in self.IO_ERROR_TYPES):
                return candidate.id
            if (isinstance(candidate, ast.Attribute)
                    and candidate.attr in self.IO_ERROR_TYPES):
                return candidate.attr
        return None

    def _touches_io(self, body: List[ast.stmt]) -> bool:
        for stmt in body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None)
                if name in self.IO_CALLS:
                    return True
        return False


PER_FILE_RULES = (
    SentinelIdentityRule,
    ExecutorConfinementRule,
    LockDisciplineRule,
    NoSwallowedAbortRule,
    NoSwallowedIOErrorRule,
)

__all__ = ["Rule", "attribute_chain", "SentinelIdentityRule",
           "ExecutorConfinementRule", "LockDisciplineRule",
           "NoSwallowedAbortRule", "NoSwallowedIOErrorRule",
           "PER_FILE_RULES"]
